"""Content-hash fingerprint of a small sweep's result cache.

The sweep cache's determinism contract says a given (function, params,
calibration) triple produces byte-identical canonical-JSON payloads —
across serial/parallel execution *and across Python versions*. This tool
makes the cross-version half checkable in CI: run the same small sweep
under two interpreters into separate cache directories, fingerprint each,
and diff the JSON outputs. Any pickle/dict-ordering/float-repr drift
between 3.9 and 3.12 shows up as a digest mismatch.

The sweep covers the three point families CI exercises elsewhere: a
closed-loop echo, a telemetry-enabled open-loop point, and a Fig 14
multi-tenant cell (whose payload round-trips the tenant dimension).

Output JSON: ``{"python": "3.12.3", "entries": {<cache key>: <sha256 of
payload>}, "combined": <sha256 over all entries>}`` — ``python`` is
informational; ``entries``/``combined`` must match across versions.

Usage::

    PYTHONPATH=src python benchmarks/perf/sweep_fingerprint.py
        --cache-dir /tmp/sweep39 --out fp39.json
"""

import argparse
import hashlib
import json
import os
import platform
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.sweep import SweepPoint, run_sweep  # noqa: E402


def fingerprint_points():
    """A small sweep touching each CI-exercised point family."""
    return [
        SweepPoint("repro.harness.runner:run_closed_loop",
                   dict(batch_size=4, nreq=2000)),
        SweepPoint("repro.harness.runner:run_open_loop",
                   dict(load_mrps=2.0, nreq=1500, telemetry=True)),
        SweepPoint("repro.harness.experiments:_fig14_point",
                   dict(noisy_mrps=4.0, steady_mrps=0.5, tenants=3,
                        nreq_total=1500)),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", required=True,
                        help="cache directory to sweep into (should start "
                             "empty for a clean fingerprint)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the fingerprint JSON here (default: "
                             "stdout only)")
    args = parser.parse_args(argv)

    run_sweep(fingerprint_points(), cache=True, cache_dir=args.cache_dir)
    entries = {}
    for name in sorted(os.listdir(args.cache_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(args.cache_dir, name), "rb") as handle:
            entries[name] = hashlib.sha256(handle.read()).hexdigest()
    if not entries:
        print(f"FAIL: no cache entries in {args.cache_dir}", file=sys.stderr)
        return 1
    combined = hashlib.sha256(
        json.dumps(entries, sort_keys=True).encode()
    ).hexdigest()
    document = {
        "python": platform.python_version(),
        "entries": entries,
        "combined": combined,
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
