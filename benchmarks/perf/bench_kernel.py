"""Kernel hot-path microbenchmark: event pump rate + end-to-end echo time.

Measures two things and writes ``BENCH_kernel.json`` at the repo root:

- **pump**: a synthetic workload of timer processes that exercises only the
  simulation kernel (heap + now-queue dispatch, timeout pooling, the
  int-yield fast path) — reported as simulated events per second;
- **echo**: wall-clock time of the tier-1 reference run, a 4k-request
  closed-loop echo benchmark over the full Dagger stack
  (``run_closed_loop(batch_size=4, nreq=4000)``).

Methodology: one warmup run, then ``--rounds`` timed repetitions (default
9); the JSON records the median and the best. Medians are the headline
numbers — single-shot wall times on a shared machine swing by 2x, medians
of interleaved rounds are stable to a few percent. The echo run's result
signature (throughput, p50, p99, count) is recorded too, so a speedup
claim is only comparable between trees that produce bit-identical
simulation results.

With ``--baseline TREE`` (a checkout of an older revision), each round
additionally times the identical echo run against that tree in a
subprocess, interleaved with the current tree's rounds so machine-load
drift hits both sides equally; the JSON then records the baseline medians
and the speedup. The baseline must produce the same result signature —
the speedup claim is only meaningful between bit-identical simulations —
unless ``--allow-signature-change`` is passed for a deliberate
re-baseline PR (one that changes equal-timestamp event interleaving, like
the zero-yield fast paths); then both signatures are recorded instead so
the divergence is explicit in the committed JSON.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_kernel.py [--rounds N]
        [--nreq N] [--out PATH] [--baseline TREE]
        [--allow-signature-change]
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

from bench_common import scrub_path  # noqa: E402
from repro.harness.runner import run_closed_loop  # noqa: E402
from repro.sim.kernel import Simulator  # noqa: E402

#: Synthetic pump workload: PROCS timer processes x TICKS timeouts each.
PUMP_PROCS = 50
PUMP_TICKS = 20_000


def pump_once() -> float:
    """Run the synthetic timer workload; return elapsed wall seconds."""
    sim = Simulator()

    def ticker(period):
        for _ in range(PUMP_TICKS):
            yield period

    for i in range(PUMP_PROCS):
        sim.spawn(ticker(1 + (i % 7)))
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started


def echo_once(nreq: int):
    """Run the reference echo benchmark; return (seconds, signature)."""
    started = time.perf_counter()
    result = run_closed_loop(batch_size=4, nreq=nreq)
    elapsed = time.perf_counter() - started
    signature = (result.throughput_mrps, result.p50_us, result.p99_us,
                 result.count)
    return elapsed, signature


_SUBPROCESS_SNIPPET = """\
import json, time
from repro.harness.runner import run_closed_loop
run_closed_loop(batch_size=4, nreq={nreq})  # warmup
t0 = time.perf_counter()
r = run_closed_loop(batch_size=4, nreq={nreq})
elapsed = time.perf_counter() - t0
print(json.dumps({{"elapsed": elapsed, "signature":
    [r.throughput_mrps, r.p50_us, r.p99_us, r.count]}}))
"""


def echo_subprocess(tree: str, nreq: int):
    """Time the echo run against another source tree, same timed region."""
    env = dict(os.environ, PYTHONPATH=os.path.join(tree, "src"))
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET.format(nreq=nreq)],
        env=env, capture_output=True, text=True, check=True,
    ).stdout
    payload = json.loads(out.splitlines()[-1])
    return payload["elapsed"], tuple(payload["signature"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=9,
                        help="timed repetitions per benchmark (default 9)")
    parser.add_argument("--nreq", type=int, default=4000,
                        help="echo benchmark request count (default 4000)")
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_kernel.json"),
                        help="output JSON path (default repo root)")
    parser.add_argument("--baseline", metavar="TREE", default=None,
                        help="older checkout to time against (interleaved "
                             "rounds; records the speedup)")
    parser.add_argument("--allow-signature-change", action="store_true",
                        help="accept a baseline with a different result "
                             "signature (deliberate re-baseline PRs only); "
                             "records both signatures instead of failing")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be >= 1")

    pump_events = PUMP_PROCS * PUMP_TICKS
    pump_once()  # warmup
    pump_times = [pump_once() for _ in range(args.rounds)]

    echo_once(args.nreq)  # warmup
    echo_times = []
    baseline_times = []
    echo_sigs = set()
    baseline_sigs = set()
    for round_index in range(args.rounds):
        seconds, sig = echo_once(args.nreq)
        echo_times.append(seconds)
        echo_sigs.add(sig)
        if args.baseline:
            seconds, sig = echo_subprocess(args.baseline, args.nreq)
            baseline_times.append(seconds)
            baseline_sigs.add(sig)
    if len(echo_sigs) != 1:
        raise AssertionError(
            f"echo benchmark is non-deterministic: {sorted(echo_sigs)}"
        )
    signature = echo_sigs.pop()
    if args.baseline and baseline_sigs != {signature}:
        if len(baseline_sigs) != 1:
            raise AssertionError(
                f"baseline tree is non-deterministic: {sorted(baseline_sigs)}"
            )
        if not args.allow_signature_change:
            raise AssertionError(
                f"baseline tree produces different results "
                f"({sorted(baseline_sigs)} vs {signature}); "
                "a speedup between non-identical simulations is meaningless "
                "(pass --allow-signature-change only for a deliberate "
                "re-baseline)"
            )

    report = {
        "rounds": args.rounds,
        "pump": {
            "procs": PUMP_PROCS,
            "ticks_per_proc": PUMP_TICKS,
            "events": pump_events,
            "median_s": round(statistics.median(pump_times), 4),
            "best_s": round(min(pump_times), 4),
            "median_events_per_s": round(
                pump_events / statistics.median(pump_times)),
        },
        "echo": {
            "nreq": args.nreq,
            "median_s": round(statistics.median(echo_times), 4),
            "best_s": round(min(echo_times), 4),
            "signature": {
                "throughput_mrps": signature[0],
                "p50_us": signature[1],
                "p99_us": signature[2],
                "count": signature[3],
            },
        },
    }
    if args.baseline:
        baseline_median = statistics.median(baseline_times)
        echo_median = statistics.median(echo_times)
        report["baseline"] = {
            # Basename only: committed JSON must not leak local paths.
            "tree": scrub_path(args.baseline),
            "median_s": round(baseline_median, 4),
            "best_s": round(min(baseline_times), 4),
            "speedup_median": round(baseline_median / echo_median, 3),
            "speedup_best": round(min(baseline_times) / min(echo_times), 3),
        }
        baseline_sig = baseline_sigs.pop()
        if baseline_sig != signature:
            report["baseline"]["signature"] = {
                "throughput_mrps": baseline_sig[0],
                "p50_us": baseline_sig[1],
                "p99_us": baseline_sig[2],
                "count": baseline_sig[3],
            }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
