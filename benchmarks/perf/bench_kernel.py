"""Kernel hot-path microbenchmark: event pump rate + end-to-end echo time.

Measures two things and writes ``BENCH_kernel.json`` at the repo root:

- **pump**: a synthetic workload of timer processes that exercises only the
  simulation kernel (heap + now-queue dispatch, timeout pooling, the
  int-yield fast path) — reported as simulated events per second;
- **echo**: wall-clock time of the tier-1 reference run, a 4k-request
  closed-loop echo benchmark over the full Dagger stack
  (``run_closed_loop(batch_size=4, nreq=4000)``);
- **mesh**: the sharded-engine scaling scenario — a 4-host full-mesh
  closed-loop echo (``repro.harness.mesh.run_echo_mesh``) timed at 1, 2,
  and 4 shards with rounds interleaved across shard counts, under the
  default adaptive window policy. Reported as events per second of wall
  time per shard count plus the speedup vs ``shards=1``; every run's
  result signature must be byte-identical (the conservative-window
  engine's parity contract) — including one untimed ``window_mode=
  "fixed"`` run, so fixed-vs-adaptive parity is asserted in the same
  breath. The section also records the window counts of both modes
  (engine accounting, deliberately outside the result signature) and a
  **window-reduction** sub-section: a service-heavy latency mesh where
  adaptive horizons must collapse at least 3x as many windows as the
  fixed protocol needs (the deterministic count CI gates on).
  Wall-clock scaling needs real cores: the JSON records ``cpu_count`` so
  a 1-core container's flat curve is not mistaken for an engine defect.

Methodology: one warmup run, then ``--rounds`` timed repetitions (default
9); the JSON records the median and the best. Medians are the headline
numbers — single-shot wall times on a shared machine swing by 2x, medians
of interleaved rounds are stable to a few percent. The echo run's result
signature (throughput, p50, p99, count) is recorded too, so a speedup
claim is only comparable between trees that produce bit-identical
simulation results.

With ``--baseline TREE`` (a checkout of an older revision), each round
additionally times the identical echo run against that tree in a
subprocess, interleaved with the current tree's rounds so machine-load
drift hits both sides equally; the JSON then records the baseline medians
and the speedup. The baseline must produce the same result signature —
the speedup claim is only meaningful between bit-identical simulations —
unless ``--allow-signature-change`` is passed for a deliberate
re-baseline PR (one that changes equal-timestamp event interleaving, like
the zero-yield fast paths); then both signatures are recorded instead so
the divergence is explicit in the committed JSON.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_kernel.py [--rounds N]
        [--nreq N] [--out PATH] [--baseline TREE]
        [--allow-signature-change] [--scenario pump,echo,mesh]

``--scenario`` selects a comma-separated subset (default ``all``); the
sections *not* run in this invocation are carried over unchanged from an
existing ``--out`` file, so ``--scenario mesh`` appends the mesh numbers
alongside previously recorded pump/echo results instead of clobbering
them.
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

from bench_common import scrub_path  # noqa: E402
from repro.harness.mesh import mesh_signature, run_echo_mesh  # noqa: E402
from repro.harness.runner import run_closed_loop  # noqa: E402
from repro.sim.kernel import Simulator  # noqa: E402

#: Synthetic pump workload: PROCS timer processes x TICKS timeouts each.
PUMP_PROCS = 50
PUMP_TICKS = 20_000

#: Sharded mesh scenario: 4 hosts, full mesh, timed at these shard counts.
MESH_HOSTS = 4
MESH_NREQ_PER_HOST = 4000
MESH_SHARD_COUNTS = (1, 2, 4)

#: Window-reduction probe: a service-dominated latency mesh (per-request
#: service time >> NIC pipeline latency) where nearly all fixed windows
#: fall inside service gaps the per-flow egress estimator can prove quiet.
#: ``batch_size=1`` so the fetch FSM never stalls on a batch timeout, and
#: ``window=1`` so the RPC pattern is strictly request/response — the
#: configuration where horizon stretching has the most to collapse.
MESH_REDUCTION_KW = dict(hosts=MESH_HOSTS, nreq_per_host=200, window=1,
                         batch_size=1, service_ns=15_000, warmup_ns=0)

#: CI gate: the adaptive latency mesh must need at most a third of the
#: fixed window count (window counts are deterministic, so this is a
#: stable threshold, not a wall-clock flake).
MESH_REDUCTION_MIN = 3.0

_SCENARIOS = ("pump", "echo", "mesh")


def pump_once() -> float:
    """Run the synthetic timer workload; return elapsed wall seconds."""
    sim = Simulator()

    def ticker(period):
        for _ in range(PUMP_TICKS):
            yield period

    for i in range(PUMP_PROCS):
        sim.spawn(ticker(1 + (i % 7)))
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started


def echo_once(nreq: int):
    """Run the reference echo benchmark; return (seconds, signature)."""
    started = time.perf_counter()
    result = run_closed_loop(batch_size=4, nreq=nreq)
    elapsed = time.perf_counter() - started
    signature = (result.throughput_mrps, result.p50_us, result.p99_us,
                 result.count)
    return elapsed, signature


_SUBPROCESS_SNIPPET = """\
import json, time
from repro.harness.runner import run_closed_loop
run_closed_loop(batch_size=4, nreq={nreq})  # warmup
t0 = time.perf_counter()
r = run_closed_loop(batch_size=4, nreq={nreq})
elapsed = time.perf_counter() - t0
print(json.dumps({{"elapsed": elapsed, "signature":
    [r.throughput_mrps, r.p50_us, r.p99_us, r.count]}}))
"""


def echo_subprocess(tree: str, nreq: int):
    """Time the echo run against another source tree, same timed region."""
    env = dict(os.environ, PYTHONPATH=os.path.join(tree, "src"))
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET.format(nreq=nreq)],
        env=env, capture_output=True, text=True, check=True,
    ).stdout
    payload = json.loads(out.splitlines()[-1])
    return payload["elapsed"], tuple(payload["signature"])


def mesh_once(shards: int, nreq_per_host: int,
              window_mode: str = "adaptive"):
    """Time one sharded mesh run; return (seconds, result)."""
    started = time.perf_counter()
    result = run_echo_mesh(hosts=MESH_HOSTS, shards=shards,
                           nreq_per_host=nreq_per_host,
                           window_mode=window_mode)
    return time.perf_counter() - started, result


def mesh_window_reduction() -> dict:
    """Fixed vs adaptive window counts on the service-heavy latency mesh.

    Deterministic (simulated counts, no wall clock): asserts bit-identical
    payloads across modes and an at-least-``MESH_REDUCTION_MIN``x window
    reduction, then reports both counts so regressions show up as a diff
    in the committed JSON.
    """
    fixed = run_echo_mesh(window_mode="fixed", **MESH_REDUCTION_KW)
    adaptive = run_echo_mesh(window_mode="adaptive", **MESH_REDUCTION_KW)
    if mesh_signature(fixed) != mesh_signature(adaptive):
        raise AssertionError(
            "adaptive latency mesh diverges from fixed windows"
        )
    reduction = fixed.windows / adaptive.windows
    if reduction < MESH_REDUCTION_MIN:
        raise AssertionError(
            f"adaptive window reduction regressed: {fixed.windows} fixed "
            f"vs {adaptive.windows} adaptive windows "
            f"({reduction:.2f}x < {MESH_REDUCTION_MIN}x)"
        )
    return {
        "params": dict(MESH_REDUCTION_KW),
        "windows_fixed": fixed.windows,
        "windows_adaptive": adaptive.windows,
        "stretched_windows": adaptive.stretched_windows,
        "reduction": round(reduction, 2),
        "min_reduction": MESH_REDUCTION_MIN,
    }


def run_mesh_scenario(rounds: int, nreq_per_host: int) -> dict:
    """The mesh section: interleaved rounds across shard counts.

    Asserts the parity contract along the way — every (round, shard count)
    run must produce the same canonical result signature.
    """
    times = {shards: [] for shards in MESH_SHARD_COUNTS}
    signatures = set()
    result = None
    _, fixed = mesh_once(1, nreq_per_host, "fixed")  # warmup + parity run
    signatures.add(mesh_signature(fixed))
    for _ in range(rounds):
        for shards in MESH_SHARD_COUNTS:
            seconds, result = mesh_once(shards, nreq_per_host)
            times[shards].append(seconds)
            signatures.add(mesh_signature(result))
    if len(signatures) != 1:
        raise AssertionError(
            "sharded mesh runs are not bit-identical across shard counts "
            f"and window modes ({len(signatures)} distinct signatures)"
        )
    serial_median = statistics.median(times[1])
    section = {
        "hosts": MESH_HOSTS,
        "nreq_per_host": nreq_per_host,
        "cpu_count": os.cpu_count(),
        "window_mode": result.window_mode,
        "signature": {
            "throughput_mrps": result.throughput_mrps,
            "p50_us": result.p50_us,
            "p99_us": result.p99_us,
            "count": result.count,
            "events_total": result.events_total,
        },
        # Engine accounting, deliberately outside the parity signature:
        # fixed and adaptive runs legally differ here.
        "windows": {"fixed": fixed.windows, "adaptive": result.windows},
        "stretched_windows": result.stretched_windows,
        "skipped_shard_rounds": result.skipped_shard_rounds,
        "window_reduction": mesh_window_reduction(),
        "shards": {},
    }
    for shards in MESH_SHARD_COUNTS:
        median = statistics.median(times[shards])
        section["shards"][str(shards)] = {
            "median_s": round(median, 4),
            "best_s": round(min(times[shards]), 4),
            "median_events_per_s": round(result.events_total / median),
            "speedup_vs_serial": round(serial_median / median, 3),
        }
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=9,
                        help="timed repetitions per benchmark (default 9)")
    parser.add_argument("--nreq", type=int, default=4000,
                        help="echo benchmark request count (default 4000)")
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_kernel.json"),
                        help="output JSON path (default repo root)")
    parser.add_argument("--baseline", metavar="TREE", default=None,
                        help="older checkout to time against (interleaved "
                             "rounds; records the speedup)")
    parser.add_argument("--allow-signature-change", action="store_true",
                        help="accept a baseline with a different result "
                             "signature (deliberate re-baseline PRs only); "
                             "records both signatures instead of failing")
    parser.add_argument("--scenario", default="all", metavar="LIST",
                        help="comma-separated subset of "
                             f"{','.join(_SCENARIOS)} (default: all); "
                             "skipped sections are carried over from an "
                             "existing --out file")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be >= 1")
    if args.scenario == "all":
        scenarios = set(_SCENARIOS)
    else:
        scenarios = set(args.scenario.split(","))
        unknown = scenarios - set(_SCENARIOS)
        if unknown:
            parser.error(f"unknown scenario(s): {', '.join(sorted(unknown))}")
    if args.baseline and "echo" not in scenarios:
        parser.error("--baseline times the echo scenario; include it in "
                     "--scenario")

    # Sections not selected this invocation survive from the existing file,
    # so scenario-scoped runs append rather than clobber.
    carried = {}
    if os.path.exists(args.out):
        try:
            with open(args.out) as handle:
                carried = json.load(handle)
        except (OSError, ValueError):
            carried = {}
    report = {"rounds": args.rounds}
    for section in ("pump", "echo", "mesh", "baseline"):
        if section in carried:
            report[section] = carried[section]

    if "pump" in scenarios:
        pump_events = PUMP_PROCS * PUMP_TICKS
        pump_once()  # warmup
        pump_times = [pump_once() for _ in range(args.rounds)]
        report["pump"] = {
            "procs": PUMP_PROCS,
            "ticks_per_proc": PUMP_TICKS,
            "events": pump_events,
            "median_s": round(statistics.median(pump_times), 4),
            "best_s": round(min(pump_times), 4),
            "median_events_per_s": round(
                pump_events / statistics.median(pump_times)),
        }

    if "echo" in scenarios:
        report.pop("baseline", None)  # stale unless recomputed below
        echo_once(args.nreq)  # warmup
        echo_times = []
        baseline_times = []
        echo_sigs = set()
        baseline_sigs = set()
        for round_index in range(args.rounds):
            seconds, sig = echo_once(args.nreq)
            echo_times.append(seconds)
            echo_sigs.add(sig)
            if args.baseline:
                seconds, sig = echo_subprocess(args.baseline, args.nreq)
                baseline_times.append(seconds)
                baseline_sigs.add(sig)
        if len(echo_sigs) != 1:
            raise AssertionError(
                f"echo benchmark is non-deterministic: {sorted(echo_sigs)}"
            )
        signature = echo_sigs.pop()
        if args.baseline and baseline_sigs != {signature}:
            if len(baseline_sigs) != 1:
                raise AssertionError(
                    f"baseline tree is non-deterministic: "
                    f"{sorted(baseline_sigs)}"
                )
            if not args.allow_signature_change:
                raise AssertionError(
                    f"baseline tree produces different results "
                    f"({sorted(baseline_sigs)} vs {signature}); "
                    "a speedup between non-identical simulations is "
                    "meaningless (pass --allow-signature-change only for a "
                    "deliberate re-baseline)"
                )
        report["echo"] = {
            "nreq": args.nreq,
            "median_s": round(statistics.median(echo_times), 4),
            "best_s": round(min(echo_times), 4),
            "signature": {
                "throughput_mrps": signature[0],
                "p50_us": signature[1],
                "p99_us": signature[2],
                "count": signature[3],
            },
        }

    if "mesh" in scenarios:
        report["mesh"] = run_mesh_scenario(args.rounds, MESH_NREQ_PER_HOST)

    if args.baseline:
        baseline_median = statistics.median(baseline_times)
        echo_median = statistics.median(echo_times)
        report["baseline"] = {
            # Basename only: committed JSON must not leak local paths.
            "tree": scrub_path(args.baseline),
            "median_s": round(baseline_median, 4),
            "best_s": round(min(baseline_times), 4),
            "speedup_median": round(baseline_median / echo_median, 3),
            "speedup_best": round(min(baseline_times) / min(echo_times), 3),
        }
        baseline_sig = baseline_sigs.pop()
        if baseline_sig != signature:
            report["baseline"]["signature"] = {
                "throughput_mrps": baseline_sig[0],
                "p50_us": baseline_sig[1],
                "p99_us": baseline_sig[2],
                "count": baseline_sig[3],
            }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
