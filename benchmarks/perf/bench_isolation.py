"""Fig 14 tenant-isolation gate: the noisy neighbour stays in its lane.

Runs a small ``experiments.fig14_isolation`` smoke (one tenant ramped to
saturation, the others on a steady trickle, per-tenant telemetry on) and
fails unless the paper's section 5.5 claim reproduces:

- **Attribution gate** — ``attribute_bottleneck`` must blame the noisy
  tenant *by name* (``bottleneck_tenant == t0``) and the saturating
  component must live in that tenant's NIC namespace
  (``nic.t0.<fetch|sched>`` — the batch-1 echo bound of section 5.4).
- **Isolation gate** — every steady tenant's p99 between the quietest
  and loudest noisy load must move less than ``--max-drift`` percent.

``--report-out`` writes the per-tenant utilization + attribution tables
as text; ``--trace-out`` writes a Perfetto trace of the loudest point
with one counter process per tenant. CI uploads both as artifacts.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_isolation.py
        [--nreq N] [--max-drift PCT] [--report-out PATH] [--trace-out PATH]
"""

import argparse
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness import experiments  # noqa: E402
from repro.harness.report import (  # noqa: E402
    render_bottleneck,
    render_table,
    render_tenant_utilization,
)

#: Noisy-tenant loads for the smoke: quiet baseline, mid, saturation.
SMOKE_LOADS = [1.0, 6.0, 7.5]


def build_report(result) -> str:
    sections = [render_bottleneck(result["report"])]
    sections.append(render_table(
        ["steady tenant", "p99 us (quiet)", "p99 us (noisy)", "drift",
         "isolated"],
        [(r["tenant"], r["p99_us_at_min_noise"], r["p99_us_at_max_noise"],
          f"{r['p99_drift']:+.1%}", "yes" if r["isolated"] else "NO")
         for r in result["isolation"]],
        title=f"Steady-tenant p99 while {result['noisy']} ramps "
              f"{SMOKE_LOADS[0]} -> {SMOKE_LOADS[-1]} Mrps",
    ))
    loudest = result["points"][-1]
    sections.append(render_tenant_utilization(
        loudest["utilization"], loudest["tenants"],
        title=f"Per-tenant utilization at {loudest['offered_mrps']} Mrps",
    ))
    return "\n\n".join(sections) + "\n"


def export_trace(path: str, noisy_mrps: float, nreq_total: int) -> int:
    """Re-run the loudest point in-process to export its Perfetto trace."""
    from repro.harness import MultiTenantEchoRig

    rig = MultiTenantEchoRig(telemetry=True)
    loads = {name: (noisy_mrps if name == "t0" else 0.5)
             for name in ("t0", "t1", "t2")}
    rig.open_loop(loads, nreq_total=nreq_total)
    return rig.export_chrome_trace(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nreq", type=int, default=3000,
                        help="total requests per load point (default 3000)")
    parser.add_argument("--max-drift", type=float, default=10.0, metavar="PCT",
                        help="max steady-tenant p99 drift percent "
                             "(default 10)")
    parser.add_argument("--report-out", default=None, metavar="PATH",
                        help="write the per-tenant report text here")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Perfetto trace of the loudest point")
    args = parser.parse_args(argv)

    result = experiments.fig14_isolation(
        noisy_loads_mrps=SMOKE_LOADS, nreq_total=args.nreq, cache=False,
    )
    report_text = build_report(result)
    print(report_text)
    if args.report_out:
        with open(args.report_out, "w") as handle:
            handle.write(report_text)
        print(f"wrote report to {args.report_out}")
    if args.trace_out:
        emitted = export_trace(args.trace_out, SMOKE_LOADS[-1], args.nreq)
        print(f"wrote {emitted} trace events to {args.trace_out}")

    failures = []
    report = result["report"]
    noisy = result["noisy"]
    if report["bottleneck_tenant"] != noisy:
        failures.append(
            f"bottleneck tenant is {report['bottleneck_tenant']!r}, "
            f"expected the noisy tenant {noisy!r}"
        )
    expected = {f"nic.{noisy}.fetch", f"nic.{noisy}.sched"}
    if report["bottleneck"] not in expected:
        failures.append(
            f"bottleneck {report['bottleneck']!r} is not the noisy "
            f"tenant's fetch/scheduler bound ({sorted(expected)})"
        )
    for row in result["isolation"]:
        if abs(row["p99_drift"]) * 100.0 > args.max_drift:
            failures.append(
                f"steady tenant {row['tenant']} p99 drifted "
                f"{row['p99_drift']:+.1%} (limit {args.max_drift:.1f}%)"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"PASS: {noisy} blamed by name ({report['bottleneck']} at "
          f"{report['bottleneck_utilization']:.1%}); steady tenants held "
          f"p99 within {args.max_drift:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
