"""Chaos gate: seeded fault schedules are deterministic and recoverable.

Three checks (ISSUE 6's CI criteria), in the style of the fig14 isolation
gate:

- **Determinism gate** — run the fixed ``loss`` fault schedule (wire loss
  >= 1%) twice with the same seed and diff the canonical-JSON results;
  any byte of drift fails. Chaos runs must be exactly reproducible from
  ``(code, config)`` or a chaos failure can never be replayed.
- **Recovery gate** — that same lossy run must complete with zero
  duplicate host deliveries (exactly-once at the host), bounded
  ``lost_unrecoverable``, and every issued RPC accounted for
  (``completed + lost_rpcs == nreq``).
- **Baseline gate** — a telemetry-off, faults-off echo run must keep the
  committed ``BENCH_kernel.json`` signature bit-identical: the chaos
  layer and the transport hardening must cost the default path nothing.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_chaos.py
        [--nreq N] [--seed S] [--max-lost-pct PCT] [--report-out PATH]
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.chaos.rig import FAULT_CLASSES, run_chaos_point  # noqa: E402
from repro.harness.runner import run_closed_loop  # noqa: E402

BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_kernel.json")
#: The gated schedule: i.i.d. wire loss, the acceptance criterion's
#: "wire loss >= 1%" class (FAULT_CLASSES['loss'] is 2%).
GATED_CLASS = "loss"


def canonical(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nreq", type=int, default=2000,
                        help="RPCs in the gated chaos run (default 2000)")
    parser.add_argument("--seed", type=int, default=11,
                        help="fault-schedule seed (default 11)")
    parser.add_argument("--max-lost-pct", type=float, default=1.0,
                        metavar="PCT",
                        help="max unrecoverable RPC percent (default 1)")
    parser.add_argument("--report-out", default=None, metavar="PATH",
                        help="write the gated run's result JSON here")
    args = parser.parse_args(argv)

    loss_rate = FAULT_CLASSES[GATED_CLASS]["wire"]["loss"]
    assert loss_rate >= 0.01, "gated class must inject >= 1% wire loss"
    failures = []

    # -- determinism gate ----------------------------------------------------
    first = run_chaos_point(fault_class=GATED_CLASS, nreq=args.nreq,
                            seed=args.seed)
    second = run_chaos_point(fault_class=GATED_CLASS, nreq=args.nreq,
                             seed=args.seed)
    if canonical(first) != canonical(second):
        failures.append(
            "two runs of the same seeded fault schedule diverged "
            "(canonical JSON differs)"
        )
    if args.report_out:
        with open(args.report_out, "w") as handle:
            json.dump(first, handle, indent=2, sort_keys=True)
        print(f"wrote chaos result to {args.report_out}")

    # -- recovery gate -------------------------------------------------------
    injected = (first["chaos"]["wire_losses"]
                + first["chaos"]["wire_burst_losses"])
    print(f"chaos[{GATED_CLASS}] seed={args.seed}: "
          f"{first['completed']}/{args.nreq} completed, "
          f"{injected} wire losses injected, "
          f"p99 {first['p99_us']} us, p99.9 {first['p999_us']} us")
    if injected == 0:
        failures.append("the lossy schedule injected no wire losses")
    if first["duplicate_host_deliveries"] != 0:
        failures.append(
            f"{first['duplicate_host_deliveries']} duplicate host "
            "deliveries (the host executed an RPC twice)"
        )
    if first["completed"] + first["lost_rpcs"] != args.nreq:
        failures.append(
            f"accounting leak: {first['completed']} completed + "
            f"{first['lost_rpcs']} lost != {args.nreq} issued"
        )
    max_lost = args.nreq * args.max_lost_pct / 100.0
    lost_unrecoverable = (
        first["transport"]["client"]["lost_unrecoverable"]
        + first["transport"]["server"]["lost_unrecoverable"]
    )
    if first["lost_rpcs"] > max_lost or lost_unrecoverable > max_lost:
        failures.append(
            f"lost {first['lost_rpcs']} RPCs / {lost_unrecoverable} "
            f"unrecoverable packets (limit {max_lost:.0f})"
        )

    # -- baseline gate -------------------------------------------------------
    with open(BASELINE_PATH) as handle:
        committed = json.load(handle)["echo"]
    result = run_closed_loop(batch_size=4, nreq=4000)
    signature = {
        "throughput_mrps": result.throughput_mrps,
        "p50_us": result.p50_us,
        "p99_us": result.p99_us,
        "count": result.count,
    }
    if canonical(signature) != canonical(committed["signature"]):
        failures.append(
            "faults-off echo signature drifted from BENCH_kernel.json: "
            f"{canonical(signature)} != {canonical(committed['signature'])}"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"PASS: bit-identical across two seeded runs; exactly-once at "
          f"the host under {loss_rate:.0%} wire loss; faults-off baseline "
          "unchanged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
