"""Telemetry-overhead guardrail: untraced hot path must stay free.

The observability layer (span tracer, timeline collector, usage
accounting) is built on the ``x is not None`` zero-cost pattern: every
hook site in the simulation hot path is a single load+branch when the
feature is off. This benchmark keeps that claim honest:

- **A/B timing** — interleaved rounds of the tier-1 reference echo run
  (``run_closed_loop(batch_size=4, nreq=4000)``) with telemetry off (A)
  and on (B). Interleaving makes machine-load drift hit both sides
  equally, so the B/A ratio is meaningful on a shared machine even when
  absolute wall-clock is not.
- **Signature gate (hard)** — the untraced run, the telemetry-enabled
  run, and the committed ``BENCH_kernel.json`` signature must all agree
  bit-for-bit. Telemetry only *reads* model state; if enabling it ever
  changes a simulated result, that is a correctness bug, not a perf
  regression, and this benchmark fails.
- **Multi-tenant A/B (hard)** — the same interleaved off/on comparison
  over the Fig 14 virtualized multi-NIC rig
  (``run_multi_tenant(noisy_mrps=4.0, nreq_total=3000)``), gating that
  the per-tenant probes are zero-cost when disabled: per-tenant results
  must be bit-identical with tenant telemetry off and on.
- **Regression gate (optional)** — ``--max-untraced-regression PCT``
  additionally fails if the untraced median is more than PCT percent
  slower than the ``BENCH_kernel.json`` echo median. Off by default:
  wall-clock against a number recorded on another machine is only
  comparable on the machine that recorded it (CI uses the committed
  baseline, which CI itself produced).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_overhead.py [--rounds N]
        [--nreq N] [--max-untraced-regression PCT]
"""

import argparse
import json
import os
import statistics
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.runner import run_closed_loop, run_multi_tenant  # noqa: E402

BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_kernel.json")


def echo_once(nreq: int, telemetry: bool):
    """Time one reference echo run; return (seconds, signature)."""
    started = time.perf_counter()
    result = run_closed_loop(batch_size=4, nreq=nreq, telemetry=telemetry)
    elapsed = time.perf_counter() - started
    signature = (result.throughput_mrps, result.p50_us, result.p99_us,
                 result.count)
    return elapsed, signature


def multi_tenant_once(nreq_total: int, telemetry: bool):
    """Time one Fig 14 rig run; return (seconds, per-tenant signature)."""
    started = time.perf_counter()
    result = run_multi_tenant(noisy_mrps=4.0, steady_mrps=0.5,
                              nreq_total=nreq_total, telemetry=telemetry)
    elapsed = time.perf_counter() - started
    signature = tuple(
        (tenant, stats.count, stats.p50_us, stats.p99_us,
         stats.throughput_mrps)
        for tenant, stats in sorted(result.per_tenant.items())
    )
    return elapsed, signature


def committed_signature(nreq: int):
    """(signature tuple, echo median_s) from BENCH_kernel.json, if usable."""
    try:
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None, None
    echo = data.get("echo", {})
    if echo.get("nreq") != nreq:
        return None, None
    sig = echo.get("signature", {})
    try:
        return ((sig["throughput_mrps"], sig["p50_us"], sig["p99_us"],
                 sig["count"]), echo.get("median_s"))
    except KeyError:
        return None, None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved A/B repetitions (default 5)")
    parser.add_argument("--nreq", type=int, default=4000,
                        help="echo benchmark request count (default 4000)")
    parser.add_argument("--tenant-nreq", type=int, default=3000,
                        help="multi-tenant rig total request count "
                             "(default 3000)")
    parser.add_argument("--max-untraced-regression", type=float, default=None,
                        metavar="PCT",
                        help="fail if the untraced median is more than PCT%% "
                             "slower than the BENCH_kernel.json echo median "
                             "(only meaningful on the machine that recorded "
                             "the baseline)")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be >= 1")

    echo_once(args.nreq, telemetry=False)  # warmup
    off_times, on_times = [], []
    off_sigs, on_sigs = set(), set()
    for _ in range(args.rounds):
        seconds, sig = echo_once(args.nreq, telemetry=False)
        off_times.append(seconds)
        off_sigs.add(sig)
        seconds, sig = echo_once(args.nreq, telemetry=True)
        on_times.append(seconds)
        on_sigs.add(sig)

    if len(off_sigs) != 1 or off_sigs != on_sigs:
        print(f"FAIL: telemetry changed simulated results\n"
              f"  off: {sorted(off_sigs)}\n  on:  {sorted(on_sigs)}",
              file=sys.stderr)
        return 1
    signature = off_sigs.pop()
    committed, committed_median = committed_signature(args.nreq)
    if committed is not None and committed != signature:
        print(f"FAIL: results diverge from BENCH_kernel.json\n"
              f"  committed: {committed}\n  measured:  {signature}",
              file=sys.stderr)
        return 1

    off_median = statistics.median(off_times)
    on_median = statistics.median(on_times)
    overhead = on_median / off_median - 1.0
    print(f"untraced median: {off_median:.4f} s (best {min(off_times):.4f})")
    print(f"telemetry median: {on_median:.4f} s (best {min(on_times):.4f})")
    print(f"telemetry overhead: {overhead:+.1%} "
          f"(interleaved, {args.rounds} rounds)")
    print(f"result signature: {signature}"
          + (" == BENCH_kernel.json" if committed is not None else
             " (no comparable BENCH_kernel.json entry)"))

    # Multi-tenant rig: same interleaved off/on protocol, gating that the
    # per-tenant probes (ISSUE 4) are zero-cost when disabled.
    multi_tenant_once(args.tenant_nreq, telemetry=False)  # warmup
    mt_off_times, mt_on_times = [], []
    mt_off_sigs, mt_on_sigs = set(), set()
    for _ in range(args.rounds):
        seconds, sig = multi_tenant_once(args.tenant_nreq, telemetry=False)
        mt_off_times.append(seconds)
        mt_off_sigs.add(sig)
        seconds, sig = multi_tenant_once(args.tenant_nreq, telemetry=True)
        mt_on_times.append(seconds)
        mt_on_sigs.add(sig)
    if len(mt_off_sigs) != 1 or mt_off_sigs != mt_on_sigs:
        print(f"FAIL: tenant telemetry changed simulated results\n"
              f"  off: {sorted(mt_off_sigs)}\n  on:  {sorted(mt_on_sigs)}",
              file=sys.stderr)
        return 1
    mt_off = statistics.median(mt_off_times)
    mt_on = statistics.median(mt_on_times)
    print(f"multi-tenant untraced median: {mt_off:.4f} s, "
          f"telemetry median: {mt_on:.4f} s "
          f"({mt_on / mt_off - 1.0:+.1%}); per-tenant results bit-identical")

    if args.max_untraced_regression is not None:
        if committed_median is None:
            print("FAIL: --max-untraced-regression needs a comparable "
                  "echo entry in BENCH_kernel.json", file=sys.stderr)
            return 1
        regression = off_median / committed_median - 1.0
        print(f"untraced vs committed baseline: {regression:+.1%} "
              f"(limit +{args.max_untraced_regression:.1f}%)")
        if regression * 100.0 > args.max_untraced_regression:
            print("FAIL: untraced hot path regressed beyond the limit",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
