"""Cluster gate: rack-scale runs stay deterministic and well-scaled.

Three checks (ISSUE 9's CI criteria), in the style of the chaos gate:

- **Determinism gate** — run a fixed-seed 8-machine social-network
  scenario (p2c balancing, bursty Zipf-skewed sessions, autoscaler on)
  twice *in one process* and diff the canonical-JSON results; any byte
  of drift fails. This is the strictest reproducibility check the rig
  offers: it catches hidden process-global state (connection counters,
  unseeded RNGs) that a cross-process comparison would mask.
- **Autoscaler gate** — the scenario is sized so the compute-bound
  bottleneck tier (post_storage) must scale up at least once, and every
  tier must end inside its [min, max] replica bounds with no unserved
  requests left behind.
- **Baseline gate** — a cluster-free, telemetry-off echo run must keep
  the committed ``BENCH_kernel.json`` signature bit-identical: the new
  harness must cost the kernel's default path nothing.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_cluster.py
        [--nreq N] [--seed S] [--load-krps K] [--report-out PATH]
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.cluster import (  # noqa: E402
    cluster_signature,
    run_cluster_point,
)
from repro.harness.runner import run_closed_loop  # noqa: E402

BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_kernel.json")


def canonical(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nreq", type=int, default=1500,
                        help="requests in the gated run (default 1500)")
    parser.add_argument("--seed", type=int, default=11,
                        help="cluster + workload seed (default 11)")
    parser.add_argument("--load-krps", type=float, default=80.0,
                        help="peak offered load (default 80, which "
                        "saturates one post_storage replica)")
    parser.add_argument("--report-out", default=None, metavar="PATH",
                        help="write the gated run's result JSON here")
    args = parser.parse_args(argv)

    failures = []
    scenario = dict(app="social_network", machines=8, policy="p2c",
                    modulation="bursty", load_krps=args.load_krps,
                    nreq=args.nreq, seed=args.seed)

    # -- determinism gate ----------------------------------------------------
    first = run_cluster_point(**scenario)
    second = run_cluster_point(**scenario)
    if cluster_signature(first) != cluster_signature(second):
        failures.append(
            "two in-process runs of the same seeded cluster scenario "
            "diverged (canonical JSON differs)"
        )
    if args.report_out:
        with open(args.report_out, "w") as handle:
            json.dump(first, handle, indent=2, sort_keys=True)
        print(f"wrote cluster result to {args.report_out}")

    # -- autoscaler gate -----------------------------------------------------
    print(f"cluster[social_network] seed={args.seed}: "
          f"{first['completed']}/{args.nreq} completed, "
          f"thr {first['throughput_krps']} Krps, "
          f"p99 {first['p99_us']} us, "
          f"SLO {first['slo_attainment']:.1%}, "
          f"{len(first['scaling_events'])} scaling events")
    if first["completed"] != args.nreq or first["lost"] != 0:
        failures.append(
            f"accounting leak: {first['completed']} completed + "
            f"{first['lost']} lost != {args.nreq} issued"
        )
    bottleneck = first["tiers"]["post_storage"]
    if bottleneck["scale_ups"] < 1:
        failures.append(
            "the autoscaler never grew the saturated post_storage tier "
            f"(busy one-replica tier at {args.load_krps} Krps peak)"
        )
    for name, tier in first["tiers"].items():
        if not tier["min"] <= tier["final"] <= tier["max"]:
            failures.append(
                f"tier {name} ended at {tier['final']} replicas, outside "
                f"[{tier['min']}, {tier['max']}]"
            )
        if not tier["peak"] <= tier["max"]:
            failures.append(
                f"tier {name} peaked at {tier['peak']} replicas, above "
                f"max {tier['max']}"
            )

    # -- baseline gate -------------------------------------------------------
    with open(BASELINE_PATH) as handle:
        committed = json.load(handle)["echo"]
    result = run_closed_loop(batch_size=4, nreq=4000)
    signature = {
        "throughput_mrps": result.throughput_mrps,
        "p50_us": result.p50_us,
        "p99_us": result.p99_us,
        "count": result.count,
    }
    if canonical(signature) != canonical(committed["signature"]):
        failures.append(
            "cluster-free echo signature drifted from BENCH_kernel.json: "
            f"{canonical(signature)} != {canonical(committed['signature'])}"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS: bit-identical across two in-process runs; autoscaler "
          f"grew post_storage to {bottleneck['peak']} replicas within "
          "bounds; cluster-free baseline unchanged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
