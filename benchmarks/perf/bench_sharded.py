"""Sharded-engine parity gate: serial vs sharded must be bit-identical.

Runs the multi-host echo mesh (``repro.harness.mesh.run_echo_mesh``) in
*both* window modes — ``fixed`` (one-lookahead conservative windows) and
``adaptive`` (horizons stretched past hosts' declared egress bounds) — at
``shards=1`` (the serial fallback) and ``--shards N``, then compares
canonical result signatures:

- **serial vs sharded**: the conservative-window engine's contract is that
  partitioning hosts across worker processes never changes the simulation.
  A signature diff here is a correctness bug, not a perf regression.
- **fixed vs adaptive**: stretching horizons must never change what is
  simulated — adaptive runs are bit-identical to fixed ones, only the
  window accounting differs.
- **sharded vs sharded**: a second adaptive sharded run guards run-to-run
  determinism of the parallel path itself (worker scheduling must not
  leak into results).

Writes an artifact JSON (``--out``) recording the signatures, the
per-host event counts from each run, and the parity verdicts, then exits
non-zero on any mismatch so CI fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_sharded.py
        [--hosts N] [--shards N] [--nreq N] [--out PATH]
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.mesh import mesh_signature, run_echo_mesh  # noqa: E402


def _run(hosts: int, shards: int, nreq_per_host: int,
         window_mode: str = "adaptive"):
    result = run_echo_mesh(hosts=hosts, shards=shards,
                           nreq_per_host=nreq_per_host,
                           window_mode=window_mode)
    return {
        "shards": shards,
        "window_mode": window_mode,
        "signature": mesh_signature(result),
        "events_per_host": result.events_per_host,
        "events_total": result.events_total,
        "windows": result.windows,
        "stretched_windows": result.stretched_windows,
        "skipped_shard_rounds": result.skipped_shard_rounds,
        "throughput_mrps": result.throughput_mrps,
        "p50_us": result.p50_us,
        "p99_us": result.p99_us,
        "count": result.count,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hosts", type=int, default=4,
                        help="mesh size (default 4)")
    parser.add_argument("--shards", type=int, default=2,
                        help="sharded-side shard count (default 2)")
    parser.add_argument("--nreq", type=int, default=1000,
                        help="requests per host (default 1000)")
    parser.add_argument("--out", default="mesh_parity.json",
                        help="artifact JSON path (default mesh_parity.json)")
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error("--shards must be >= 2 (shards=1 is the serial side)")
    if args.hosts < args.shards:
        parser.error("--hosts must be >= --shards")

    serial_fixed = _run(args.hosts, 1, args.nreq, "fixed")
    sharded_fixed = _run(args.hosts, args.shards, args.nreq, "fixed")
    serial = _run(args.hosts, 1, args.nreq)
    sharded = _run(args.hosts, args.shards, args.nreq)
    sharded_again = _run(args.hosts, args.shards, args.nreq)

    serial_vs_sharded = (
        serial["signature"] == sharded["signature"]
        and serial_fixed["signature"] == sharded_fixed["signature"]
    )
    fixed_vs_adaptive = serial_fixed["signature"] == serial["signature"]
    run_to_run = sharded["signature"] == sharded_again["signature"]

    artifact = {
        "hosts": args.hosts,
        "nreq_per_host": args.nreq,
        "cpu_count": os.cpu_count(),
        "runs": [serial_fixed, sharded_fixed, serial, sharded,
                 sharded_again],
        "parity": {
            "serial_vs_sharded": serial_vs_sharded,
            "fixed_vs_adaptive": fixed_vs_adaptive,
            "sharded_run_to_run": run_to_run,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for run in artifact["runs"]:
        print(f"shards={run['shards']} mode={run['window_mode']}: "
              f"events={run['events_total']} windows={run['windows']} "
              f"mrps={run['throughput_mrps']}")
    if not serial_vs_sharded:
        print("PARITY FAILURE: sharded signature diverges from serial",
              file=sys.stderr)
        return 1
    if not fixed_vs_adaptive:
        print("PARITY FAILURE: adaptive horizons diverge from fixed "
              "windows", file=sys.stderr)
        return 1
    if not run_to_run:
        print("PARITY FAILURE: sharded runs are not deterministic "
              "run-to-run", file=sys.stderr)
        return 1
    print(f"parity OK: shards={args.shards} bit-identical to serial in "
          f"both window modes ({args.hosts}-host mesh, "
          f"{args.nreq} req/host)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
