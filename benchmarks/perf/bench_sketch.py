"""Sketch-mode guardrail: O(1) memory at million-request scale, 1% parity.

Three gates (all hard):

- **Memory bound** — a million deterministic pseudo-latencies stream
  through a ``LatencyRecorder(mode="sketch")``. The recorder must retain
  **zero** raw samples (``tracked_samples == 0``) and the sketch's
  bucket count must stay under the value-range bound (a few hundred for
  three decades of latency at 1% accuracy) — i.e. memory is a function
  of the value range, never of the request count.
- **Percentile parity** — the sketched p50/p90/p99 of that stream must
  land within the configured relative accuracy (1%) of the exact
  percentiles over the same million samples, and a sketch-mode echo run
  must land within 1% of the exact-mode run point for point.
- **Exact-mode determinism** — the exact-mode echo run must still match
  the committed ``BENCH_kernel.json`` signature bit-for-bit: threading
  ``mode`` through the harness must not perturb the default path.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_sketch.py [--nsamples N]
        [--nreq N] [--out report.json]
"""

import argparse
import json
import math
import os
import random
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.runner import run_closed_loop  # noqa: E402
from repro.sim.stats import LatencyRecorder, percentile  # noqa: E402

BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_kernel.json")

#: Log-bucket bound for the synthetic stream: its latencies span about
#: three decades, which is ~350 buckets at 1% accuracy; 1200 leaves slack
#: for the range of the lognormal tail without ever scaling with N.
MAX_BUCKETS = 1200

CHECKED_PCTS = (50, 90, 99)


def million_sample_gate(nsamples: int) -> dict:
    """Feed the sketch recorder a huge stream; gate memory and parity."""
    rng = random.Random(0x5EE7C4)
    recorder = LatencyRecorder(mode="sketch")
    exact = []
    started = time.perf_counter()
    for i in range(nsamples):
        latency = int(math.exp(rng.gauss(7.5, 0.8))) + 1  # ~1.8 us median
        recorder.record(i, i + latency)
        exact.append(latency)
    elapsed = time.perf_counter() - started
    failures = []
    if recorder.tracked_samples != 0:
        failures.append(
            f"sketch recorder retained {recorder.tracked_samples} samples"
        )
    buckets = recorder.sketch.bucket_count
    if buckets > MAX_BUCKETS:
        failures.append(f"bucket count {buckets} exceeds bound {MAX_BUCKETS}")
    exact.sort()
    summary = recorder.summary()
    alpha = recorder.sketch.relative_accuracy
    parity = {}
    for pct in CHECKED_PCTS:
        true_ns = percentile(exact, pct, presorted=True)
        got_ns = getattr(summary, f"p{pct}_ns")
        error = abs(got_ns - true_ns) / true_ns
        parity[f"p{pct}"] = {"exact_ns": true_ns, "sketch_ns": got_ns,
                             "relative_error": error}
        if error > alpha:
            failures.append(
                f"p{pct} relative error {error:.4%} exceeds accuracy "
                f"{alpha:.0%}"
            )
    return {
        "nsamples": nsamples,
        "seconds": elapsed,
        "tracked_samples": recorder.tracked_samples,
        "bucket_count": buckets,
        "parity": parity,
        "failures": failures,
    }


def echo_parity_gate(nreq: int) -> dict:
    """Exact vs sketch echo runs: same counts, percentiles within 1%."""
    exact = run_closed_loop(batch_size=4, nreq=nreq)
    sketched = run_closed_loop(batch_size=4, nreq=nreq, mode="sketch")
    failures = []
    if sketched.count != exact.count:
        failures.append(
            f"count mismatch: sketch {sketched.count} vs exact {exact.count}"
        )
    if sketched.throughput_mrps != exact.throughput_mrps:
        failures.append("throughput diverged (it is sample-free state)")
    parity = {}
    for attr in ("p50_us", "p90_us", "p99_us"):
        error = abs(getattr(sketched, attr) / getattr(exact, attr) - 1.0)
        parity[attr] = {"exact": getattr(exact, attr),
                        "sketch": getattr(sketched, attr),
                        "relative_error": error}
        if error > 0.01:
            failures.append(f"echo {attr} off by {error:.4%} (> 1%)")
    signature = (exact.throughput_mrps, exact.p50_us, exact.p99_us,
                 exact.count)
    return {"nreq": nreq, "parity": parity, "signature": signature,
            "failures": failures}


def committed_signature(nreq: int):
    """The BENCH_kernel.json echo signature, when comparable."""
    try:
        with open(BENCH_JSON) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    echo = data.get("echo", {})
    if echo.get("nreq") != nreq:
        return None
    sig = echo.get("signature", {})
    try:
        return (sig["throughput_mrps"], sig["p50_us"], sig["p99_us"],
                sig["count"])
    except KeyError:
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nsamples", type=int, default=1_000_000,
                        help="synthetic stream length (default 1,000,000)")
    parser.add_argument("--nreq", type=int, default=4000,
                        help="echo run request count (default 4000, the "
                             "BENCH_kernel.json reference)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)
    if args.nsamples < 1 or args.nreq < 1:
        parser.error("--nsamples and --nreq must be >= 1")

    stream = million_sample_gate(args.nsamples)
    print(f"stream: {stream['nsamples']:,} samples in "
          f"{stream['seconds']:.2f} s -> {stream['bucket_count']} buckets, "
          f"{stream['tracked_samples']} retained samples")
    for pct, entry in stream["parity"].items():
        print(f"  {pct}: exact {entry['exact_ns']:.0f} ns, sketch "
              f"{entry['sketch_ns']:.0f} ns "
              f"({entry['relative_error']:.3%} error)")

    echo = echo_parity_gate(args.nreq)
    for attr, entry in echo["parity"].items():
        print(f"echo {attr}: exact {entry['exact']:.4f}, sketch "
              f"{entry['sketch']:.4f} ({entry['relative_error']:.3%} error)")

    failures = stream["failures"] + echo["failures"]
    committed = committed_signature(args.nreq)
    if committed is None:
        print("exact-mode signature: no comparable BENCH_kernel.json entry")
    elif committed != echo["signature"]:
        failures.append(
            f"exact-mode echo diverged from BENCH_kernel.json: committed "
            f"{committed} vs measured {echo['signature']}"
        )
    else:
        print("exact-mode signature == BENCH_kernel.json")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"stream": stream, "echo": echo,
                       "failures": failures}, handle, indent=2)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: sketch mode holds O(1) memory and 1% percentile parity; "
          "exact mode untouched")
    return 0


if __name__ == "__main__":
    sys.exit(main())
