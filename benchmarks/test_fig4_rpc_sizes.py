"""Fig 4: distribution of RPC request/response sizes."""

from bench_common import emit

from repro.harness.experiments import fig4_rpc_sizes
from repro.harness.report import render_table


def test_fig4_rpc_sizes(once):
    result = once(fig4_rpc_sizes)
    rows = [
        ("social requests <= 512 B", result["paper"]["requests_under_512"],
         result["social_requests_under_512"]),
        ("social responses <= 64 B", result["paper"]["responses_under_64"],
         result["social_responses_under_64"]),
        ("media requests <= 512 B", result["paper"]["requests_under_512"],
         result["media_requests_under_512"]),
        ("media responses <= 64 B", result["paper"]["responses_under_64"],
         result["media_responses_under_64"]),
    ]
    table = render_table(["cdf point", "paper (at least)", "measured"], rows,
                         title="Fig 4 — RPC size distributions")
    medians = render_table(
        ["tier", "median request B"],
        sorted(result["per_tier_median_request"].items()),
        title="Fig 4 (right) — per-tier median request sizes",
    )
    emit("fig4_rpc_sizes", table + "\n\n" + medians)

    assert result["social_requests_under_512"] >= 0.75
    assert result["social_responses_under_64"] >= 0.90
    assert result["media_responses_under_64"] >= 0.90
    per_tier = result["per_tier_median_request"]
    # Text's median is ~580 B while Media/User/UniqueID stay <= 64 B.
    assert per_tier["text"] == 580
    for small_tier in ("media", "user", "unique_id"):
        assert per_tier[small_tier] <= 64
