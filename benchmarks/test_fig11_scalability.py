"""Fig 11 (right): thread scalability, end-to-end RPCs vs raw UPI reads."""

from bench_common import emit

from repro.harness.experiments import FIG11_PAPER, fig11_scalability
from repro.harness.report import render_table


def test_fig11_scalability(once):
    rows = once(fig11_scalability)
    table = render_table(
        ["threads", "e2e Mrps", "raw UPI Mrps"],
        [(r["threads"], r["e2e_mrps"], r["raw_mrps"]) for r in rows],
        title=("Fig 11 (right) — thread scaling "
               f"(paper plateaus: {FIG11_PAPER['e2e_plateau_mrps']} e2e, "
               f"{FIG11_PAPER['raw_plateau_mrps']} raw)"),
    )
    emit("fig11_scalability", table)

    by_threads = {r["threads"]: r for r in rows}
    # Near-linear scaling to 4 threads, then flat at ~42 Mrps.
    assert by_threads[2]["e2e_mrps"] > 1.6 * by_threads[1]["e2e_mrps"]
    assert by_threads[4]["e2e_mrps"] > 3.0 * by_threads[1]["e2e_mrps"]
    plateau = by_threads[4]["e2e_mrps"]
    assert abs(plateau - FIG11_PAPER["e2e_plateau_mrps"]) < 5.0
    assert abs(by_threads[8]["e2e_mrps"] - plateau) < 2.0
    # Raw reads plateau around 80 Mrps — roughly 2x the end-to-end cap.
    raw_plateau = by_threads[8]["raw_mrps"]
    assert abs(raw_plateau - FIG11_PAPER["raw_plateau_mrps"]) < 10.0
    assert raw_plateau > 1.7 * plateau
