"""Table 4: Flight Registration — Simple vs Optimized threading models."""

from bench_common import emit

from repro.harness.experiments import table4_flight
from repro.harness.report import render_table


def test_table4_flight(once):
    rows = once(table4_flight)
    table = render_table(
        ["model", "paper max Krps", "max Krps", "paper p50", "p50 us",
         "paper p90", "p90 us", "paper p99", "p99 us"],
        [(r["model"], r["paper_max_krps"], r["max_krps"],
          r["paper_p50_us"], r["p50_us"], r["paper_p90_us"], r["p90_us"],
          r["paper_p99_us"], r["p99_us"]) for r in rows],
        title="Table 4 — Flight Registration service (drops < 1%)",
    )
    emit("table4_flight", table)

    by_model = {r["model"]: r for r in rows}
    simple = by_model["simple"]
    optimized = by_model["optimized"]
    # The headline: worker threading lifts throughput by an order of
    # magnitude (paper: ~17x) at a latency cost.
    assert optimized["max_krps"] > 10 * simple["max_krps"]
    assert optimized["p50_us"] > simple["p50_us"]
    # Simple's lowest median latency is in the low-teens of us.
    assert abs(simple["p50_us"] - simple["paper_p50_us"]) < 4.0
    # Optimized sustains tens of Krps.
    assert optimized["max_krps"] > 30.0
