"""Section 5.3: raw one-way shared-memory access over UPI vs PCIe DMA."""

from bench_common import emit

from repro.harness.experiments import sec53_raw_access
from repro.harness.report import render_table


def test_sec53_raw_access(once):
    result = once(sec53_raw_access)
    table = render_table(
        ["interconnect", "paper ns", "measured ns"],
        [("UPI coherent read", result["paper_upi_ns"], result["upi_ns"]),
         ("PCIe DMA read", result["paper_pcie_ns"], result["pcie_ns"])],
        title="Section 5.3 — raw one-way shared-memory read latency",
    )
    emit("sec53_raw_access", table)
    assert abs(result["upi_ns"] - result["paper_upi_ns"]) < 40
    assert abs(result["pcie_ns"] - result["paper_pcie_ns"]) < 40
    # UPI is physically slightly faster than PCIe (the paper's finding).
    assert result["upi_ns"] < result["pcie_ns"]
