"""Extension: MICA multi-core scaling over distributed FPGAs.

The measurement section 5.6 deferred to future work (client/server LLC
contention made single-machine multi-core numbers unstable): with the
server alone on its machine and load arriving over the ToR switch, MICA
scales with its partitions until SMT sharing flattens per-thread gains.
"""

from bench_common import emit

from repro.apps.kvs import run_kvs_workload
from repro.apps.kvs.cluster_bench import run_kvs_multicore
from repro.harness.report import render_table


def sweep():
    rows = []
    for threads in (1, 2, 4, 8):
        result = run_kvs_multicore(server_threads=threads,
                                   nreq_per_thread=3000)
        rows.append({
            "threads": threads,
            "mrps": result.throughput_mrps,
            "p50_us": result.p50_us,
            "drop_rate": result.drop_rate,
        })
    return rows


def test_mica_multicore_scaling(once):
    rows = once(sweep)
    emit("extension_mica_multicore", render_table(
        ["server threads", "Mrps", "p50 us", "drops"],
        [(r["threads"], r["mrps"], r["p50_us"], f"{r['drop_rate']:.1%}")
         for r in rows],
        title=("Extension — MICA multi-core over distributed FPGAs "
               "(95% GET, zipf 0.99)"),
    ))
    by_threads = {r["threads"]: r for r in rows}
    # Meaningful scaling: ~3x at 4 threads, >4x at 8 (SMT flattens it).
    assert by_threads[2]["mrps"] > 1.5 * by_threads[1]["mrps"]
    assert by_threads[4]["mrps"] > 2.5 * by_threads[1]["mrps"]
    assert by_threads[8]["mrps"] > 4.0 * by_threads[1]["mrps"]
    for row in rows:
        assert row["drop_rate"] < 0.01


def colocation_sweep():
    """§5.6's reason for omitting the measurement: client/server LLC
    contention on one machine vs clean distributed machines."""
    rows = []
    for threads in (2, 4):
        colocated = run_kvs_workload(
            system="mica", num_threads=threads, num_keys=1_000_000,
            get_fraction=0.95, nreq=3000 * threads, closed_loop_window=24,
            model_llc_contention=True, warmup_ns=100_000,
        )
        distributed = run_kvs_multicore(server_threads=threads,
                                        nreq_per_thread=3000)
        rows.append({
            "threads": threads,
            "colocated_mrps": colocated.throughput_mrps,
            "distributed_mrps": distributed.throughput_mrps,
        })
    return rows


def test_colocation_vs_distributed(once):
    rows = once(colocation_sweep)
    emit("extension_colocation", render_table(
        ["server threads", "colocated Mrps", "distributed Mrps"],
        [(r["threads"], r["colocated_mrps"], r["distributed_mrps"])
         for r in rows],
        title=("Extension — MICA multi-core: colocated (LLC-contended, "
               "as §5.6 describes) vs distributed FPGAs"),
    ))
    for row in rows:
        # Distributed measurement is strictly cleaner — the paper's reason
        # for deferring multi-core numbers to a real cluster.
        assert row["distributed_mrps"] > row["colocated_mrps"]
