"""Ablation: connection-cache size vs DRAM-miss penalty.

Section 4.2 sizes the on-NIC connection cache by expected connection count
and proposes DRAM backing for overflow. This ablation opens more
connections than the cache holds and measures the per-request cost of
conflict misses on the ingress/egress pipelines.
"""

from bench_common import emit

from repro.harness.report import render_table
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc import RpcClient, RpcThreadedServer
from repro.sim import LatencyRecorder, Simulator
from repro.stacks import DaggerStack, connect


def _echo(ctx, payload):
    return payload, 48
    yield  # pragma: no cover


def run_with_cache(cache_entries, num_connections, nreq=2000):
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration, loopback=True)
    hard = NicHardConfig(num_flows=1,
                         connection_cache_entries=cache_entries)
    client_stack = DaggerStack(machine, switch, "client", hard=hard)
    server_stack = DaggerStack(machine, switch, "server", hard=hard)
    server = RpcThreadedServer(sim, machine.calibration)
    server.register_handler("echo", _echo)
    server.add_server_thread(server_stack.port(0), machine.thread(6))
    server.start()
    thread = machine.thread(0)
    clients = [
        RpcClient(client_stack.port(0), thread,
                  connect(client_stack, 0, server_stack, 0))
        for _ in range(num_connections)
    ]
    recorder = LatencyRecorder()

    def driver():
        for i in range(nreq):
            client = clients[i % len(clients)]
            call = yield from client.call_async("echo", b"", 48)
            yield call.event
            recorder.record(call.issued_at, call.completed_at)

    sim.run_until_done(sim.spawn(driver()))
    misses = (client_stack.nic.connection_manager.cache.misses
              + server_stack.nic.connection_manager.cache.misses)
    return {
        "cache_entries": cache_entries,
        "connections": num_connections,
        "p50_us": recorder.summary().p50_us,
        "misses_per_req": misses / nreq,
    }


def sweep():
    rows = []
    for cache_entries in (4, 16, 64, 1024):
        rows.append(run_with_cache(cache_entries, num_connections=64))
    return rows


def test_connection_cache_ablation(once):
    rows = once(sweep)
    emit("ablation_connection_cache", render_table(
        ["cache entries", "connections", "p50 us", "misses/req"],
        [(r["cache_entries"], r["connections"], r["p50_us"],
          r["misses_per_req"]) for r in rows],
        title="Ablation — connection-cache size, 64 open connections",
    ))
    tiny, big = rows[0], rows[-1]
    # A cache smaller than the working set thrashes: every request pays
    # DRAM-miss penalties on both NICs; a big cache absorbs them all.
    assert tiny["misses_per_req"] > 1.0
    assert big["misses_per_req"] < 0.1
    assert tiny["p50_us"] > big["p50_us"] + 0.8  # ~2x 600 ns penalties
    # Monotone improvement along the sweep.
    misses = [r["misses_per_req"] for r in rows]
    assert misses == sorted(misses, reverse=True)
