"""Ablation: which tiers get worker threads in the Flight app.

Table 4 compares only the two extremes; this sweep shows the contribution
of each tier's threading choice: Flight is the binding constraint, so
giving *only* Flight worker threads recovers almost all of the Optimized
model's throughput at lower latency cost.
"""

from bench_common import emit

from repro.apps.microservices.flight import build_flight_app
from repro.harness.report import render_table


def build_variant(which):
    if which == "simple":
        return build_flight_app(optimized=False)
    if which == "flight-only":
        # Workers for Flight; Check-in/Passport stay on dispatch threads.
        return build_flight_app(optimized=True, checkin_workers=1,
                                passport_workers=1)
    return build_flight_app(optimized=True)


def sweep():
    rows = []
    for which, load in (("simple", 2.6), ("flight-only", 25),
                        ("optimized", 25)):
        app = build_variant(which)
        loaded = app.run(load, nreq=3000, measure_from_issue=True)
        app = build_variant(which)
        latency = app.run(0.5, nreq=1200)
        rows.append({
            "variant": which,
            "thr_krps": loaded.throughput_krps,
            "drop_rate": loaded.drop_rate,
            "p50_us": latency.p50_us,
        })
    return rows


def test_threading_sweep(once):
    rows = once(sweep)
    emit("ablation_threading_sweep", render_table(
        ["variant", "thr Krps", "drops", "low-load p50 us"],
        [(r["variant"], r["thr_krps"], f"{r['drop_rate']:.1%}",
          r["p50_us"]) for r in rows],
        title="Ablation — worker threads per Flight-app tier",
    ))
    by_variant = {r["variant"]: r for r in rows}
    # Moving only Flight to workers recovers the throughput cliff...
    assert (by_variant["flight-only"]["thr_krps"]
            > 5 * by_variant["simple"]["thr_krps"])
    # ...and the full Optimized config sustains the same offered load.
    assert by_variant["optimized"]["thr_krps"] > 20
    # Latency cost ordering: simple < either worker variant.
    assert (by_variant["simple"]["p50_us"]
            < by_variant["flight-only"]["p50_us"])
