"""Ablation: the future-work hardware extensions (§4.5, §4.7).

- **Hardware reassembly** (CAM-based): removes the per-line software
  reassembly CPU cost, lifting single-core throughput for >64 B RPCs at a
  steep FPGA-area price — quantifying the trade-off the paper deferred.
- **Reliable transport** (Protocol unit): under receiver pressure the
  NACK/retransmit machinery converts packet loss into extra latency and
  NIC-side work, with zero host CPU involvement.
"""

from bench_common import emit

from repro.harness import EchoRig
from repro.harness.report import render_table
from repro.hw.nic.config import NicHardConfig
from repro.hw.nic.resources import estimate_resources


def reassembly_sweep():
    rows = []
    for rpc_bytes in (48, 496, 1008):
        for hw in (False, True):
            rig = EchoRig(batch_size=4, auto_batch=True,
                          rpc_bytes=rpc_bytes,
                          hard_overrides={"hw_reassembly": hw})
            result = rig.closed_loop(window=64, nreq=6000)
            rows.append({
                "rpc_bytes": rpc_bytes,
                "reassembly": "hw (CAM)" if hw else "software",
                "mrps": result.throughput_mrps,
            })
    return rows


def test_hw_reassembly(once):
    rows = once(reassembly_sweep)
    base = estimate_resources(NicHardConfig())
    cam = estimate_resources(NicHardConfig(hw_reassembly=True))
    table = render_table(
        ["RPC bytes", "reassembly", "Mrps/core"],
        [(r["rpc_bytes"], r["reassembly"], r["mrps"]) for r in rows],
        title=(
            "Ablation — software vs CAM reassembly "
            f"(CAM costs +{(cam.luts - base.luts) / 1000:.0f}K LUTs, "
            f"+{cam.m20k_blocks - base.m20k_blocks} M20K)"
        ),
    )
    emit("ablation_hw_reassembly", table)

    def cell(rpc_bytes, mode):
        return next(r["mrps"] for r in rows
                    if r["rpc_bytes"] == rpc_bytes
                    and r["reassembly"].startswith(mode))

    # Single-line RPCs gain nothing from the CAM...
    assert abs(cell(48, "hw") - cell(48, "software")) < 0.8
    # ...multi-line RPCs gain substantially (no per-line CPU cost).
    assert cell(1008, "hw") > 1.5 * cell(1008, "software")


def reliability_sweep():
    rows = []
    configs = [
        ("udp-like (paper)", {}),
        ("reliable (NACK/retx)", {"reliable_transport": True}),
        ("credits (flow ctl)", {"flow_control": True,
                                "flow_control_credits": 8,
                                "credit_batch": 4}),
    ]
    for label, overrides in configs:
        rig = EchoRig(batch_size=4, auto_batch=True, rx_ring_entries=8,
                      hard_overrides=overrides)
        result = rig.closed_loop(window=64, nreq=6000)
        server_nic = rig.server_stack.nic
        client_nic = rig.client_stack.nic
        retransmissions = 0
        if client_nic.transport is not None:
            retransmissions = (client_nic.transport.stats.retransmissions
                               + server_nic.transport.stats.retransmissions)
        rows.append({
            "transport": label,
            "completed": result.count,
            "drops": server_nic.monitor.drops + client_nic.monitor.drops,
            "retransmissions": retransmissions,
            "p99_us": result.p99_us,
        })
    return rows


def test_protocol_unit_variants(once):
    rows = once(reliability_sweep)
    emit("ablation_protocol_unit", render_table(
        ["protocol unit", "completed", "nic drops", "retransmissions",
         "p99 us"],
        [(r["transport"], r["completed"], r["drops"],
          r["retransmissions"], r["p99_us"]) for r in rows],
        title="Ablation — Protocol unit variants, tiny (8-entry) rings",
    ))
    udp, reliable, credits = rows
    # With tiny rings and a 64-deep window the unreliable run loses RPCs
    # (they never complete); the reliable run recovers them on the NIC...
    assert reliable["retransmissions"] > 0
    assert reliable["completed"] >= udp["completed"]
    # ...and credit-based flow control prevents the drops entirely.
    assert credits["drops"] == 0
    assert credits["retransmissions"] == 0
    assert credits["completed"] >= udp["completed"]
