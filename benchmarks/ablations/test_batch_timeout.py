"""Ablation: the fixed-batch timeout soft register.

With fixed B > 1 at low load, the RX FSM waits for a full batch; the soft
batch timeout bounds that wait. Sweeping it shows the latency floor moving
with the timeout — and why auto-batching (which needs no timeout) is the
better default the paper lands on.
"""

from bench_common import emit

from repro.harness import EchoRig
from repro.harness.report import render_table


def run_with_timeout(timeout_ns):
    rig = EchoRig(batch_size=4, auto_batch=False)
    rig.client_stack.nic.soft.batch_timeout_ns = timeout_ns
    rig.server_stack.nic.soft.batch_timeout_ns = timeout_ns
    result = rig.open_loop(0.5, nreq=4000)
    return {"timeout_ns": timeout_ns, "p50_us": result.p50_us,
            "p99_us": result.p99_us}


def sweep():
    rows = [run_with_timeout(t) for t in (500, 1500, 3000, 6000)]
    auto = EchoRig(batch_size=4, auto_batch=True).open_loop(0.5, nreq=4000)
    rows.append({"timeout_ns": "auto-batch", "p50_us": auto.p50_us,
                 "p99_us": auto.p99_us})
    return rows


def test_batch_timeout(once):
    rows = once(sweep)
    emit("ablation_batch_timeout", render_table(
        ["batch timeout ns", "p50 us", "p99 us"],
        [(r["timeout_ns"], r["p50_us"], r["p99_us"]) for r in rows],
        title="Ablation — fixed-B batch timeout at 0.5 Mrps, B=4",
    ))
    fixed = [r for r in rows if r["timeout_ns"] != "auto-batch"]
    auto = rows[-1]
    # Latency grows with the timeout (requests wait longer for peers)...
    p50s = [r["p50_us"] for r in fixed]
    assert p50s == sorted(p50s)
    # ...and auto-batching beats every fixed-timeout configuration.
    assert auto["p50_us"] < min(p50s)
