"""Ablation: NIC load-balancer scheme under MICA (section 5.7).

MICA requires all requests for a key to reach the owning partition. The
object-level balancer (key hash on the FPGA) achieves that; round-robin
steering misroutes ~ (P-1)/P of requests, paying cross-partition
concurrency control on every one of them.
"""

from bench_common import emit

from repro.apps.kvs import run_kvs_workload
from repro.harness.report import render_table


def sweep():
    rows = []
    for scheme in ("object-level", "round-robin"):
        result = run_kvs_workload(
            system="mica", num_threads=2, num_keys=1_000_000,
            load_balancer=scheme, nreq=6000, closed_loop_window=16,
            warmup_ns=50_000,
        )
        rows.append({
            "scheme": scheme,
            "p50_us": result.p50_us,
            "p99_us": result.p99_us,
            "thr_mrps": result.throughput_mrps,
            "misrouted": result.misrouted,
        })
    return rows


def test_load_balancer_mica(once):
    rows = once(sweep)
    emit("ablation_load_balancer_mica", render_table(
        ["balancer", "p50 us", "p99 us", "Mrps", "misrouted"],
        [(r["scheme"], r["p50_us"], r["p99_us"], r["thr_mrps"],
          r["misrouted"]) for r in rows],
        title="Ablation — MICA with 2 partitions, balancer scheme",
    ))
    objective, round_robin = rows
    assert objective["misrouted"] == 0
    # Round-robin misroutes about half the requests with 2 partitions.
    assert round_robin["misrouted"] > 2000
    # The cross-partition penalty costs throughput and latency.
    assert round_robin["thr_mrps"] < objective["thr_mrps"]
    assert round_robin["p99_us"] > objective["p99_us"]
