"""Ablation: CCI-P batch size beyond the paper's B values.

Sweeps B in 1..16 to expose the full latency/throughput knee the
soft-config auto-batcher exploits: throughput saturates once the per-flow
issue rate exceeds the CPU bound (~B=3), while low-load latency keeps
growing with B (fixed-B mode waits for full batches).
"""

from bench_common import emit

from repro.harness import run_closed_loop, run_open_loop
from repro.harness.report import render_table

BATCHES = [1, 2, 3, 4, 6, 8, 12, 16]


def sweep():
    rows = []
    for batch in BATCHES:
        saturated = run_closed_loop(batch_size=batch, nreq=8000)
        low_load = run_open_loop(load_mrps=1.0, batch_size=batch, nreq=5000)
        rows.append({
            "batch": batch,
            "mrps": saturated.throughput_mrps,
            "low_load_p50_us": low_load.p50_us,
        })
    return rows


def test_batch_sweep(once):
    rows = once(sweep)
    emit("ablation_batch_sweep", render_table(
        ["B", "saturated Mrps", "p50 us @ 1 Mrps"],
        [(r["batch"], r["mrps"], r["low_load_p50_us"]) for r in rows],
        title="Ablation — CCI-P batch size sweep (fixed-B mode)",
    ))
    by_batch = {r["batch"]: r for r in rows}
    # Throughput: rises from B=1 to the CPU bound, then flat.
    assert by_batch[2]["mrps"] > by_batch[1]["mrps"] * 1.2
    assert abs(by_batch[16]["mrps"] - by_batch[4]["mrps"]) < 1.0
    # Latency at low load: monotone-ish growth with B (batch-fill wait).
    assert by_batch[8]["low_load_p50_us"] > by_batch[1]["low_load_p50_us"]
    assert by_batch[16]["low_load_p50_us"] > by_batch[4]["low_load_p50_us"]
