"""Ablation: incast — many clients, one server flow.

A classic datacenter congestion scenario the Protocol-unit extensions
exist for: N client machines simultaneously hammer one server flow whose
host drains at a fixed rate. Under the paper's UDP-like protocol the RX
ring overflows and RPCs vanish; credit-based flow control serializes the
senders and delivers everything.
"""

from bench_common import emit

from repro.harness.report import render_table
from repro.hw.cluster import Cluster
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator
from repro.stacks import DaggerStack, connect

NUM_CLIENTS = 6
REQS_PER_CLIENT = 400
DRAIN_NS = 600  # server software consumes one RPC per 600 ns


def run_incast(overrides):
    sim = Simulator()
    cluster = Cluster(sim, 1 + NUM_CLIENTS)
    hard_kwargs = dict(num_flows=1, rx_ring_entries=16)
    hard_kwargs.update(overrides)
    server_stack = DaggerStack(
        cluster.machine(0), cluster.switch, "incast-server",
        hard=NicHardConfig(**hard_kwargs),
        soft=NicSoftConfig(batch_size=4, auto_batch=True),
    )
    drained = []

    def drainer():
        ring = server_stack.nic.rx_ring(0)
        while True:
            pkt = yield ring.get()
            drained.append(pkt)
            yield sim.timeout(DRAIN_NS)

    sim.spawn(drainer())

    total_retx = 0
    client_nics = []
    for index in range(NUM_CLIENTS):
        client_stack = DaggerStack(
            cluster.machine(1 + index), cluster.switch, f"incast-c{index}",
            hard=NicHardConfig(**hard_kwargs),
            soft=NicSoftConfig(batch_size=4, auto_batch=True),
        )
        client_nics.append(client_stack.nic)
        conn = connect(client_stack, 0, server_stack, 0)

        def burst(stack=client_stack, conn=conn):
            for _ in range(REQS_PER_CLIENT):
                packet = RpcPacket(RpcKind.REQUEST, conn, "put", b"", 48)
                yield from stack.nic.send_from_host(0, packet)

        sim.spawn(burst())

    sim.run()
    for nic in client_nics:
        if nic.transport is not None:
            total_retx += nic.transport.stats.retransmissions
    return {
        "delivered": len(drained),
        "drops": server_stack.nic.monitor.drops,
        "retransmissions": total_retx,
    }


def sweep():
    rows = []
    for label, overrides in (
        ("udp-like (paper)", {}),
        ("reliable (NACK/retx)", {"reliable_transport": True}),
        ("credits (flow ctl)", {"flow_control": True,
                                "flow_control_credits": 2,
                                "credit_batch": 2}),
    ):
        result = run_incast(overrides)
        result["protocol"] = label
        rows.append(result)
    return rows


def test_incast(once):
    rows = once(sweep)
    total = NUM_CLIENTS * REQS_PER_CLIENT
    emit("ablation_incast", render_table(
        ["protocol unit", "offered", "delivered", "drops",
         "retransmissions"],
        [(r["protocol"], total, r["delivered"], r["drops"],
          r["retransmissions"]) for r in rows],
        title=f"Ablation — {NUM_CLIENTS}-to-1 incast, 16-entry ring",
    ))
    udp, reliable, credits = rows
    assert udp["drops"] > 0
    assert udp["delivered"] < total
    # Retransmission recovers most losses; credits prevent them outright.
    assert reliable["delivered"] > udp["delivered"]
    assert credits["drops"] == 0
    assert credits["delivered"] == total
