"""Table 3: median RTT and single-core RPC throughput across platforms."""

from bench_common import emit

from repro.harness.experiments import table3_rpc_platforms
from repro.harness.report import render_table


def test_table3_rpc_platforms(once):
    rows = once(table3_rpc_platforms)
    table = render_table(
        ["stack", "bytes", "paper RTT us", "RTT us", "paper Mrps", "Mrps"],
        [(r["stack"], r["rpc_bytes"], r["paper_rtt_us"], r["rtt_us"],
          "-" if r["paper_mrps"] is None else r["paper_mrps"],
          "-" if r["mrps"] is None else r["mrps"]) for r in rows],
        title="Table 3 — RPC platforms, 0.3 us TOR",
    )
    emit("table3_rpc_platforms", table)

    by_stack = {r["stack"]: r for r in rows}
    # RTTs within 25% of the paper's numbers.
    for stack, row in by_stack.items():
        assert abs(row["rtt_us"] - row["paper_rtt_us"]) \
            / row["paper_rtt_us"] < 0.25, stack
    # The ordering claims: Dagger has the highest per-core throughput
    # (1.3-3.8x over the others) and IX is slowest on both axes.
    dagger = by_stack["dagger"]
    for other in ("ix", "fasst-rdma", "erpc"):
        ratio = dagger["mrps"] / by_stack[other]["mrps"]
        assert ratio > 1.3, (other, ratio)
    assert by_stack["ix"]["rtt_us"] > 3 * dagger["rtt_us"]
