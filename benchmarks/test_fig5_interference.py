"""Fig 5: CPU contention between application logic and networking."""

from bench_common import emit

from repro.harness.experiments import fig5_interference
from repro.harness.report import render_table


def test_fig5_interference(once):
    rows = once(fig5_interference)
    table = render_table(
        ["load Krps", "cores", "p50 us", "p99 us", "drop rate"],
        [(r["load_krps"], "shared" if r["shared_cores"] else "separate",
          r["p50_us"], r["p99_us"], f"{r['drop_rate']:.2%}") for r in rows],
        title="Fig 5 — networking/application core sharing, Social Network",
    )
    emit("fig5_interference", table)

    by_key = {(r["load_krps"], r["shared_cores"]): r for r in rows}
    loads = sorted({r["load_krps"] for r in rows})
    for load in loads:
        shared = by_key[(load, True)]
        separate = by_key[(load, False)]
        # Sharing cores with interrupt processing hurts latency...
        assert shared["p99_us"] > separate["p99_us"], load
    # ...and the penalty grows with load, especially at the tail.
    low, high = loads[0], loads[-1]
    low_gap = by_key[(low, True)]["p99_us"] - by_key[(low, False)]["p99_us"]
    high_gap = (by_key[(high, True)]["p99_us"]
                - by_key[(high, False)]["p99_us"])
    assert high_gap > low_gap
