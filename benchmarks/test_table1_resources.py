"""Table 1: implementation specifications of the Dagger NIC."""

from bench_common import emit

from repro.harness.experiments import table1_resources
from repro.harness.report import render_table


def test_table1_resources(once):
    rows = once(table1_resources)
    table = render_table(
        ["parameter", "paper", "measured", "utilization"],
        [(r["parameter"], r["paper"], r["measured"],
          "-" if r["utilization"] is None else f"{r['utilization']:.0%}")
         for r in rows],
        title="Table 1 — Dagger NIC implementation specs",
    )
    emit("table1_resources", table)
    by_name = {r["parameter"]: r for r in rows}
    luts = by_name["FPGA resource usage, LUT (K)"]
    assert abs(luts["measured"] - luts["paper"]) / luts["paper"] < 0.05
    brams = by_name["FPGA resource usage, BRAM blocks (M20K)"]
    assert abs(brams["measured"] - brams["paper"]) / brams["paper"] < 0.05
    regs = by_name["FPGA resource usage, registers (K)"]
    assert abs(regs["measured"] - regs["paper"]) / regs["paper"] < 0.05
    assert by_name["Max number of NIC flows (<=50% util)"]["measured"] == 512
    assert by_name[
        "NIC instances fitting one FPGA (default config)"
    ]["measured"] >= 8
