"""Fig 3: networking as a fraction of per-tier latency (Social Network)."""

from bench_common import emit

from repro.harness.experiments import FIG3_PAPER, fig3_breakdown
from repro.harness.report import render_table


def test_fig3_breakdown(once):
    rows = once(fig3_breakdown)
    table = render_table(
        ["load Krps", "tier", "p50 us", "p99 us", "app", "rpc", "tcp"],
        [(r["load_krps"], r["tier"], r["p50_us"], r["p99_us"],
          "-" if r["app_fraction"] is None else f"{r['app_fraction']:.0%}",
          "-" if r["rpc_fraction"] is None else f"{r['rpc_fraction']:.0%}",
          "-" if r["transport_fraction"] is None
          else f"{r['transport_fraction']:.0%}") for r in rows],
        title="Fig 3 — latency breakdown, Social Network over kernel TCP",
    )
    emit("fig3_breakdown", table)

    tier_rows = [r for r in rows if r["tier"] != "e2e"]
    lowest = [r for r in tier_rows if r["load_krps"] == rows[0]["load_krps"]]
    fractions = {r["tier"].split(":")[1]: r["network_fraction"]
                 for r in lowest}
    # Communication is a large share on average, up to ~80%+ for the light
    # User and UniqueID tiers (paper: 40% average, up to 80%).
    mean_fraction = sum(fractions.values()) / len(fractions)
    assert mean_fraction > FIG3_PAPER["mean_network_fraction"]
    assert fractions["user"] > 0.7
    assert fractions["unique_id"] > 0.7
    # Compute-heavy tiers spend most of their time on application logic.
    assert fractions["text"] < 0.5
    assert fractions["user_mention"] < 0.5
    # RPC processing is a substantial share of networking, comparable to
    # the TCP/IP layer itself.
    user_low = next(r for r in lowest if r["tier"].endswith("user"))
    assert user_low["rpc_fraction"] > 0.5 * user_low["transport_fraction"]
    # End-to-end latency grows with load (queueing through the stack).
    e2e = [r for r in rows if r["tier"] == "e2e"]
    assert e2e[-1]["p99_us"] > e2e[0]["p99_us"]
