"""Pytest fixtures for the benchmark suite."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_common import emit  # noqa: F401,E402 (back-compat re-export)


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
