"""Fig 15: Flight Registration latency/load curves (Optimized model)."""

from bench_common import emit

from repro.harness.experiments import fig15_flight_curves
from repro.harness.report import render_table


def test_fig15_flight_curves(once):
    rows = once(fig15_flight_curves)
    table = render_table(
        ["load Krps", "thr Krps", "p50 us", "p90 us", "p99 us", "drop rate"],
        [(r["load_krps"], r["throughput_krps"], r["p50_us"], r["p90_us"],
          r["p99_us"], f"{r['drop_rate']:.2%}") for r in rows],
        title="Fig 15 — Flight Registration, Optimized threading",
    )
    emit("fig15_flight_curves", table)

    by_load = {r["load_krps"]: r for r in rows}
    # Below the ~25 Krps saturation point the median stays in the ~20s of
    # us; past it the tail soars (paper: into the 10^2-10^3 us range) while
    # the median moves far less.
    assert by_load[15]["p50_us"] < 30
    assert by_load[25]["p50_us"] < 35
    last = rows[-1]
    assert last["p99_us"] > 4 * by_load[15]["p99_us"]
    # Throughput tracks offered load up to saturation.
    assert abs(by_load[25]["throughput_krps"] - 25) < 2.0
