"""Fig 10: single-core throughput and latency per CPU-NIC interface."""

from bench_common import emit

from repro.harness.experiments import fig10_interfaces
from repro.harness.report import render_table


def test_fig10_interfaces(once):
    rows = once(fig10_interfaces)
    table = render_table(
        ["interface", "B", "paper Mrps", "Mrps",
         "paper p50", "p50 us", "paper p99", "p99 us"],
        [(r["interface"], r["batch"], r["paper_mrps"], r["mrps"],
          r["paper_p50_us"], r["p50_us"], r["paper_p99_us"], r["p99_us"])
         for r in rows],
        title="Fig 10 — CPU-NIC interfaces, 64 B RPCs, one core",
    )
    emit("fig10_interfaces", table)

    by_key = {(r["interface"], r["batch"]): r for r in rows}
    # Throughput within 15% of the paper per configuration.
    for key, row in by_key.items():
        assert abs(row["mrps"] - row["paper_mrps"]) / row["paper_mrps"] \
            < 0.15, key
    # Shape claims: doorbell batching ladder is monotone; UPI beats every
    # PCIe mode on throughput at B=4 and on latency at both batch sizes.
    doorbells = [by_key[("pcie-doorbell", b)]["mrps"] for b in (1, 3, 7, 11)]
    assert doorbells == sorted(doorbells)
    upi4 = by_key[("upi", 4)]
    assert upi4["mrps"] > max(r["mrps"] for k, r in by_key.items()
                              if k[0] != "upi")
    upi1 = by_key[("upi", 1)]
    assert upi1["p50_us"] < min(r["p50_us"] for k, r in by_key.items()
                                if k[0] != "upi")
