"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper, prints a
paper-vs-measured text table, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from a run.
"""

import os
import tempfile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
os.makedirs(RESULTS_DIR, exist_ok=True)


def scrub_path(path: str) -> str:
    """Reduce a local filesystem path to its basename for committed output.

    Benchmark JSON that lands in the repo must not leak machine-local
    absolute paths (scratch directories, usernames); the basename is enough
    to identify which tree a baseline measurement came from.
    """
    return os.path.basename(os.path.normpath(path))


def emit(name: str, text: str) -> None:
    """Print a result table and archive it (atomically).

    The write goes through a temp file + ``os.replace`` so a concurrent
    reader (or a benchmark killed mid-write) never observes a truncated
    result file.
    """
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    fd, tmp_path = tempfile.mkstemp(dir=RESULTS_DIR, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text + "\n")
        os.replace(tmp_path, os.path.join(RESULTS_DIR, f"{name}.txt"))
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
