"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper, prints a
paper-vs-measured text table, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from a run.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a result table and archive it."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
