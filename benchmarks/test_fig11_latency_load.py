"""Fig 11 (left): latency vs load for CCI-P batch sizes and auto-batching."""

from bench_common import emit

from repro.harness.experiments import fig11_latency_load
from repro.harness.report import render_table


def test_fig11_latency_load(once):
    rows = once(fig11_latency_load)
    table = render_table(
        ["config", "offered Mrps", "p50 us", "p99 us", "thr Mrps"],
        [(r["config"], r["offered_mrps"], r["p50_us"], r["p99_us"],
          r["throughput_mrps"]) for r in rows],
        title="Fig 11 (left) — latency vs load, 64 B async RPCs",
    )
    emit("fig11_latency_load", table)

    def curve(config):
        return [r for r in rows if r["config"] == config]

    b1, b4, auto = curve("B=1"), curve("B=4"), curve("auto")
    # B=1: ~1.8 us flat median until the ~7.2 Mrps saturation point.
    assert abs(b1[0]["p50_us"] - 1.8) < 0.4
    assert b1[-2]["p50_us"] < 2.6  # still low close to saturation
    # B=4 sustains ~12 Mrps at <3.5 us median but pays latency at low load.
    assert b4[-1]["throughput_mrps"] > 11.0
    assert b4[0]["p50_us"] > 2 * b1[0]["p50_us"]
    # Auto-batching: B=1 latency at low load AND B=4 throughput at high.
    assert abs(auto[0]["p50_us"] - b1[0]["p50_us"]) < 0.5
    assert auto[-1]["throughput_mrps"] > 11.0
    assert auto[-1]["p50_us"] < b4[0]["p50_us"]
