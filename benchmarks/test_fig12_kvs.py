"""Fig 12: memcached and MICA over Dagger — latency and peak throughput."""

from bench_common import emit

from repro.harness.experiments import fig12_kvs, sec56_mica_high_skew
from repro.harness.report import render_table


def test_fig12_kvs(once):
    rows = once(fig12_kvs)
    table = render_table(
        ["system", "dataset", "paper p50", "p50 us", "paper p99", "p99 us",
         "paper thr50", "thr 50%GET", "paper thr95", "thr 95%GET"],
        [(r["system"], r["dataset"], r["paper_p50_us"], r["p50_us"],
          r["paper_p99_us"], r["p99_us"], r["paper_thr_50get"],
          r["thr_50get"], r["paper_thr_95get"], r["thr_95get"])
         for r in rows],
        title="Fig 12 — KVS over Dagger, zipf 0.99, one core",
    )
    emit("fig12_kvs", table)

    by_cell = {(r["system"], r["dataset"]): r for r in rows}
    for key, row in by_cell.items():
        # Latencies within ~20% / throughput within ~20% of the paper.
        assert abs(row["p50_us"] - row["paper_p50_us"]) \
            / row["paper_p50_us"] < 0.20, key
        assert abs(row["thr_50get"] - row["paper_thr_50get"]) \
            / row["paper_thr_50get"] < 0.20, key
        # Drops stay under the paper's 1% budget.
        assert row["drop_rate"] < 0.01, key
    # Shape: MICA sustains ~7-8x memcached's write-heavy throughput.
    assert by_cell[("mica", "tiny")]["thr_50get"] \
        > 5 * by_cell[("memcached", "tiny")]["thr_50get"]
    # Read-heavy mixes are faster than write-heavy ones for both systems.
    for system in ("mica", "memcached"):
        row = by_cell[(system, "tiny")]
        assert row["thr_95get"] > row["thr_50get"]


def test_sec56_mica_high_skew(once):
    result = once(sec56_mica_high_skew)
    table = render_table(
        ["skew", "thr Mrps", "hit rate"],
        [("0.99", result["thr_skew_099"], result["hit_rate_099"]),
         ("0.9999", result["thr_skew_09999"], result["hit_rate_09999"])],
        title="Section 5.6 — MICA under higher skew (better locality)",
    )
    emit("sec56_mica_high_skew", table)
    # Higher skew concentrates accesses; throughput must not degrade.
    assert result["thr_skew_09999"] >= 0.95 * result["thr_skew_099"]
