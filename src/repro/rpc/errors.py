"""Exception taxonomy for the RPC framework."""


class RpcError(Exception):
    """Base class for all RPC-framework errors."""


class ConnectionError_(RpcError):
    """Connection missing, closed, or rejected (trailing underscore avoids
    shadowing the builtin)."""


class MethodNotFoundError(RpcError):
    """The server has no handler registered for the requested method."""


class SerializationError(RpcError):
    """Message does not fit the IDL-declared layout."""


class RpcDroppedError(RpcError):
    """The request or response was dropped (ring overflow / queue full)."""
