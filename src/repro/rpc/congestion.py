"""Credit-based flow control for the Protocol unit (§4.5 extension).

The other half of the paper's "RPC-optimized protocol layers" follow-up:
instead of recovering drops after the fact (see
:mod:`repro.rpc.transport`), prevent them — a receiver-driven credit
scheme, the congestion-control style the paper's citations (Homa, NeBuLa)
argue fits datacenter RPCs.

Mechanism:

- the sender NIC may have at most ``flow_control_credits`` data packets
  per connection outstanding beyond what the *receiver's host software*
  has consumed;
- the receiver NIC watches its host RX rings drain (the hardware sees the
  free-buffer bookkeeping of Fig 8) and returns credits in batches of
  ``credit_batch`` as NIC-terminated CREDIT control packets;
- a sender without credits parks the packet at the flow's egress
  sequencer until credits return (head-of-line within the flow, like a
  paused hardware queue).

Sized so the credit window never exceeds the receiver's ring capacity,
ring overflow becomes impossible — zero drops instead of
drop-and-retransmit, at the price of throughput tracking the consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Tuple

from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim.resources import Store

CREDIT_METHOD = "__credit__"
CREDIT_BYTES = 16


@dataclass
class FlowControlStats:
    grants_sent: int = 0
    credits_granted: int = 0
    stalls: int = 0  # times a packet had to wait for credits


class CreditFlowControl:
    """Per-NIC credit engine (sender and receiver roles)."""

    def __init__(self, nic, initial_credits: int, credit_batch: int):
        if initial_credits < 1:
            raise ValueError(
                f"initial_credits must be >= 1, got {initial_credits}"
            )
        if credit_batch < 1:
            raise ValueError(f"credit_batch must be >= 1, got {credit_batch}")
        self.nic = nic
        self.initial_credits = initial_credits
        self.credit_batch = credit_batch
        self.stats = FlowControlStats()
        # Sender: per-connection credit token stores.
        self._credits: Dict[int, Store] = {}
        # Receiver: consumed-but-not-yet-granted counts per (conn, peer).
        self._pending_grants: Dict[Tuple[int, str], int] = {}

    # -- sender side ------------------------------------------------------------

    def _tokens(self, connection_id: int) -> Store:
        store = self._credits.get(connection_id)
        if store is None:
            store = Store(self.nic.sim, name=f"credits-{connection_id}")
            for _ in range(self.initial_credits):
                store.try_put(1)
            self._credits[connection_id] = store
        return store

    def available_credits(self, connection_id: int) -> int:
        return len(self._tokens(connection_id))

    def try_acquire(self, packet: RpcPacket) -> bool:
        """Zero-yield fast path of :meth:`acquire`.

        Takes a banked credit synchronously (no generator, no Event, no
        kernel dispatch) — the dominant case below saturation. Returns
        False when the connection is out of credits; the caller then falls
        back to ``yield from flow_control.acquire(packet)``, which counts
        the stall and parks on the evented token get.
        """
        if packet.kind is RpcKind.CONTROL:
            return True
        return self._tokens(packet.connection_id).try_get() is not None

    def acquire(self, packet: RpcPacket) -> Generator:
        """Block (in the egress sequencer) until a credit is available."""
        if packet.kind is RpcKind.CONTROL:
            return
        tokens = self._tokens(packet.connection_id)
        if tokens.try_get() is not None:
            return
        self.stats.stalls += 1
        yield tokens.get()

    # -- receiver side -------------------------------------------------------------

    def on_host_dequeue(self, packet: RpcPacket) -> None:
        """Host software consumed a packet: bank a credit for its sender."""
        if packet.kind is RpcKind.CONTROL:
            return
        key = (packet.connection_id, packet.src_address)
        banked = self._pending_grants.get(key, 0) + 1
        if banked < self.credit_batch:
            self._pending_grants[key] = banked
            return
        self._pending_grants[key] = 0
        self._emit_grant(key[0], key[1], banked)

    def _emit_grant(self, connection_id: int, peer: str, count: int) -> None:
        self.stats.grants_sent += 1
        self.stats.credits_granted += count
        grant = RpcPacket(
            kind=RpcKind.CONTROL,
            connection_id=connection_id,
            method=CREDIT_METHOD,
            payload=count,
            payload_bytes=CREDIT_BYTES,
            src_address=self.nic.address,
            dst_address=peer,
        )
        self.nic.enqueue_egress(0, grant)

    # -- control handling (back at the sender) ---------------------------------------

    def on_control(self, packet: RpcPacket) -> None:
        if packet.method != CREDIT_METHOD:
            raise ValueError(f"unknown control method {packet.method!r}")
        tokens = self._tokens(packet.connection_id)
        for _ in range(packet.payload):
            tokens.try_put(1)
