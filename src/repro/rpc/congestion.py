"""Credit-based flow control for the Protocol unit (§4.5 extension).

The other half of the paper's "RPC-optimized protocol layers" follow-up:
instead of recovering drops after the fact (see
:mod:`repro.rpc.transport`), prevent them — a receiver-driven credit
scheme, the congestion-control style the paper's citations (Homa, NeBuLa)
argue fits datacenter RPCs.

Mechanism:

- the sender NIC may have at most ``flow_control_credits`` data packets
  per connection outstanding beyond what the *receiver's host software*
  has consumed;
- the receiver NIC watches its host RX rings drain (the hardware sees the
  free-buffer bookkeeping of Fig 8) and returns credits in batches of
  ``credit_batch`` as NIC-terminated CREDIT control packets;
- a sender without credits parks the packet at the flow's egress
  sequencer until credits return (head-of-line within the flow, like a
  paused hardware queue).

Loss tolerance (CONTROL packets are excluded from the reliable transport,
so a dropped grant must not deflate the window forever):

- grants carry the receiver's **cumulative** consumed count, not an
  increment — any later grant supersedes a lost one, and the sender
  reconciles its token bank to exactly ``initial + consumed - sent``;
- the receiver flushes a sub-batch remainder after a quiet period, so a
  lost grant is re-covered by the next flush instead of never;
- a sender stalled past ``grant_timeout_ns`` optimistically self-heals by
  injecting one token (worst case the receiver ring overflows by one and
  the reliable transport recovers the drop); the next cumulative grant
  drains any over-injection back out.

Retransmitted copies (``packet.seq`` already set) ride free: their credit
was charged on first transmission and the receiver's dedup means they
consume no extra ring slot.

Sized so the credit window never exceeds the receiver's ring capacity,
ring overflow becomes impossible — zero drops instead of
drop-and-retransmit, at the price of throughput tracking the consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Tuple

from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim.resources import Store

CREDIT_METHOD = "__credit__"
CREDIT_BYTES = 16

#: Sender-side stall watchdog: how long a packet may wait for credits
#: before the engine assumes the grant was lost and self-heals.
DEFAULT_GRANT_TIMEOUT_NS = 100_000
#: Receiver-side flush of a sub-batch remainder after a quiet period.
DEFAULT_FLUSH_NS = 25_000


@dataclass
class FlowControlStats:
    grants_sent: int = 0
    credits_granted: int = 0
    stalls: int = 0  # times a packet had to wait for credits
    credit_repairs: int = 0  # tokens injected by the stall watchdog
    reconcile_grants: int = 0  # grants emitted by the receiver flush timer
    stale_grants: int = 0  # reordered/duplicate grants ignored


class CreditFlowControl:
    """Per-NIC credit engine (sender and receiver roles)."""

    def __init__(self, nic, initial_credits: int, credit_batch: int,
                 grant_timeout_ns: int = DEFAULT_GRANT_TIMEOUT_NS,
                 flush_ns: int = DEFAULT_FLUSH_NS):
        if initial_credits < 1:
            raise ValueError(
                f"initial_credits must be >= 1, got {initial_credits}"
            )
        if credit_batch < 1:
            raise ValueError(f"credit_batch must be >= 1, got {credit_batch}")
        self.nic = nic
        self.initial_credits = initial_credits
        self.credit_batch = credit_batch
        self.grant_timeout_ns = grant_timeout_ns
        self.flush_ns = flush_ns
        self._sim = getattr(nic, "sim", None)
        self.stats = FlowControlStats()
        # Sender: per-connection credit token stores + window accounting.
        self._credits: Dict[int, Store] = {}
        self._sent: Dict[int, int] = {}  # first transmissions charged
        self._granted_cum: Dict[int, int] = {}  # highest grant seen
        self._waiting: Dict[int, int] = {}  # packets parked on the bank
        # Receiver: cumulative consumed / last reported per (conn, peer).
        self._consumed: Dict[Tuple[int, str], int] = {}
        self._reported: Dict[Tuple[int, str], int] = {}
        self._flush_armed: set = set()

    # -- sender side ------------------------------------------------------------

    def _tokens(self, connection_id: int) -> Store:
        store = self._credits.get(connection_id)
        if store is None:
            store = Store(self.nic.sim, name=f"credits-{connection_id}")
            for _ in range(self.initial_credits):
                store.try_put(1)
            self._credits[connection_id] = store
        return store

    def available_credits(self, connection_id: int) -> int:
        return len(self._tokens(connection_id))

    def try_acquire(self, packet: RpcPacket) -> bool:
        """Zero-yield fast path of :meth:`acquire`.

        Takes a banked credit synchronously (no generator, no Event, no
        kernel dispatch) — the dominant case below saturation. Returns
        False when the connection is out of credits; the caller then falls
        back to ``yield from flow_control.acquire(packet)``, which counts
        the stall and parks on the evented token get.
        """
        if packet.kind is RpcKind.CONTROL or packet.seq is not None:
            return True  # control packets and retransmissions ride free
        if self._tokens(packet.connection_id).try_get() is not None:
            conn = packet.connection_id
            self._sent[conn] = self._sent.get(conn, 0) + 1
            return True
        return False

    def acquire(self, packet: RpcPacket) -> Generator:
        """Block (in the egress sequencer) until a credit is available."""
        if packet.kind is RpcKind.CONTROL or packet.seq is not None:
            return
        conn = packet.connection_id
        tokens = self._tokens(conn)
        if tokens.try_get() is None:
            self.stats.stalls += 1
            self._waiting[conn] = self._waiting.get(conn, 0) + 1
            if self._sim is not None and self.grant_timeout_ns:
                self._sim.spawn(self._stall_watchdog(conn, tokens))
            yield tokens.get()
            self._waiting[conn] -= 1
        self._sent[conn] = self._sent.get(conn, 0) + 1

    def _stall_watchdog(self, conn: int, tokens: Store):
        """Self-heal a stall that outlives any plausible grant latency."""
        yield self.grant_timeout_ns
        if self._waiting.get(conn, 0) == 0 or len(tokens) > 0:
            return
        # The grant covering this window was presumably lost on the wire.
        # Inject one token optimistically: worst case the receiver ring
        # overflows by one packet and the reliable transport recovers it;
        # the next cumulative grant reconciles the bank back down.
        self.stats.credit_repairs += 1
        tokens.try_put(1)

    # -- receiver side -------------------------------------------------------------

    def on_host_dequeue(self, packet: RpcPacket) -> None:
        """Host software consumed a packet: bank a credit for its sender."""
        if packet.kind is RpcKind.CONTROL:
            return
        key = (packet.connection_id, packet.src_address)
        consumed = self._consumed.get(key, 0) + 1
        self._consumed[key] = consumed
        if consumed - self._reported.get(key, 0) >= self.credit_batch:
            self._emit_grant(key)
        elif self._sim is not None and self.flush_ns \
                and key not in self._flush_armed:
            self._flush_armed.add(key)
            self._sim.spawn(self._flush_timer(key))

    def _flush_timer(self, key):
        """Grant a sub-batch remainder the batching rule would sit on."""
        yield self.flush_ns
        self._flush_armed.discard(key)
        if self._consumed.get(key, 0) > self._reported.get(key, 0):
            self.stats.reconcile_grants += 1
            self._emit_grant(key)

    def _emit_grant(self, key: Tuple[int, str]) -> None:
        consumed = self._consumed.get(key, 0)
        increment = consumed - self._reported.get(key, 0)
        if increment <= 0:
            return
        self._reported[key] = consumed
        self.stats.grants_sent += 1
        self.stats.credits_granted += increment
        grant = RpcPacket(
            kind=RpcKind.CONTROL,
            connection_id=key[0],
            method=CREDIT_METHOD,
            # Cumulative consumed count: any later grant supersedes a lost
            # one, so a dropped CREDIT packet costs latency, not window.
            payload=consumed,
            payload_bytes=CREDIT_BYTES,
            src_address=self.nic.address,
            dst_address=key[1],
        )
        self.nic.enqueue_egress(0, grant)

    # -- control handling (back at the sender) ---------------------------------------

    def on_control(self, packet: RpcPacket) -> None:
        if packet.method != CREDIT_METHOD:
            raise ValueError(f"unknown control method {packet.method!r}")
        conn = packet.connection_id
        consumed = packet.payload
        if consumed <= self._granted_cum.get(conn, 0):
            self.stats.stale_grants += 1
            return
        self._granted_cum[conn] = consumed
        tokens = self._tokens(conn)
        # Reconcile the bank to exactly the window the receiver's cumulative
        # count implies: top up what lost grants starved, drain what the
        # stall watchdog over-injected. Parked acquirers have not charged
        # ``_sent`` yet, so handing them tokens here keeps the sum exact.
        target = self.initial_credits + consumed - self._sent.get(conn, 0)
        delta = target - len(tokens)
        while delta > 0:
            tokens.try_put(1)
            delta -= 1
        while delta < 0 and tokens.try_get() is not None:
            delta += 1
