"""Recursive-descent parser for the Dagger IDL."""

from __future__ import annotations

from typing import List

from repro.rpc.idl.ast_nodes import (
    SCALAR_TYPES,
    FieldDef,
    IdlFile,
    MessageDef,
    RpcDef,
    ServiceDef,
)
from repro.rpc.idl.lexer import IdlSyntaxError, Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def expect(self, kind: str, value: str = None) -> Token:
        token = self.current
        if token.kind != kind or (value is not None and token.value != value):
            want = value or kind
            raise IdlSyntaxError(
                f"expected {want!r}, found {token.value or token.kind!r}",
                token.line,
            )
        return self.advance()

    # -- grammar ---------------------------------------------------------------

    def parse_file(self) -> IdlFile:
        idl = IdlFile()
        while self.current.kind != "eof":
            token = self.current
            if token.kind == "keyword" and token.value == "Message":
                idl.messages.append(self.parse_message())
            elif token.kind == "keyword" and token.value == "Service":
                idl.services.append(self.parse_service())
            else:
                raise IdlSyntaxError(
                    f"expected 'Message' or 'Service', found {token.value!r}",
                    token.line,
                )
        idl.validate()
        return idl

    def parse_message(self) -> MessageDef:
        self.expect("keyword", "Message")
        name = self.expect("ident").value
        self.expect("punct", "{")
        fields = []
        while not (self.current.kind == "punct" and self.current.value == "}"):
            fields.append(self.parse_field())
        self.expect("punct", "}")
        try:
            return MessageDef(name, tuple(fields))
        except ValueError as exc:
            raise IdlSyntaxError(str(exc), self.current.line) from None

    def parse_field(self) -> FieldDef:
        type_token = self.expect("ident")
        if type_token.value not in SCALAR_TYPES:
            raise IdlSyntaxError(
                f"unknown type {type_token.value!r} "
                f"(supported: {', '.join(sorted(SCALAR_TYPES))})",
                type_token.line,
            )
        array_len = None
        if self.current.kind == "punct" and self.current.value == "[":
            self.advance()
            array_len = int(self.expect("int").value)
            self.expect("punct", "]")
        name = self.expect("ident").value
        self.expect("punct", ";")
        try:
            return FieldDef(name, type_token.value, array_len)
        except ValueError as exc:
            raise IdlSyntaxError(str(exc), type_token.line) from None

    def parse_service(self) -> ServiceDef:
        self.expect("keyword", "Service")
        name = self.expect("ident").value
        self.expect("punct", "{")
        rpcs = []
        while not (self.current.kind == "punct" and self.current.value == "}"):
            rpcs.append(self.parse_rpc())
        self.expect("punct", "}")
        try:
            return ServiceDef(name, tuple(rpcs))
        except ValueError as exc:
            raise IdlSyntaxError(str(exc), self.current.line) from None

    def parse_rpc(self) -> RpcDef:
        self.expect("keyword", "rpc")
        name = self.expect("ident").value
        self.expect("punct", "(")
        request_type = self.expect("ident").value
        self.expect("punct", ")")
        self.expect("keyword", "returns")
        self.expect("punct", "(")
        response_type = self.expect("ident").value
        self.expect("punct", ")")
        self.expect("punct", ";")
        return RpcDef(name, request_type, response_type)


def parse_idl(source: str) -> IdlFile:
    """Parse IDL source text into a validated :class:`IdlFile`."""
    return _Parser(tokenize(source)).parse_file()
