"""The Dagger IDL and code generator (section 4.2, Listing 1).

A Protobuf-inspired interface definition language::

    Message GetRequest {
        int32 timestamp;
        char[32] key;
    }

    Service KeyValueStore {
        rpc get(GetRequest) returns(GetResponse);
    }

``parse_idl`` produces the AST; ``generate_python`` emits a Python module
(message classes with fixed-layout pack/unpack, a client stub per service,
and a servicer base class that registers handlers on an
:class:`~repro.rpc.server.RpcThreadedServer`); ``load_idl`` compiles that
module and returns its namespace, which is how the examples and apps use it.

Per the paper's stated limitation (section 4.5), messages carry only
continuous fixed-size fields — scalars and char arrays — no references or
nested variable-length structures.
"""

from repro.rpc.idl.ast_nodes import FieldDef, IdlFile, MessageDef, RpcDef, ServiceDef
from repro.rpc.idl.lexer import IdlSyntaxError, Token, tokenize
from repro.rpc.idl.parser import parse_idl
from repro.rpc.idl.codegen import generate_python, load_idl

__all__ = [
    "FieldDef",
    "MessageDef",
    "RpcDef",
    "ServiceDef",
    "IdlFile",
    "Token",
    "tokenize",
    "IdlSyntaxError",
    "parse_idl",
    "generate_python",
    "load_idl",
]
