"""Tokenizer for the Dagger IDL."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

PUNCTUATION = "{}()[];,"
KEYWORDS = ("Message", "Service", "rpc", "returns")


class IdlSyntaxError(SyntaxError):
    """IDL lexing/parsing error carrying line information."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'int' | 'punct' | 'keyword' | 'eof'
    value: str
    line: int


def tokenize(source: str) -> List[Token]:
    """Tokenize IDL source; ``//`` and ``#`` start line comments."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, line))
            i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            tokens.append(Token("int", source[start:i], line))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            continue
        raise IdlSyntaxError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
