"""AST node definitions for the Dagger IDL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Scalar type name -> byte width.
SCALAR_TYPES: Dict[str, int] = {
    "int8": 1,
    "uint8": 1,
    "int16": 2,
    "uint16": 2,
    "int32": 4,
    "uint32": 4,
    "int64": 8,
    "uint64": 8,
    "float32": 4,
    "float64": 8,
    "char": 1,
}

#: struct format characters for each scalar type (little-endian on the wire).
STRUCT_FORMATS: Dict[str, str] = {
    "int8": "b",
    "uint8": "B",
    "int16": "h",
    "uint16": "H",
    "int32": "i",
    "uint32": "I",
    "int64": "q",
    "uint64": "Q",
    "float32": "f",
    "float64": "d",
}


@dataclass(frozen=True)
class FieldDef:
    """One message field: ``int32 timestamp;`` or ``char[32] key;``."""

    name: str
    type_name: str
    array_len: Optional[int] = None  # only valid for char arrays

    def __post_init__(self):
        if self.type_name not in SCALAR_TYPES:
            raise ValueError(f"unknown field type {self.type_name!r}")
        if self.array_len is not None:
            if self.type_name != "char":
                raise ValueError(
                    f"array fields must be char[], got {self.type_name}[]"
                )
            if self.array_len < 1:
                raise ValueError(f"array length must be >= 1, got {self.array_len}")
        if self.type_name == "char" and self.array_len is None:
            raise ValueError("bare char fields are not allowed; use char[N]")

    @property
    def byte_size(self) -> int:
        width = SCALAR_TYPES[self.type_name]
        return width * (self.array_len or 1)


@dataclass(frozen=True)
class MessageDef:
    """A fixed-layout message."""

    name: str
    fields: tuple  # tuple of FieldDef

    def __post_init__(self):
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate field names in Message {self.name}")

    @property
    def byte_size(self) -> int:
        return sum(f.byte_size for f in self.fields)


@dataclass(frozen=True)
class RpcDef:
    """One remote procedure: ``rpc get(GetRequest) returns(GetResponse);``"""

    name: str
    request_type: str
    response_type: str


@dataclass(frozen=True)
class ServiceDef:
    """A service: a named set of rpcs."""

    name: str
    rpcs: tuple  # tuple of RpcDef

    def __post_init__(self):
        names = [r.name for r in self.rpcs]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rpc names in Service {self.name}")


@dataclass
class IdlFile:
    """A parsed IDL file: messages + services, with reference checking."""

    messages: List[MessageDef] = field(default_factory=list)
    services: List[ServiceDef] = field(default_factory=list)

    def message(self, name: str) -> MessageDef:
        for message in self.messages:
            if message.name == name:
                return message
        raise KeyError(f"no Message named {name!r}")

    def validate(self) -> None:
        """Check all rpc request/response types resolve to messages."""
        known = {message.name for message in self.messages}
        if len(known) != len(self.messages):
            raise ValueError("duplicate Message names")
        if len({s.name for s in self.services}) != len(self.services):
            raise ValueError("duplicate Service names")
        for service in self.services:
            for rpc in service.rpcs:
                for type_name in (rpc.request_type, rpc.response_type):
                    if type_name not in known:
                        raise ValueError(
                            f"Service {service.name}: rpc {rpc.name} references "
                            f"undefined Message {type_name!r}"
                        )


def format_idl(idl: "IdlFile") -> str:
    """Pretty-print an IdlFile back to IDL source (parse round-trips)."""
    chunks: List[str] = []
    for message in idl.messages:
        lines = [f"Message {message.name} {{"]
        for field_def in message.fields:
            if field_def.array_len is not None:
                lines.append(
                    f"    {field_def.type_name}[{field_def.array_len}] "
                    f"{field_def.name};"
                )
            else:
                lines.append(f"    {field_def.type_name} {field_def.name};")
        lines.append("}")
        chunks.append("\n".join(lines))
    for service in idl.services:
        lines = [f"Service {service.name} {{"]
        for rpc in service.rpcs:
            lines.append(
                f"    rpc {rpc.name}({rpc.request_type}) "
                f"returns({rpc.response_type});"
            )
        lines.append("}")
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + "\n"
