"""Client-side RPC runtime: RpcClient, RpcClientPool, CompletionQueue.

Mirrors the paper's API (section 4.2): an ``RpcClientPool`` encapsulates a
pool of ``RpcClient`` objects that call remote procedures concurrently;
each client owns (a share of) one NIC flow and its RX/TX ring pair, and an
associated ``CompletionQueue`` accumulating completed requests. Both
asynchronous (non-blocking) and synchronous (blocking) calls are supported,
and the completion queue can invoke continuation callbacks on responses.

A *port* is the stack-provided endpoint object (see
:class:`repro.stacks.base.StackPort`): it exposes ``send``/``rx_ring`` and
the CPU costs of the stack's TX/RX paths. The client's CQ poller runs as
its own simulation process but executes its CPU work on the same
``SoftwareThread``'s core, so receive processing naturally steals issue
capacity — that is what makes single-core throughput come out right.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.hw.cpu import SoftwareThread
from repro.rpc.errors import RpcDroppedError, RpcError
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim.kernel import Event, Simulator
from repro.sim.resources import Store


class RpcCall:
    """Future for one in-flight RPC."""

    __slots__ = ("packet", "event", "callback", "issued_at",
                 "completed_at", "response")

    def __init__(self, sim: Simulator, packet: RpcPacket,
                 callback: Optional[Callable[["RpcCall"], None]] = None):
        self.packet = packet
        self.event = Event(sim)
        self.callback = callback
        self.issued_at = sim.now
        self.completed_at: Optional[int] = None
        self.response: Optional[RpcPacket] = None

    @property
    def rpc_id(self) -> int:
        return self.packet.rpc_id

    @property
    def done(self) -> bool:
        return self.event.triggered

    @property
    def latency_ns(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    def _complete(self, response: RpcPacket, now: int) -> None:
        self.response = response
        self.completed_at = now
        self.event.succeed(response)
        if self.callback is not None:
            self.callback(self)


class CompletionQueue:
    """Accumulates completed calls (section 4.2's CompletionQueue object)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.completed = Store(sim, name="completion-queue")
        self.completed_count = 0

    def push(self, call: RpcCall) -> None:
        self.completed_count += 1
        self.completed.try_put(call)

    def pop(self) -> Event:
        """Event yielding the next completed RpcCall (blocking get)."""
        return self.completed.get()


class RpcClient:
    """One RPC client bound to a stack port and a software thread.

    A client may carry several *connections* over its single ring pair —
    the Shared Receive Queue model of section 4.2 ("connections on a
    certain RpcClient share the same RX/TX ring"). ``connection_id`` is
    the default; per-call override via the ``connection_id`` argument.
    """

    #: Optional repro.obs.SpanTracer; None keeps the issue path hook-free.
    tracer = None

    def __init__(
        self,
        port,
        thread: SoftwareThread,
        connection_id: int,
        name: str = "",
        hedge_ns: Optional[int] = None,
        max_hedges: int = 1,
        hedge_budget: float = 0.05,
    ):
        self.port = port
        self.thread = thread
        self.connection_id = connection_id
        self.connections = {connection_id}
        self.name = name or f"client-conn{connection_id}"
        self.sim = thread.sim
        self.completion_queue = CompletionQueue(self.sim)
        self._pending: Dict[int, RpcCall] = {}
        self.calls_issued = 0
        self.calls_completed = 0
        # Request hedging (tail-tolerance): a call still pending after
        # ``hedge_ns`` is re-sent (up to ``max_hedges`` copies), but total
        # hedges are budgeted to ``1 + hedge_budget * calls_issued`` so a
        # systemic outage cannot stampede the fabric. None disables — the
        # issue path then schedules nothing extra. Duplicate responses are
        # already tolerated by the poller (late pop returns None).
        self.hedge_ns = hedge_ns
        self.max_hedges = max_hedges
        self.hedge_budget = hedge_budget
        self.hedges_sent = 0
        self.hedges_denied = 0
        self._poller = self.sim.spawn(self._poll_responses())

    # -- issue path -----------------------------------------------------------

    def add_connection(self, connection_id: int) -> None:
        """Register an additional connection sharing this client's rings
        (SRQ model); the stack-side registration happens via connect()."""
        self.connections.add(connection_id)

    def call_async(
        self,
        method: str,
        payload: Any,
        payload_bytes: int,
        lb_key: Optional[int] = None,
        connection_id: Optional[int] = None,
        callback: Optional[Callable[[RpcCall], None]] = None,
    ) -> Generator:
        """Issue a non-blocking call; returns the RpcCall future.

        Must be driven from the owning thread's process::

            call = yield from client.call_async("get", req, 64)
            ...
            response = yield call.event
        """
        if connection_id is None:
            connection_id = self.connection_id
        elif connection_id not in self.connections:
            raise RpcError(
                f"{self.name}: connection {connection_id} not registered "
                "on this client (add_connection first)"
            )
        packet = RpcPacket(
            kind=RpcKind.REQUEST,
            connection_id=connection_id,
            method=method,
            payload=payload,
            payload_bytes=payload_bytes,
            lb_key=lb_key,
        )
        call = RpcCall(self.sim, packet, callback=callback)
        self._pending[packet.rpc_id] = call
        self.calls_issued += 1
        if self.tracer is not None:
            self.tracer.record(packet.rpc_id, "req_issue", self.sim.now)
        # thread.exec(port.cpu_tx_ns(packet)) inlined via begin/end_exec
        # (issue path runs once per RPC).
        thread = self.thread
        slots = thread.core.slots
        if not slots.try_acquire():
            yield slots.request()
        scaled = thread.begin_exec(self.port.cpu_tx_ns(packet))
        try:
            yield scaled
        finally:
            thread.end_exec()
        yield from self.port.send(packet)
        if self.hedge_ns is not None:
            self.sim.spawn(self._hedge_call(call))
        return call

    def _hedge_call(self, call: RpcCall) -> Generator:
        """Re-send a straggling call after ``hedge_ns`` (tail tolerance).

        The hedge is a fresh wire-level packet (new transport seq, own
        timestamps) carrying the same ``rpc_id``, so whichever copy's
        response arrives first completes the call and the loser is ignored
        by the poller. Hedging trades duplicate *execution* for latency —
        only safe for idempotent methods, hence opt-in per client.
        """
        budget = self.max_hedges
        while budget > 0:
            yield self.hedge_ns
            if call.done or call.packet.rpc_id not in self._pending:
                return
            allowance = 1 + int(self.hedge_budget * self.calls_issued)
            if self.hedges_sent >= allowance:
                self.hedges_denied += 1
                return
            budget -= 1
            self.hedges_sent += 1
            copy = call.packet.clone()
            copy.seq = None  # a brand-new packet to the transport
            copy.timestamps = {}
            yield from self.thread.exec(self.port.cpu_tx_ns(copy))
            yield from self.port.send(copy)

    def call(self, method: str, payload: Any, payload_bytes: int,
             lb_key: Optional[int] = None,
             connection_id: Optional[int] = None) -> Generator:
        """Blocking call: returns the response packet."""
        call = yield from self.call_async(method, payload, payload_bytes,
                                          lb_key=lb_key,
                                          connection_id=connection_id)
        response = yield call.event
        return response

    # -- receive path ----------------------------------------------------------

    def _poll_responses(self) -> Generator:
        port = self.port
        rx_ring = port.rx_ring
        get = rx_ring.get
        try_get = rx_ring.try_get
        cpu_rx_ns = port.cpu_rx_ns
        thread = self.thread
        slots = thread.core.slots
        request = slots.request
        try_acquire = slots.try_acquire
        begin_exec = thread.begin_exec
        end_exec = thread.end_exec
        while True:
            packet = try_get()
            if packet is None:
                packet = yield get()
            if not try_acquire():
                yield request()
            scaled = begin_exec(cpu_rx_ns(packet))
            try:
                yield scaled
            finally:
                end_exec()
            if packet.kind is not RpcKind.RESPONSE:
                raise RpcError(
                    f"{self.name} received a non-response packet: {packet!r}"
                )
            call = self._pending.pop(packet.rpc_id, None)
            if call is None:
                continue  # late duplicate or cancelled call
            packet.stamp("sw_rx", self.sim.now)
            self.calls_completed += 1
            if self.tracer is not None:
                self.tracer.record(packet.rpc_id, "resp_complete",
                                   self.sim.now)
            call._complete(packet, self.sim.now)
            self.completion_queue.push(call)

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def timeline_probes(self):
        """Timeline probe set: in-flight calls + completion counter."""
        return [
            ("outstanding", "gauge", lambda: len(self._pending)),
            ("calls_completed", "counter", lambda: self.calls_completed),
            ("hedges_sent", "counter", lambda: self.hedges_sent),
        ]

    def fail_pending(self, reason: str = "connection torn down") -> None:
        """Fail every in-flight call (used by tests and shutdown paths)."""
        pending, self._pending = self._pending, {}
        for call in pending.values():
            call.event.fail(RpcDroppedError(reason))


class RpcClientPool:
    """A pool of RpcClients for one client-server pair (section 4.2).

    ``make_client`` is a stack-provided factory; the pool hands out clients
    round-robin so multiple application threads can share it.
    """

    def __init__(self, make_client: Callable[[int], RpcClient], size: int):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.clients: List[RpcClient] = [make_client(i) for i in range(size)]
        self._next = 0

    def get_client(self) -> RpcClient:
        client = self.clients[self._next % len(self.clients)]
        self._next += 1
        return client

    def __len__(self) -> int:
        return len(self.clients)

    @property
    def total_completed(self) -> int:
        return sum(client.calls_completed for client in self.clients)
