"""Wire serialization for IDL messages.

Fixed layouts only (the paper's section 4.5 limitation): every message is a
concatenation of little-endian scalars and fixed-width char arrays, so
(de)serialization is a single ``struct`` pack/unpack — the software-side
analogue of the NIC's streaming serializer.
"""

from __future__ import annotations

import struct
from typing import Any, Dict

from repro.rpc.errors import SerializationError
from repro.rpc.idl.ast_nodes import STRUCT_FORMATS, FieldDef, MessageDef


def struct_format(message: MessageDef) -> str:
    """The ``struct`` format string for a message's wire layout."""
    parts = ["<"]
    for field_def in message.fields:
        if field_def.type_name == "char":
            parts.append(f"{field_def.array_len}s")
        else:
            parts.append(STRUCT_FORMATS[field_def.type_name])
    return "".join(parts)


def _coerce(field_def: FieldDef, value: Any) -> Any:
    if field_def.type_name == "char":
        if isinstance(value, str):
            value = value.encode()
        if not isinstance(value, (bytes, bytearray)):
            raise SerializationError(
                f"field {field_def.name}: expected bytes/str, "
                f"got {type(value).__name__}"
            )
        if len(value) > field_def.array_len:
            raise SerializationError(
                f"field {field_def.name}: {len(value)} bytes exceeds "
                f"char[{field_def.array_len}]"
            )
        return bytes(value).ljust(field_def.array_len, b"\x00")
    if field_def.type_name in ("float32", "float64"):
        return float(value)
    if not isinstance(value, int):
        raise SerializationError(
            f"field {field_def.name}: expected int, got {type(value).__name__}"
        )
    return value


def encode(message: MessageDef, values: Dict[str, Any]) -> bytes:
    """Encode a dict of field values into the message's wire bytes."""
    missing = {f.name for f in message.fields} - set(values)
    if missing:
        raise SerializationError(
            f"{message.name}: missing fields {sorted(missing)}"
        )
    extra = set(values) - {f.name for f in message.fields}
    if extra:
        raise SerializationError(f"{message.name}: unknown fields {sorted(extra)}")
    ordered = [_coerce(f, values[f.name]) for f in message.fields]
    try:
        return struct.pack(struct_format(message), *ordered)
    except struct.error as exc:
        raise SerializationError(f"{message.name}: {exc}") from None


def decode(message: MessageDef, data: bytes) -> Dict[str, Any]:
    """Decode wire bytes back into a dict of field values."""
    expected = message.byte_size
    if len(data) != expected:
        raise SerializationError(
            f"{message.name}: expected {expected} bytes, got {len(data)}"
        )
    unpacked = struct.unpack(struct_format(message), data)
    return {f.name: v for f, v in zip(message.fields, unpacked)}


def roundtrip_check(message: MessageDef, values: Dict[str, Any]) -> bool:
    """True when values survive encode->decode unchanged (char fields are
    compared after zero-padding, matching wire semantics)."""
    decoded = decode(message, encode(message, values))
    for field_def in message.fields:
        original = _coerce(field_def, values[field_def.name])
        if decoded[field_def.name] != original:
            return False
    return True
