"""Server-side RPC runtime: RpcThreadedServer and its threading models.

The paper's server API registers remote procedures as ``RpcServerThread``
objects wrapping server event loops and dispatch threads (section 4.2).
Two threading models, as in section 5.7:

- **dispatch** (the "Simple" model): RPC handlers run directly in the
  dispatch thread that polls the flow's RX ring — lowest latency, but a
  long-running handler blocks the flow (this is what limits the Flight
  service to 2.7 Krps in Table 4);
- **worker**: the dispatch thread only moves requests to a worker queue;
  a pool of worker threads runs the handlers and sends the responses —
  higher throughput for long handlers at the cost of the inter-thread
  hand-off latency.

Handlers are generator functions ``handler(ctx, payload)`` returning
``(response_payload, response_bytes)``; they do CPU work through
``ctx.exec(ns)`` (and may issue nested RPCs through clients bound to
``ctx.thread``, which is how the multi-tier applications are built).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Generator, List, Optional

from repro.hw.cpu import SoftwareThread
from repro.rpc.errors import MethodNotFoundError
from repro.rpc.messages import RpcPacket
from repro.sim.kernel import Simulator
from repro.sim.resources import Store


class ThreadingModel(enum.Enum):
    DISPATCH = "dispatch"  # handlers run in the dispatch thread
    WORKER = "worker"  # handlers run in separate worker threads


class HandlerContext:
    """What a handler sees while it runs."""

    def __init__(self, server: "RpcThreadedServer", thread: SoftwareThread,
                 packet: RpcPacket):
        self.server = server
        self.thread = thread
        self.packet = packet
        self.deferred_ns = 0

    @property
    def sim(self) -> Simulator:
        return self.thread.sim

    def exec(self, cost_ns: int) -> Generator:
        """Spend CPU time on the thread currently running the handler."""
        if cost_ns < 0:
            raise ValueError(f"negative cost {cost_ns}")
        thread = self.thread
        slots = thread.core.slots
        if not slots.try_acquire():
            yield slots.request()
        scaled = thread.begin_exec(cost_ns)
        try:
            yield scaled
        finally:
            thread.end_exec()

    def defer(self, cost_ns: int) -> None:
        """Schedule post-response work on the handling thread.

        The response goes out first; the thread then stays busy for
        ``cost_ns`` before taking its next request. In the dispatch model
        this blocks the whole flow (the Table 4 "Simple" bottleneck); in the
        worker model it only occupies one worker.
        """
        if cost_ns < 0:
            raise ValueError(f"negative deferred cost {cost_ns}")
        self.deferred_ns += cost_ns


class RpcServerThread:
    """One server event loop: a flow's RX ring + its dispatch thread."""

    #: Optional repro.obs.SpanTracer; None keeps the dispatch path hook-free.
    tracer = None

    def __init__(
        self,
        server: "RpcThreadedServer",
        port,
        thread: SoftwareThread,
        model: ThreadingModel = ThreadingModel.DISPATCH,
        workers: Optional[List[SoftwareThread]] = None,
        worker_queue_capacity: int = 256,
    ):
        self.server = server
        self.port = port
        self.thread = thread
        self.model = model
        self.workers = workers or []
        if model is ThreadingModel.WORKER and not self.workers:
            raise ValueError("worker threading model requires worker threads")
        self.sim = thread.sim
        self.requests_handled = 0
        self._worker_queue: Optional[Store] = None
        if model is ThreadingModel.WORKER:
            self._worker_queue = Store(
                self.sim,
                capacity=worker_queue_capacity,
                name="worker-queue",
                reject_when_full=True,
            )

    @property
    def worker_queue_drops(self) -> int:
        return self._worker_queue.drops if self._worker_queue else 0

    def start(self) -> None:
        self.sim.spawn(self._dispatch_loop())
        if self.model is ThreadingModel.WORKER:
            for worker in self.workers:
                self.sim.spawn(self._worker_loop(worker))

    # -- event loops ----------------------------------------------------------

    def _dispatch_loop(self) -> Generator:
        calibration = self.server.calibration
        dispatch_ns = calibration.cpu_dispatch_ns
        sim = self.sim
        port = self.port
        rx_ring = port.rx_ring
        get = rx_ring.get
        try_get = rx_ring.try_get
        cpu_rx_ns = port.cpu_rx_ns
        thread = self.thread
        slots = thread.core.slots
        request = slots.request
        try_acquire = slots.try_acquire
        begin_exec = thread.begin_exec
        end_exec = thread.end_exec
        while True:
            packet = try_get()
            if packet is None:
                packet = yield get()
            packet.stamp("server_rx", sim.now)
            if self.tracer is not None:
                self.tracer.record(packet.rpc_id, "req_dispatch",
                                   sim.now)
            if not try_acquire():
                yield request()
            scaled = begin_exec(cpu_rx_ns(packet) + dispatch_ns)
            try:
                yield scaled
            finally:
                end_exec()
            if self.model is ThreadingModel.DISPATCH:
                yield from self._handle(self.thread, packet)
            else:
                yield from self.thread.exec(calibration.cpu_worker_handoff_ns)
                self._worker_queue.try_put(packet)  # overflow counts as drop

    def _worker_loop(self, worker: SoftwareThread) -> Generator:
        wakeup_ns = self.server.calibration.cpu_worker_wakeup_ns
        queue = self._worker_queue
        while True:
            packet = queue.try_get()
            if packet is None:
                packet = yield queue.get()
            yield from worker.exec(wakeup_ns)
            yield from self._handle(worker, packet)

    def _handle(self, thread: SoftwareThread, packet: RpcPacket) -> Generator:
        handler = self.server.handler_for(packet.method)
        context = HandlerContext(self.server, thread, packet)
        tracer = self.tracer
        if tracer is not None:
            tracer.record(packet.rpc_id, "handler_start", self.sim.now)
        result = yield from handler(context, packet.payload)
        if tracer is not None:
            tracer.record(packet.rpc_id, "handler_done", self.sim.now)
        response_payload, response_bytes = result
        response = packet.make_response(response_payload, response_bytes)
        slots = thread.core.slots
        if not slots.try_acquire():
            yield slots.request()
        scaled = thread.begin_exec(self.port.cpu_tx_ns(response))
        try:
            yield scaled
        finally:
            thread.end_exec()
        yield from self.port.send(response)
        self.requests_handled += 1
        self.server.requests_handled += 1
        if context.deferred_ns:
            yield from thread.exec(context.deferred_ns)


class RpcThreadedServer:
    """A server process: handler registry + a set of server threads."""

    def __init__(self, sim: Simulator, calibration, name: str = "server"):
        self.sim = sim
        self.calibration = calibration
        self.name = name
        self._handlers: Dict[str, Callable] = {}
        self.server_threads: List[RpcServerThread] = []
        self.requests_handled = 0
        self._started = False

    def register_handler(self, method: str, handler: Callable) -> None:
        """Register ``handler(ctx, payload) -> (payload, bytes)`` generator."""
        if method in self._handlers:
            raise ValueError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    def handler_for(self, method: str) -> Callable:
        try:
            return self._handlers[method]
        except KeyError:
            raise MethodNotFoundError(
                f"{self.name} has no handler for {method!r} "
                f"(registered: {sorted(self._handlers)})"
            ) from None

    def add_server_thread(self, port, thread: SoftwareThread,
                          model: ThreadingModel = ThreadingModel.DISPATCH,
                          workers: Optional[List[SoftwareThread]] = None,
                          worker_queue_capacity: int = 256) -> RpcServerThread:
        server_thread = RpcServerThread(
            self, port, thread, model=model, workers=workers,
            worker_queue_capacity=worker_queue_capacity,
        )
        self.server_threads.append(server_thread)
        if self._started:
            server_thread.start()
        return server_thread

    def start(self) -> None:
        """Start all event loops (idempotent)."""
        if self._started:
            return
        self._started = True
        for server_thread in self.server_threads:
            server_thread.start()

    def timeline_probes(self):
        """Timeline probe set: aggregate service counter + worker backlog."""
        return [
            ("requests_handled", "counter", lambda: self.requests_handled),
            ("worker_backlog", "gauge",
             lambda: sum(len(t._worker_queue) if t._worker_queue is not None
                         else 0 for t in self.server_threads)),
        ]
