"""Reliable transport for the NIC's Protocol unit (§4.5 future work).

The paper ships with the Protocol unit idle (UDP-like, drops are lost) and
names "reliable transports and RPC-specific congestion control" as
follow-up work. This module implements that extension *in the NIC*, so
reliability costs no host CPU — the property section 6 argues hardware
RPC stacks enable.

Design (NACK-driven selective repeat with cumulative ACKs):

- the egress Protocol unit stamps each data packet with a per-connection
  sequence number and keeps it in a retransmit buffer;
- the ingress Protocol unit tracks, per (connection, peer), the highest
  contiguously delivered sequence; when the NIC must drop a packet (flow
  FIFO or host RX ring full) it immediately emits a **NACK** control
  packet, and every ``ack_interval`` deliveries it emits a cumulative
  **ACK**; a delayed flush ACK covers tails shorter than the interval;
- NACKs trigger retransmission from the buffer; ACKs free it;
- a sender-side **retransmission timeout** re-sends anything unACKed for
  ``rto_ns``, so recovery no longer depends on NACK/ACK delivery (lost
  control packets merely cost time, not liveness);
- the ingress unit suppresses duplicates (``seq <= highest`` or already
  pending) *before* host-ring delivery, so retransmission races and wire
  duplication can never execute an RPC twice;
- when the sender gives up on a packet (``max_retries``), it emits a
  **SKIP** so the receiver closes the sequence hole and cumulative
  ACKing resumes past the abandoned seq.

Retransmissions always send a *copy* of the buffered packet: the original
object may still be aliased by an in-flight wire event, and two deliveries
of the same mutable object corrupt per-hop timestamps.

Control packets are NIC-terminated: they traverse the wire and the ingress
pipeline but never touch host rings — the host never sees the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.rpc.messages import RpcKind, RpcPacket

ACK_METHOD = "__ack__"
NACK_METHOD = "__nack__"
SKIP_METHOD = "__skip__"
CONTROL_BYTES = 16

#: Default retransmission timeout. Several wire RTTs (~3 us loopback) plus
#: headroom for the delayed flush ACK, so the timer only fires when an ACK
#: or the data really went missing.
DEFAULT_RTO_NS = 50_000
#: Receiver-side delayed-ACK flush: tails shorter than ``ack_interval``
#: get ACKed after this quiet period instead of waiting for the sender's
#: RTO to probe them. Must stay well under ``DEFAULT_RTO_NS``.
DEFAULT_ACK_FLUSH_NS = 20_000


@dataclass
class TransportStats:
    data_packets: int = 0
    retransmissions: int = 0
    timeout_retransmissions: int = 0  # subset triggered by the RTO timer
    acks_sent: int = 0
    nacks_sent: int = 0
    skips_sent: int = 0
    buffered_peak: int = 0
    lost_unrecoverable: int = 0  # sender gave up after max_retries
    duplicates_dropped: int = 0  # receiver-side suppression before the host
    stale_nacks: int = 0  # NACKs for packets already ACKed or given up


class ReliableTransport:
    """Per-NIC reliable Protocol unit."""

    def __init__(self, nic, ack_interval: int = 32, max_retries: int = 64,
                 rto_ns: Optional[int] = DEFAULT_RTO_NS,
                 ack_flush_ns: Optional[int] = DEFAULT_ACK_FLUSH_NS):
        if ack_interval < 1:
            raise ValueError(f"ack_interval must be >= 1, got {ack_interval}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        if rto_ns is not None and rto_ns < 1:
            raise ValueError(f"rto_ns must be >= 1 or None, got {rto_ns}")
        self.nic = nic
        self.ack_interval = ack_interval
        self.max_retries = max_retries
        self.rto_ns = rto_ns
        self.ack_flush_ns = ack_flush_ns
        # Timers need the kernel; unit tests drive the transport with bare
        # fake NICs, where both timeout mechanisms simply stay off.
        self._sim = getattr(nic, "sim", None)
        self.stats = TransportStats()
        self._retries: Dict[Tuple[int, int], int] = {}
        # sender side: connection -> next seq; connection -> {seq: packet}.
        # Each per-connection buffer holds seqs in ascending insertion order
        # (first transmissions assign increasing seqs; retransmissions send
        # copies and never re-buffer), so a cumulative ACK frees a prefix
        # without scanning the rest.
        self._next_seq: Dict[int, int] = {}
        self._unacked: Dict[int, Dict[int, RpcPacket]] = {}
        self._sent_at: Dict[Tuple[int, int], int] = {}
        self._acked_upto: Dict[int, int] = {}
        self._rto_running = False
        # receiver side: (connection, peer) -> highest contiguous seq
        self._delivered: Dict[Tuple[int, str], int] = {}
        self._out_of_order: Dict[Tuple[int, str], set] = {}
        self._since_ack: Dict[Tuple[int, str], int] = {}
        self._flush_armed: set = set()

    # -- egress (sender) -------------------------------------------------------

    def on_egress(self, packet: RpcPacket) -> None:
        """Stamp a sequence number and buffer the packet for retransmit."""
        if packet.kind is RpcKind.CONTROL:
            return
        if packet.seq is None:
            seq = self._next_seq.get(packet.connection_id, 0)
            self._next_seq[packet.connection_id] = seq + 1
            packet.seq = seq
            self.stats.data_packets += 1
            buffer = self._unacked.setdefault(packet.connection_id, {})
            buffer[seq] = packet
            self.stats.buffered_peak = max(self.stats.buffered_peak,
                                           self.unacked)
            if self._sim is not None:
                self._sent_at[(packet.connection_id, seq)] = self._sim.now
                self._arm_rto()
        elif self._sim is not None:
            # A retransmitted copy passing back through the pipeline: the
            # buffer still holds the original; just restart its RTO clock.
            key = (packet.connection_id, packet.seq)
            if key in self._sent_at:
                self._sent_at[key] = self._sim.now

    @property
    def unacked(self) -> int:
        return sum(len(buffer) for buffer in self._unacked.values())

    def timeline_probes(self):
        """Timeline probe set: in-flight window + protocol counters."""
        stats = self.stats
        return [
            ("unacked", "gauge", lambda: self.unacked),
            ("retransmissions", "counter",
             lambda: stats.retransmissions),
            ("acks_sent", "counter", lambda: stats.acks_sent),
            ("duplicates_dropped", "counter",
             lambda: stats.duplicates_dropped),
            ("lost_unrecoverable", "counter",
             lambda: stats.lost_unrecoverable),
        ]

    # -- retransmission timeout ------------------------------------------------

    def _arm_rto(self) -> None:
        if self._rto_running or self.rto_ns is None or self._sim is None:
            return
        self._rto_running = True
        self._sim.spawn(self._rto_loop())

    def _rto_loop(self):
        """Scan the retransmit buffer while anything is outstanding.

        Exits once the buffer drains (re-armed by the next first
        transmission), so an idle NIC schedules no events. Termination is
        guaranteed even with a dead peer: every entry either gets ACKed or
        exhausts ``max_retries`` and is given up.
        """
        sim = self._sim
        interval = max(1, self.rto_ns // 4)
        while self._unacked:
            yield interval
            cutoff = sim.now - self.rto_ns
            expired = [key for key, at in self._sent_at.items()
                       if at <= cutoff]
            for connection_id, seq in expired:
                self._retransmit(connection_id, seq, on_timeout=True)
        self._rto_running = False

    def _retransmit(self, connection_id: int, seq: int, *,
                    on_timeout: bool = False) -> bool:
        """Re-send a buffered packet as a copy; give up past max_retries."""
        buffer = self._unacked.get(connection_id)
        packet = None if buffer is None else buffer.get(seq)
        key = (connection_id, seq)
        if packet is None:
            self._sent_at.pop(key, None)
            return False
        retries = self._retries.get(key, 0)
        if retries >= self.max_retries:
            # A receiver that never drains: give up like a real transport
            # (otherwise NACK/retransmit livelocks the fabric).
            del buffer[seq]
            if not buffer:
                del self._unacked[connection_id]
            self._retries.pop(key, None)
            self._sent_at.pop(key, None)
            self.stats.lost_unrecoverable += 1
            self._emit_skip(packet)
            return False
        self._retries[key] = retries + 1
        self.stats.retransmissions += 1
        if on_timeout:
            self.stats.timeout_retransmissions += 1
        if self._sim is not None:
            self._sent_at[key] = self._sim.now
        self.nic.enqueue_egress(packet.src_flow
                                if packet.src_flow < self.nic.hard.num_flows
                                else 0, packet.clone())
        return True

    # -- ingress (receiver) -------------------------------------------------------

    def on_delivered(self, packet: RpcPacket) -> bool:
        """Track delivery; emit a cumulative ACK every ack_interval.

        Returns ``True`` when the packet is fresh (deliver it to the host)
        and ``False`` for a duplicate the NIC must suppress. Duplicates
        still trigger an immediate re-ACK so a sender retransmitting into
        an ACK gap frees its buffer instead of probing until give-up.
        """
        if packet.seq is None:
            return True
        key = (packet.connection_id, packet.src_address)
        highest = self._delivered.get(key, -1)
        pending = self._out_of_order.setdefault(key, set())
        if packet.seq <= highest or packet.seq in pending:
            self.stats.duplicates_dropped += 1
            if highest >= 0:
                self._emit_control(ACK_METHOD, packet, highest)
                self.stats.acks_sent += 1
                self._since_ack[key] = 0
            return False
        if packet.seq == highest + 1:
            highest += 1
            while highest + 1 in pending:
                pending.discard(highest + 1)
                highest += 1
            self._delivered[key] = highest
        else:
            pending.add(packet.seq)
        self._since_ack[key] = self._since_ack.get(key, 0) + 1
        if self._since_ack[key] >= self.ack_interval:
            acked = self._delivered.get(key, -1)
            if acked >= 0:
                self._since_ack[key] = 0
                self._emit_control(ACK_METHOD, packet, acked)
                self.stats.acks_sent += 1
        elif self._sim is not None and self.ack_flush_ns is not None \
                and key not in self._flush_armed:
            self._flush_armed.add(key)
            self._sim.spawn(self._ack_flush(key))
        return True

    def _ack_flush(self, key):
        """Delayed ACK for tails that never reach ``ack_interval``."""
        yield self.ack_flush_ns
        self._flush_armed.discard(key)
        if self._since_ack.get(key, 0) > 0:
            highest = self._delivered.get(key, -1)
            if highest >= 0:
                self._since_ack[key] = 0
                self._emit_control_to(key[0], key[1], ACK_METHOD, highest)
                self.stats.acks_sent += 1

    def on_receiver_drop(self, packet: RpcPacket) -> None:
        """The NIC had to drop this packet: ask the sender to resend it."""
        if packet.seq is None or packet.kind is RpcKind.CONTROL:
            return
        self._emit_control(NACK_METHOD, packet, packet.seq)
        self.stats.nacks_sent += 1

    def _emit_control(self, method: str, cause: RpcPacket, seq: int) -> None:
        self._emit_control_to(cause.connection_id, cause.src_address,
                              method, seq, src_flow=cause.src_flow)

    def _emit_control_to(self, connection_id: int, dst_address: str,
                         method: str, seq: int, src_flow: int = 0) -> None:
        control = RpcPacket(
            kind=RpcKind.CONTROL,
            connection_id=connection_id,
            method=method,
            payload=seq,
            payload_bytes=CONTROL_BYTES,
            src_address=self.nic.address,
            dst_address=dst_address,
            src_flow=src_flow,
        )
        self.nic.enqueue_egress(0, control)

    def _emit_skip(self, packet: RpcPacket) -> None:
        """Tell the receiver to close the hole left by a given-up packet."""
        if not packet.dst_address:
            return
        self._emit_control_to(packet.connection_id, packet.dst_address,
                              SKIP_METHOD, packet.seq,
                              src_flow=packet.src_flow)
        self.stats.skips_sent += 1

    # -- control handling (back at the sender) -------------------------------------

    def on_control(self, packet: RpcPacket) -> None:
        if packet.method == ACK_METHOD:
            self._handle_ack(packet.connection_id, packet.payload)
        elif packet.method == NACK_METHOD:
            self._handle_nack(packet.connection_id, packet.payload)
        elif packet.method == SKIP_METHOD:
            self._handle_skip(packet)
        else:
            raise ValueError(f"unknown control method {packet.method!r}")

    def _handle_ack(self, connection_id: int, upto_seq: int) -> None:
        if upto_seq > self._acked_upto.get(connection_id, -1):
            self._acked_upto[connection_id] = upto_seq
        buffer = self._unacked.get(connection_id)
        if buffer is None:
            return
        # Ascending-seq invariant: stop at the first seq beyond the ACK
        # instead of scanning every buffered packet of every connection.
        freed = []
        for seq in buffer:
            if seq > upto_seq:
                break
            freed.append(seq)
        retries = self._retries
        for seq in freed:
            del buffer[seq]
            retries.pop((connection_id, seq), None)
            self._sent_at.pop((connection_id, seq), None)
        if not buffer:
            del self._unacked[connection_id]

    def _handle_nack(self, connection_id: int, seq: int) -> None:
        if seq <= self._acked_upto.get(connection_id, -1):
            # The dropped copy was a stray duplicate: the data is already
            # cumulatively ACKed, so there is nothing to resend.
            self.stats.stale_nacks += 1
            return
        buffer = self._unacked.get(connection_id)
        if buffer is None or seq not in buffer:
            # Not buffered and not ACKed: we gave up on it earlier (already
            # counted as lost) or the ACK freeing it is still in flight.
            self.stats.stale_nacks += 1
            return
        self._retransmit(connection_id, seq)

    def _handle_skip(self, packet: RpcPacket) -> None:
        """Sender abandoned this seq: treat it as virtually delivered."""
        key = (packet.connection_id, packet.src_address)
        seq = packet.payload
        highest = self._delivered.get(key, -1)
        if seq <= highest:
            return
        pending = self._out_of_order.setdefault(key, set())
        pending.add(seq)
        if seq == highest + 1:
            while highest + 1 in pending:
                pending.discard(highest + 1)
                highest += 1
            self._delivered[key] = highest
            # The gap just closed: ACK immediately so the sender's buffer
            # (stalled behind the hole) frees without waiting for its RTO.
            self._since_ack[key] = 0
            self._emit_control(ACK_METHOD, packet, highest)
            self.stats.acks_sent += 1
