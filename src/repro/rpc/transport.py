"""Reliable transport for the NIC's Protocol unit (§4.5 future work).

The paper ships with the Protocol unit idle (UDP-like, drops are lost) and
names "reliable transports and RPC-specific congestion control" as
follow-up work. This module implements that extension *in the NIC*, so
reliability costs no host CPU — the property section 6 argues hardware
RPC stacks enable.

Design (NACK-driven selective repeat with cumulative ACKs):

- the egress Protocol unit stamps each data packet with a per-connection
  sequence number and keeps it in a retransmit buffer;
- the ingress Protocol unit tracks, per (connection, peer), the highest
  contiguously delivered sequence; when the NIC must drop a packet (flow
  FIFO or host RX ring full) it immediately emits a **NACK** control
  packet, and every ``ack_interval`` deliveries it emits a cumulative
  **ACK**;
- NACKs trigger retransmission from the buffer; ACKs free it.

Control packets are NIC-terminated: they traverse the wire and the ingress
pipeline but never touch host rings — the host never sees the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.rpc.messages import RpcKind, RpcPacket

ACK_METHOD = "__ack__"
NACK_METHOD = "__nack__"
CONTROL_BYTES = 16


@dataclass
class TransportStats:
    data_packets: int = 0
    retransmissions: int = 0
    acks_sent: int = 0
    nacks_sent: int = 0
    buffered_peak: int = 0
    lost_unrecoverable: int = 0


class ReliableTransport:
    """Per-NIC reliable Protocol unit."""

    def __init__(self, nic, ack_interval: int = 32, max_retries: int = 64):
        if ack_interval < 1:
            raise ValueError(f"ack_interval must be >= 1, got {ack_interval}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.nic = nic
        self.ack_interval = ack_interval
        self.max_retries = max_retries
        self.stats = TransportStats()
        self._retries: Dict[Tuple[int, int], int] = {}
        # sender side: connection -> next seq; connection -> {seq: packet}.
        # Each per-connection buffer holds seqs in ascending insertion order
        # (first transmissions assign increasing seqs; retransmissions only
        # re-assign a key that is still present, which keeps its position),
        # so a cumulative ACK frees a prefix without scanning the rest.
        self._next_seq: Dict[int, int] = {}
        self._unacked: Dict[int, Dict[int, RpcPacket]] = {}
        # receiver side: (connection, peer) -> highest contiguous seq
        self._delivered: Dict[Tuple[int, str], int] = {}
        self._out_of_order: Dict[Tuple[int, str], set] = {}
        self._since_ack: Dict[Tuple[int, str], int] = {}

    # -- egress (sender) -------------------------------------------------------

    def on_egress(self, packet: RpcPacket) -> None:
        """Stamp a sequence number and buffer the packet for retransmit."""
        if packet.kind is RpcKind.CONTROL:
            return
        if packet.seq is None:
            seq = self._next_seq.get(packet.connection_id, 0)
            self._next_seq[packet.connection_id] = seq + 1
            packet.seq = seq
            self.stats.data_packets += 1
        buffer = self._unacked.setdefault(packet.connection_id, {})
        buffer[packet.seq] = packet
        self.stats.buffered_peak = max(self.stats.buffered_peak, self.unacked)

    @property
    def unacked(self) -> int:
        return sum(len(buffer) for buffer in self._unacked.values())

    def timeline_probes(self):
        """Timeline probe set: in-flight window + protocol counters."""
        stats = self.stats
        return [
            ("unacked", "gauge", lambda: self.unacked),
            ("retransmissions", "counter",
             lambda: stats.retransmissions),
            ("acks_sent", "counter", lambda: stats.acks_sent),
        ]

    # -- ingress (receiver) -------------------------------------------------------

    def on_delivered(self, packet: RpcPacket) -> None:
        """Track delivery; emit a cumulative ACK every ack_interval."""
        if packet.seq is None:
            return
        key = (packet.connection_id, packet.src_address)
        highest = self._delivered.get(key, -1)
        pending = self._out_of_order.setdefault(key, set())
        if packet.seq == highest + 1:
            highest += 1
            while highest + 1 in pending:
                pending.discard(highest + 1)
                highest += 1
            self._delivered[key] = highest
        elif packet.seq > highest:
            pending.add(packet.seq)
        self._since_ack[key] = self._since_ack.get(key, 0) + 1
        if self._since_ack[key] >= self.ack_interval:
            self._since_ack[key] = 0
            self._emit_control(ACK_METHOD, packet, self._delivered[key])
            self.stats.acks_sent += 1

    def on_receiver_drop(self, packet: RpcPacket) -> None:
        """The NIC had to drop this packet: ask the sender to resend it."""
        if packet.seq is None or packet.kind is RpcKind.CONTROL:
            return
        self._emit_control(NACK_METHOD, packet, packet.seq)
        self.stats.nacks_sent += 1

    def _emit_control(self, method: str, cause: RpcPacket, seq: int) -> None:
        control = RpcPacket(
            kind=RpcKind.CONTROL,
            connection_id=cause.connection_id,
            method=method,
            payload=seq,
            payload_bytes=CONTROL_BYTES,
            src_address=self.nic.address,
            dst_address=cause.src_address,
            src_flow=cause.src_flow,
        )
        self.nic.enqueue_egress(0, control)

    # -- control handling (back at the sender) -------------------------------------

    def on_control(self, packet: RpcPacket) -> None:
        if packet.method == ACK_METHOD:
            self._handle_ack(packet.connection_id, packet.payload)
        elif packet.method == NACK_METHOD:
            self._handle_nack(packet.connection_id, packet.payload)
        else:
            raise ValueError(f"unknown control method {packet.method!r}")

    def _handle_ack(self, connection_id: int, upto_seq: int) -> None:
        buffer = self._unacked.get(connection_id)
        if buffer is None:
            return
        # Ascending-seq invariant: stop at the first seq beyond the ACK
        # instead of scanning every buffered packet of every connection.
        freed = []
        for seq in buffer:
            if seq > upto_seq:
                break
            freed.append(seq)
        retries = self._retries
        for seq in freed:
            del buffer[seq]
            retries.pop((connection_id, seq), None)
        if not buffer:
            del self._unacked[connection_id]

    def _handle_nack(self, connection_id: int, seq: int) -> None:
        buffer = self._unacked.get(connection_id, {})
        packet = buffer.get(seq)
        if packet is None:
            # ACKed and freed before the NACK arrived: nothing to resend.
            self.stats.lost_unrecoverable += 1
            return
        key = (connection_id, seq)
        retries = self._retries.get(key, 0)
        if retries >= self.max_retries:
            # A receiver that never drains: give up like a real transport
            # (otherwise NACK/retransmit livelocks the fabric).
            del buffer[seq]
            if not buffer:
                del self._unacked[connection_id]
            self._retries.pop(key, None)
            self.stats.lost_unrecoverable += 1
            return
        self._retries[key] = retries + 1
        self.stats.retransmissions += 1
        self.nic.enqueue_egress(packet.src_flow
                                if packet.src_flow < self.nic.hard.num_flows
                                else 0, packet)
