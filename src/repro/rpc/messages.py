"""RPC wire format.

An :class:`RpcPacket` is the unit that moves through the whole system: the
client stub builds one, the NIC fetches it over the interconnect, the
transport sends it through the switch, and the server ring delivers it to a
dispatch thread. Request types are distinguished by the ``kind`` field that
"is a part of every RPC packet" (section 4.4), making the stack symmetric.

Timestamps are attached at named trace points so experiments can break
latency into CPU / interconnect / NIC / network components (used heavily by
the Fig 3 characterization).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Optional

HEADER_BYTES = 16  # rpc id, connection id, flow, kind, method id, length


class RpcKind(enum.Enum):
    REQUEST = "request"
    RESPONSE = "response"
    CONTROL = "control"  # NIC-terminated transport packets (ACK/NACK)


_packet_ids = itertools.count()


class RpcPacket:
    """One RPC message (request or response).

    A plain slotted class rather than a dataclass: tens of thousands are
    created per run (one per request plus one per response), and the
    dataclass-generated ``__init__``/``__post_init__`` hop costs real time
    on the issue path. Field order and defaults match the original
    dataclass signature exactly.
    """

    __slots__ = ("kind", "connection_id", "method", "payload",
                 "payload_bytes", "src_address", "dst_address", "src_flow",
                 "rpc_id", "lb_key", "seq", "timestamps")

    def __init__(
        self,
        kind: RpcKind,
        connection_id: int,
        method: str,
        payload: Any,
        payload_bytes: int,
        src_address: str = "",
        dst_address: str = "",
        src_flow: int = 0,
        rpc_id: Optional[int] = None,
        lb_key: Optional[int] = None,  # key hash for object-level LB
        seq: Optional[int] = None,  # per-connection seq (reliable transport)
        timestamps: Optional[Dict[str, int]] = None,
    ):
        if payload_bytes < 0:
            raise ValueError(f"negative payload size {payload_bytes}")
        self.kind = kind
        self.connection_id = connection_id
        self.method = method
        self.payload = payload
        self.payload_bytes = payload_bytes
        self.src_address = src_address
        self.dst_address = dst_address
        self.src_flow = src_flow
        self.rpc_id = next(_packet_ids) if rpc_id is None else rpc_id
        self.lb_key = lb_key
        self.seq = seq
        self.timestamps = {} if timestamps is None else timestamps

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes

    def lines(self, line_bytes: int = 64) -> int:
        """Cache lines this packet occupies in host/NIC buffers."""
        # wire_bytes inlined: this runs several times per packet on the
        # TX/RX cost paths and the property descriptor hop is measurable.
        return max(1, -(-(HEADER_BYTES + self.payload_bytes) // line_bytes))

    def stamp(self, point: str, now: int) -> None:
        """Record the first time the packet passes a named trace point."""
        self.timestamps.setdefault(point, now)

    def clone(self) -> "RpcPacket":
        """Independent copy with the same identity (rpc_id, seq).

        Retransmission and wire duplication must send a *distinct object*:
        the original may still be aliased by an in-flight wire event, and
        two deliveries sharing one mutable packet corrupt each other's
        per-hop timestamps.
        """
        return RpcPacket(
            kind=self.kind,
            connection_id=self.connection_id,
            method=self.method,
            payload=self.payload,
            payload_bytes=self.payload_bytes,
            src_address=self.src_address,
            dst_address=self.dst_address,
            src_flow=self.src_flow,
            rpc_id=self.rpc_id,
            lb_key=self.lb_key,
            seq=self.seq,
            timestamps=dict(self.timestamps),
        )

    def make_response(self, payload: Any, payload_bytes: int) -> "RpcPacket":
        """Build the response packet for this request (addresses swapped)."""
        if self.kind is not RpcKind.REQUEST:
            raise ValueError("responses can only be built from requests")
        return RpcPacket(
            kind=RpcKind.RESPONSE,
            connection_id=self.connection_id,
            method=self.method,
            payload=payload,
            payload_bytes=payload_bytes,
            src_address=self.dst_address,
            dst_address=self.src_address,
            src_flow=self.src_flow,
            rpc_id=self.rpc_id,  # responses carry the request's id
        )

    def __repr__(self) -> str:
        return (
            f"RpcPacket(#{self.rpc_id} {self.kind.value} {self.method} "
            f"conn={self.connection_id} {self.payload_bytes}B)"
        )
