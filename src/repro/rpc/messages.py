"""RPC wire format.

An :class:`RpcPacket` is the unit that moves through the whole system: the
client stub builds one, the NIC fetches it over the interconnect, the
transport sends it through the switch, and the server ring delivers it to a
dispatch thread. Request types are distinguished by the ``kind`` field that
"is a part of every RPC packet" (section 4.4), making the stack symmetric.

Timestamps are attached at named trace points so experiments can break
latency into CPU / interconnect / NIC / network components (used heavily by
the Fig 3 characterization).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

HEADER_BYTES = 16  # rpc id, connection id, flow, kind, method id, length


class RpcKind(enum.Enum):
    REQUEST = "request"
    RESPONSE = "response"
    CONTROL = "control"  # NIC-terminated transport packets (ACK/NACK)


_packet_ids = itertools.count()


@dataclass
class RpcPacket:
    """One RPC message (request or response)."""

    kind: RpcKind
    connection_id: int
    method: str
    payload: Any
    payload_bytes: int
    src_address: str = ""
    dst_address: str = ""
    src_flow: int = 0
    rpc_id: int = field(default_factory=lambda: next(_packet_ids))
    lb_key: Optional[int] = None  # key hash for object-level load balancing
    seq: Optional[int] = None  # per-connection sequence (reliable transport)
    timestamps: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ValueError(f"negative payload size {self.payload_bytes}")

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes

    def lines(self, line_bytes: int = 64) -> int:
        """Cache lines this packet occupies in host/NIC buffers."""
        return max(1, -(-self.wire_bytes // line_bytes))

    def stamp(self, point: str, now: int) -> None:
        """Record the first time the packet passes a named trace point."""
        self.timestamps.setdefault(point, now)

    def make_response(self, payload: Any, payload_bytes: int) -> "RpcPacket":
        """Build the response packet for this request (addresses swapped)."""
        if self.kind is not RpcKind.REQUEST:
            raise ValueError("responses can only be built from requests")
        return RpcPacket(
            kind=RpcKind.RESPONSE,
            connection_id=self.connection_id,
            method=self.method,
            payload=payload,
            payload_bytes=payload_bytes,
            src_address=self.dst_address,
            dst_address=self.src_address,
            src_flow=self.src_flow,
            rpc_id=self.rpc_id,  # responses carry the request's id
        )

    def __repr__(self) -> str:
        return (
            f"RpcPacket(#{self.rpc_id} {self.kind.value} {self.method} "
            f"conn={self.connection_id} {self.payload_bytes}B)"
        )
