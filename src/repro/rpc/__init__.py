"""The Dagger RPC framework.

Functional reproduction of the paper's software stack (section 4.2): an
IDL with code generator (Listing 1), client-side ``RpcClient`` /
``RpcClientPool`` / ``CompletionQueue``, server-side ``RpcThreadedServer``
with dispatch- and worker-thread models, and the wire message format the
NIC understands.
"""

from repro.rpc.errors import (
    RpcError,
    ConnectionError_,
    MethodNotFoundError,
    SerializationError,
    RpcDroppedError,
)
from repro.rpc.messages import RpcKind, RpcPacket
from repro.rpc.client import CompletionQueue, RpcCall, RpcClient, RpcClientPool
from repro.rpc.server import RpcServerThread, RpcThreadedServer, ThreadingModel

__all__ = [
    "RpcError",
    "ConnectionError_",
    "MethodNotFoundError",
    "SerializationError",
    "RpcDroppedError",
    "RpcKind",
    "RpcPacket",
    "RpcClient",
    "RpcClientPool",
    "RpcCall",
    "CompletionQueue",
    "RpcThreadedServer",
    "RpcServerThread",
    "ThreadingModel",
]
