"""One entry point per table/figure of the paper's evaluation.

Every function returns plain data (lists of dicts) with the paper's
reference numbers attached under ``paper_*`` keys, so benchmarks can print
paper-vs-measured tables and tests can assert on the reproduced *shape*.

Figure functions whose sub-runs are independent simulations take ``jobs``
and ``cache`` keyword arguments and evaluate their grid through
:func:`repro.harness.sweep.run_sweep`, so ``python -m repro run fig10
--jobs 4`` fans the cells across worker processes and repeated runs hit
the content-addressed result cache. The module-level ``_*_point`` helpers
exist so sweep points can name them by dotted path; they must return
JSON-able data (see the sweep module's determinism contract).

Experiment index (see DESIGN.md section 4):

- :func:`table1_resources` — Table 1 (NIC implementation specs)
- :func:`table3_rpc_platforms` — Table 3 (RTT + per-core Mrps across stacks)
- :func:`table4_flight` — Table 4 (Flight Registration threading models)
- :func:`fig3_breakdown` — Fig 3 (networking share of tier latency)
- :func:`fig4_rpc_sizes` — Fig 4 (RPC size distributions)
- :func:`fig5_interference` — Fig 5 (CPU contention networking vs logic)
- :func:`fig10_interfaces` — Fig 10 (CPU-NIC interface comparison)
- :func:`fig11_latency_load` / :func:`fig11_scalability` — Fig 11
- :func:`fig11_bottleneck` — Fig 11 (left) + first-saturating component
- :func:`fig14_isolation` — Fig 14 (noisy neighbour on a virtualized FPGA)
- :func:`fig12_kvs` — Fig 12 (memcached + MICA over Dagger)
- :func:`fig15_flight_curves` — Fig 15 (Flight latency/load curves)
- :func:`sec53_raw_access` — section 5.3's raw UPI-vs-PCIe read latency
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional

from repro.apps.kvs import run_kvs_workload
from repro.apps.microservices.flight import build_flight_app
from repro.apps.microservices.social_network import (
    DEFAULT_MIX as SOCIAL_MIX,
    PROFILED_TIERS,
    social_network_graph,
)
from repro.harness.sweep import SweepPoint, run_sweep
from repro.obs import attribute_bottleneck
from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.nic.config import NicHardConfig
from repro.hw.nic.resources import estimate_resources, max_nic_instances
from repro.workloads.kv_datasets import DATASETS, WORKLOAD_MIXES
from repro.workloads.rpc_sizes import (
    MEDIA_SIZES,
    SOCIAL_NETWORK_SIZES,
    request_size_cdf,
    sample_sizes,
)

#: Dotted paths for sweep points (resolvable inside worker processes).
_CLOSED_LOOP = "repro.harness.runner:run_closed_loop"
_OPEN_LOOP = "repro.harness.runner:run_open_loop"
_THREAD_SCALING = "repro.harness.runner:run_thread_scaling"
_RAW_READS = "repro.harness.runner:run_raw_reads"
_KVS_POINT = "repro.harness.experiments:_kvs_point"
_FLIGHT_POINT = "repro.harness.experiments:_flight_point"
_FIG3_POINT = "repro.harness.experiments:_fig3_point"
_FIG5_POINT = "repro.harness.experiments:_fig5_point"
_FIG14_POINT = "repro.harness.experiments:_fig14_point"


def _kvs_point(**kwargs) -> Dict:
    """Sweep wrapper: one Fig 12 KVS cell as a plain dict."""
    return asdict(run_kvs_workload(**kwargs))


def _flight_point(optimized: bool, load_krps: float, nreq: int,
                  measure_from_issue: bool = False) -> Dict:
    """Sweep wrapper: one Flight Registration run as a plain dict."""
    app = build_flight_app(optimized=optimized)
    result = app.run(load_krps, nreq=nreq,
                     measure_from_issue=measure_from_issue)
    return {
        "throughput_krps": result.throughput_krps,
        "p50_us": result.p50_us,
        "p90_us": result.p90_us,
        "p99_us": result.p99_us,
        "drop_rate": result.drop_rate,
    }


def _fig3_point(load_krps: float, nreq: int) -> List[Dict]:
    """Sweep wrapper: Fig 3 per-tier rows for one offered load."""
    graph = social_network_graph("linux-tcp")
    result = graph.run_load("nginx", SOCIAL_MIX, load_krps=load_krps,
                            nreq=nreq)
    rows = []
    for label, tier in PROFILED_TIERS.items():
        breakdown = result.tracer.breakdown(tier)
        rows.append({
            "load_krps": load_krps,
            "tier": f"{label}:{tier}",
            "p50_us": breakdown.p50_us,
            "p99_us": breakdown.p99_us,
            "app_fraction": breakdown.app_fraction,
            "rpc_fraction": breakdown.rpc_fraction,
            "transport_fraction": breakdown.transport_fraction,
            "network_fraction": breakdown.network_fraction,
        })
    e2e = result.tracer.e2e_breakdown()
    rows.append({
        "load_krps": load_krps,
        "tier": "e2e",
        "p50_us": e2e.p50_us,
        "p99_us": e2e.p99_us,
        "app_fraction": None,
        "rpc_fraction": None,
        "transport_fraction": None,
        "network_fraction": None,
    })
    return rows


def _fig5_point(load_krps: float, shared: bool, nreq: int) -> Dict:
    """Sweep wrapper: one Fig 5 (load, core-placement) cell."""
    irq_cores = [0, 1, 2, 3]
    tiers = (
        "nginx", "compose_post", "media", "user", "unique_id",
        "text", "user_mention", "url_shorten", "post_storage",
        "home_timeline", "user_timeline",
    )
    if shared:
        pins = {tier: irq_cores for tier in tiers}
    else:
        pins = {tier: [4, 5, 6, 7, 8, 9, 10, 11] for tier in tiers}
    graph = social_network_graph("linux-tcp", cores=pins)
    irq_threads = [graph.machine.thread(core, name=f"irq{core}")
                   for core in irq_cores]
    for microservice in graph.tiers.values():
        microservice.stack.irq_threads = irq_threads
    result = graph.run_load("nginx", SOCIAL_MIX, load_krps=load_krps,
                            nreq=nreq)
    return {
        "load_krps": load_krps,
        "shared_cores": shared,
        "p50_us": result.p50_us,
        "p99_us": result.p99_us,
        "drop_rate": result.drop_rate,
    }


# --------------------------------------------------------------------- T1


def table1_resources() -> List[Dict]:
    """Table 1: FPGA resource usage of the reference NIC configuration."""
    reference = NicHardConfig(num_flows=64, connection_cache_entries=65_536)
    footprint = estimate_resources(reference)
    max_flows_config = NicHardConfig(
        num_flows=512, connection_cache_entries=65_536
    )
    big = estimate_resources(max_flows_config)
    return [
        {
            "parameter": "FPGA resource usage, LUT (K)",
            "paper": 87.1,
            "measured": footprint.luts / 1000.0,
            "utilization": footprint.lut_utilization,
            "paper_utilization": 0.20,
        },
        {
            "parameter": "FPGA resource usage, BRAM blocks (M20K)",
            "paper": 555,
            "measured": footprint.m20k_blocks,
            "utilization": footprint.bram_utilization,
            "paper_utilization": 0.20,
        },
        {
            "parameter": "FPGA resource usage, registers (K)",
            "paper": 120.8,
            "measured": footprint.registers / 1000.0,
            "utilization": footprint.register_utilization,
            "paper_utilization": None,
        },
        {
            "parameter": "Max number of NIC flows (<=50% util)",
            "paper": 512,
            "measured": 512 if big.fits(0.5) else 0,
            "utilization": big.lut_utilization,
            "paper_utilization": 0.50,
        },
        {
            "parameter": "NIC instances fitting one FPGA (default config)",
            "paper": 8,  # the Fig 14 deployment instantiates 8
            "measured": min(8, max_nic_instances(NicHardConfig())),
            "utilization": None,
            "paper_utilization": None,
        },
    ]


# --------------------------------------------------------------------- T3

#: Table 3 rows: (stack, rpc bytes, paper RTT us, paper Mrps).
TABLE3_PAPER = {
    "ix": {"bytes": 64, "rtt_us": 11.4, "mrps": 1.5},
    "fasst-rdma": {"bytes": 48, "rtt_us": 2.8, "mrps": 4.8},
    "erpc": {"bytes": 32, "rtt_us": 2.3, "mrps": 4.96},
    "netdimm": {"bytes": 64, "rtt_us": 2.2, "mrps": None},
    "dagger": {"bytes": 64, "rtt_us": 2.1, "mrps": 12.4},
}


def table3_rpc_platforms(nreq: int = 12000, jobs: int = 1,
                         cache: bool = True) -> List[Dict]:
    """Table 3: median RTT and single-core throughput per platform."""
    points = []
    layout = []
    for stack, paper in TABLE3_PAPER.items():
        # Table 3's object sizes are wire sizes; the 16 B RPC header is
        # part of them (a "64 B RPC" fits one cache line).
        payload = max(16, paper["bytes"] - 16)
        # Unloaded RTT: a single outstanding request over a 0.3 us TOR.
        points.append(SweepPoint(_CLOSED_LOOP, dict(
            stack_name=stack, batch_size=1, window=1, nreq=min(nreq, 3000),
            rpc_bytes=payload, loopback=False,
        )))
        has_throughput = paper["mrps"] is not None
        if has_throughput:
            points.append(SweepPoint(_CLOSED_LOOP, dict(
                stack_name=stack,
                batch_size=4 if stack == "dagger" else 1,
                auto_batch=(stack == "dagger"),
                window=64, nreq=nreq, rpc_bytes=payload,
            )))
        layout.append((stack, paper, has_throughput))
    results = iter(run_sweep(points, jobs=jobs, cache=cache))
    rows = []
    for stack, paper, has_throughput in layout:
        latency = next(results)
        throughput = next(results).throughput_mrps if has_throughput else None
        rows.append({
            "stack": stack,
            "rpc_bytes": paper["bytes"],
            "paper_rtt_us": paper["rtt_us"],
            "rtt_us": latency.p50_us,
            "paper_mrps": paper["mrps"],
            "mrps": throughput,
        })
    return rows


# --------------------------------------------------------------------- F10

#: Fig 10 bars: (interface, batch, paper Mrps, paper p50 us, paper p99 us).
FIG10_PAPER = [
    ("pcie-mmio", 1, 4.2, 3.8, 5.2),
    ("pcie-doorbell", 1, 4.3, 4.4, 5.1),
    ("pcie-doorbell", 3, 7.9, 4.4, 5.8),
    ("pcie-doorbell", 7, 9.9, 4.6, 7.0),
    ("pcie-doorbell", 11, 10.8, 5.5, 9.1),
    ("upi", 1, 8.1, 1.8, 2.0),
    ("upi", 4, 12.4, 2.4, 3.1),
]


def fig10_interfaces(nreq: int = 12000,
                     latency_load_fraction: float = 0.75,
                     jobs: int = 1, cache: bool = True) -> List[Dict]:
    """Fig 10: single-core throughput + latency per CPU-NIC interface.

    Two sweep phases: the open-loop load of each latency run is derived
    from the measured saturated throughput of the same configuration, so
    the saturation sweep must complete first.
    """
    saturated = run_sweep(
        [SweepPoint(_CLOSED_LOOP, dict(
            stack_name="dagger", interface=interface, batch_size=batch,
            window=64, nreq=nreq,
        )) for interface, batch, *_ in FIG10_PAPER],
        jobs=jobs, cache=cache,
    )
    loaded = run_sweep(
        [SweepPoint(_OPEN_LOOP, dict(
            load_mrps=max(0.5, result.throughput_mrps
                          * latency_load_fraction),
            stack_name="dagger", interface=interface, batch_size=batch,
            nreq=nreq,
        )) for (interface, batch, *_), result in zip(FIG10_PAPER, saturated)],
        jobs=jobs, cache=cache,
    )
    rows = []
    for (interface, batch, paper_mrps, paper_p50, paper_p99), sat, load \
            in zip(FIG10_PAPER, saturated, loaded):
        rows.append({
            "interface": interface,
            "batch": batch,
            "paper_mrps": paper_mrps,
            "mrps": sat.throughput_mrps,
            "paper_p50_us": paper_p50,
            "p50_us": load.p50_us,
            "paper_p99_us": paper_p99,
            "p99_us": load.p99_us,
        })
    return rows


# --------------------------------------------------------------------- F11


def fig11_latency_load(loads_mrps: Optional[List[float]] = None,
                       nreq: int = 10000, jobs: int = 1,
                       cache: bool = True) -> List[Dict]:
    """Fig 11 (left): latency vs load for B=1, B=2, B=4 and auto."""
    configs = [("B=1", 1, False), ("B=2", 2, False), ("B=4", 4, False),
               ("auto", 4, True)]
    grid = []
    for label, batch, auto in configs:
        # Batch-1 saturates ~8.1 Mrps; larger batches go to ~12.4.
        loads = loads_mrps or ([1, 2, 4, 6, 7] if batch == 1 and not auto
                               else [1, 2, 4, 6, 8, 10, 12])
        for load in loads:
            grid.append((label, batch, auto, load))
    results = run_sweep(
        [SweepPoint(_OPEN_LOOP, dict(
            load_mrps=load, batch_size=batch, auto_batch=auto, nreq=nreq,
        )) for _, batch, auto, load in grid],
        jobs=jobs, cache=cache,
    )
    return [{
        "config": label,
        "offered_mrps": load,
        "p50_us": result.p50_us,
        "p99_us": result.p99_us,
        "throughput_mrps": result.throughput_mrps,
    } for (label, _, _, load), result in zip(grid, results)]


def fig11_bottleneck(loads_mrps: Optional[List[float]] = None,
                     batch_size: int = 1, nreq: int = 6000, jobs: int = 1,
                     cache: bool = True) -> Dict:
    """Fig 11 (left) with bottleneck attribution (ISSUE 3 tentpole).

    Re-runs the latency/load sweep with time-series telemetry enabled, so
    every load point carries the exact per-component busy fractions, then
    names the first-saturating component at the latency knee. This turns
    the paper's section 5.4 narrative ("B=1 is paced by the fetch FSM;
    larger batches move the bound to the flow scheduler / UPI") into a
    measured attribution instead of prose.
    """
    loads = loads_mrps or ([1, 2, 4, 6, 7, 7.8] if batch_size == 1
                           else [1, 2, 4, 6, 8, 10, 12])
    results = run_sweep(
        [SweepPoint(_OPEN_LOOP, dict(
            load_mrps=load, batch_size=batch_size, nreq=nreq,
            telemetry=True,
        )) for load in loads],
        jobs=jobs, cache=cache,
    )
    points = [{
        "offered_mrps": load,
        "p50_us": result.p50_us,
        "p99_us": result.p99_us,
        "throughput_mrps": result.throughput_mrps,
        "utilization": result.utilization,
    } for load, result in zip(loads, results)]
    report = attribute_bottleneck(points)
    return {"batch_size": batch_size, "points": points,
            "report": report.as_dict()}


def _fig14_point(noisy_mrps: float, steady_mrps: float, tenants: int,
                 nreq_total: int, noisy: str = "t0") -> Dict:
    """Sweep wrapper: one Fig 14 noisy-neighbour cell as a plain dict."""
    from repro.harness.runner import run_multi_tenant

    result = run_multi_tenant(
        noisy_mrps=noisy_mrps, steady_mrps=steady_mrps, tenants=tenants,
        noisy=noisy, nreq_total=nreq_total, telemetry=True,
    )
    data = result.to_dict()
    # The ring-buffered samples are bulky and attribution only needs the
    # summaries; drop them from the cached sweep payload.
    data["timeline"] = None
    return data


#: Fig 14 anchor: the paper reports tenant medians "barely distinguishable"
#: as neighbours are added — steady tenants must not follow the noisy one
#: into saturation.
FIG14_PAPER = {"max_steady_p99_drift": 0.10}


def fig14_isolation(noisy_loads_mrps: Optional[List[float]] = None,
                    steady_mrps: float = 0.5, tenants: int = 3,
                    nreq_total: int = 6000, jobs: int = 1,
                    cache: bool = True) -> Dict:
    """Fig 14: tenant isolation on a virtualized FPGA (ISSUE 4 tentpole).

    Ramps one tenant ("t0") to saturation while the other tenants hold a
    steady trickle, with per-tenant telemetry enabled throughout. The
    returned report names the *tenant* that owns the saturating component
    (``nic.t0.fetch``-class, per section 5.4's batch-1 bound), and the
    ``isolation`` rows quantify how far each steady tenant's p99 moved
    between the lightest and heaviest noisy load — the paper's claim is
    that it barely moves at all.
    """
    loads = noisy_loads_mrps or [1, 2, 4, 6, 7, 7.8]
    noisy = "t0"
    results = run_sweep(
        [SweepPoint(_FIG14_POINT, dict(
            noisy_mrps=load, steady_mrps=steady_mrps, tenants=tenants,
            nreq_total=nreq_total, noisy=noisy,
        )) for load in loads],
        jobs=jobs, cache=cache,
    )
    points = []
    for load, result in zip(loads, results):
        noisy_stats = result["per_tenant"][noisy]
        points.append({
            "offered_mrps": load,
            "p50_us": noisy_stats["p50_us"],
            "p99_us": noisy_stats["p99_us"],
            "throughput_mrps": noisy_stats["throughput_mrps"],
            "utilization": result["utilization"],
            "tenants": result["tenant_map"],
            "per_tenant": {
                tenant: {"p99_us": stats["p99_us"],
                         "throughput_mrps": stats["throughput_mrps"],
                         "drops": stats["drops"]}
                for tenant, stats in result["per_tenant"].items()
            },
        })
    report = attribute_bottleneck(points)
    steady = [t for t in results[0]["tenants"] if t != noisy]
    isolation = []
    for tenant in steady:
        p99_low = points[0]["per_tenant"][tenant]["p99_us"]
        p99_high = points[-1]["per_tenant"][tenant]["p99_us"]
        drift = (p99_high - p99_low) / p99_low if p99_low > 0 else 0.0
        isolation.append({
            "tenant": tenant,
            "p99_us_at_min_noise": p99_low,
            "p99_us_at_max_noise": p99_high,
            "p99_drift": drift,
            "isolated": abs(drift) <= FIG14_PAPER["max_steady_p99_drift"],
        })
    return {
        "noisy": noisy,
        "steady_mrps": steady_mrps,
        "points": points,
        "report": report.as_dict(),
        "isolation": isolation,
        "paper": FIG14_PAPER,
    }


_CHAOS_POINT = "repro.chaos.rig:run_chaos_point"

#: §4.5 leaves reliable transport as future work, so there are no published
#: fault numbers to anchor on; the gate asserts recovery *invariants*:
#: nothing lost beyond this fraction, and zero duplicate host executions.
CHAOS_PAPER = {"max_lost_fraction": 0.01}


def figx_chaos(fault_classes: Optional[List[str]] = None,
               load_mrps: float = 1.0, nreq: int = 2000, seed: int = 1,
               hedge_ns: Optional[int] = None,
               jobs: int = 1, cache: bool = True) -> Dict:
    """Chaos: tail latency + recovery accounting per fault class (ISSUE 6).

    Runs one seeded open-loop echo workload per fault class (see
    :data:`repro.chaos.rig.FAULT_CLASSES`) over the reliable transport +
    credit flow control, and reports p50/p99/p99.9 alongside the recovery
    counters. ``recovered`` is the per-class invariant: bounded loss and
    zero duplicate host deliveries.
    """
    from repro.chaos.rig import FAULT_CLASSES

    classes = list(fault_classes or FAULT_CLASSES)
    results = run_sweep(
        [SweepPoint(_CHAOS_POINT, dict(
            fault_class=fault_class, load_mrps=load_mrps, nreq=nreq,
            seed=seed, hedge_ns=hedge_ns,
        )) for fault_class in classes],
        jobs=jobs, cache=cache,
    )
    baseline = next(
        (r for c, r in zip(classes, results) if c == "none"), results[0]
    )
    max_lost = nreq * CHAOS_PAPER["max_lost_fraction"]
    points = []
    for fault_class, result in zip(classes, results):
        transport = result["transport"]
        flow = result["flow_control"]

        def both(section, field):
            return section["client"][field] + section["server"][field]

        points.append({
            "fault_class": fault_class,
            "completed": result["completed"],
            "lost_rpcs": result["lost_rpcs"],
            "p50_us": result["p50_us"],
            "p99_us": result["p99_us"],
            "p999_us": result["p999_us"],
            "p99_vs_fault_free": (
                round(result["p99_us"] / baseline["p99_us"], 3)
                if baseline["p99_us"] else 0.0
            ),
            "duplicate_host_deliveries":
                result["duplicate_host_deliveries"],
            "retransmissions": both(transport, "retransmissions"),
            "timeout_retransmissions":
                both(transport, "timeout_retransmissions"),
            "duplicates_dropped": both(transport, "duplicates_dropped"),
            "lost_unrecoverable": both(transport, "lost_unrecoverable"),
            "credit_repairs": both(flow, "credit_repairs"),
            "hedges_sent": result["hedges_sent"],
            "faults_injected": result["chaos"],
            "recovered": (result["lost_rpcs"] <= max_lost
                          and result["duplicate_host_deliveries"] == 0),
        })
    return {
        "points": points,
        "seed": seed,
        "nreq": nreq,
        "load_mrps": load_mrps,
        "paper": CHAOS_PAPER,
    }


#: Fig 11 (right) anchors: ~42 Mrps end-to-end plateau, ~80 Mrps raw reads.
FIG11_PAPER = {"e2e_plateau_mrps": 42.0, "raw_plateau_mrps": 80.0}


def fig11_scalability(threads: Optional[List[int]] = None,
                      nreq_per_thread: int = 5000, jobs: int = 1,
                      cache: bool = True) -> List[Dict]:
    """Fig 11 (right): thread scaling, end-to-end vs raw UPI reads."""
    counts = threads or [1, 2, 3, 4, 6, 8]
    points = []
    for count in counts:
        points.append(SweepPoint(_THREAD_SCALING, dict(
            num_threads=count, nreq_per_thread=nreq_per_thread,
        )))
        points.append(SweepPoint(_RAW_READS, dict(
            num_threads=count, nreads_per_thread=nreq_per_thread,
        )))
    results = run_sweep(points, jobs=jobs, cache=cache)
    return [{
        "threads": count,
        "e2e_mrps": results[2 * i].throughput_mrps,
        "raw_mrps": results[2 * i + 1],
    } for i, count in enumerate(counts)]


# --------------------------------------------------------------------- F12

#: Fig 12 paper anchors: latency under the write-intensive mix, peak
#: single-core throughput per mix.
FIG12_PAPER = {
    ("memcached", "tiny"): {"p50_us": 2.8, "p99_us": 6.9,
                            "thr_50": 0.6, "thr_95": 1.5, "window": 2},
    ("memcached", "small"): {"p50_us": 3.2, "p99_us": 7.8,
                             "thr_50": 0.6, "thr_95": 1.5, "window": 2},
    ("mica", "tiny"): {"p50_us": 3.4, "p99_us": 5.4,
                       "thr_50": 4.7, "thr_95": 5.2, "window": 16},
    ("mica", "small"): {"p50_us": 3.5, "p99_us": 5.7,
                        "thr_50": 4.3, "thr_95": 5.0, "window": 16},
}


def fig12_kvs(nreq: int = 8000, jobs: int = 1,
              cache: bool = True) -> List[Dict]:
    """Fig 12: memcached and MICA over Dagger (latency + throughput)."""
    points = []
    for (system, dataset_name), paper in FIG12_PAPER.items():
        dataset = DATASETS[dataset_name]
        common = dict(
            system=system,
            key_bytes=dataset.key_bytes,
            value_bytes=dataset.value_bytes,
            num_keys=dataset.num_keys(system),
            nreq=nreq,
        )
        points.append(SweepPoint(_KVS_POINT, dict(
            get_fraction=WORKLOAD_MIXES["write-intensive"],
            closed_loop_window=paper["window"], **common,
        )))
        points.append(SweepPoint(_KVS_POINT, dict(
            get_fraction=WORKLOAD_MIXES["write-intensive"],
            closed_loop_window=32, **common,
        )))
        points.append(SweepPoint(_KVS_POINT, dict(
            get_fraction=WORKLOAD_MIXES["read-intensive"],
            closed_loop_window=32, **common,
        )))
    results = iter(run_sweep(points, jobs=jobs, cache=cache))
    rows = []
    for (system, dataset_name), paper in FIG12_PAPER.items():
        latency, thr50, thr95 = next(results), next(results), next(results)
        rows.append({
            "system": system,
            "dataset": dataset_name,
            "paper_p50_us": paper["p50_us"], "p50_us": latency["p50_us"],
            "paper_p99_us": paper["p99_us"], "p99_us": latency["p99_us"],
            "paper_thr_50get": paper["thr_50"],
            "thr_50get": thr50["throughput_mrps"],
            "paper_thr_95get": paper["thr_95"],
            "thr_95get": thr95["throughput_mrps"],
            "drop_rate": max(latency["drop_rate"], thr50["drop_rate"],
                             thr95["drop_rate"]),
        })
    return rows


def sec56_mica_high_skew(nreq: int = 8000, jobs: int = 1,
                         cache: bool = True) -> Dict:
    """Section 5.6: MICA under zipf 0.9999 (paper: 10.2/9.8 Mrps with two
    partitions' worth of locality; single-core here, so the anchor is the
    ratio to the 0.99-skew run)."""
    base, hot = run_sweep(
        [SweepPoint(_KVS_POINT, dict(system="mica", skew=0.99, nreq=nreq,
                                     closed_loop_window=32)),
         SweepPoint(_KVS_POINT, dict(system="mica", skew=0.9999, nreq=nreq,
                                     closed_loop_window=32))],
        jobs=jobs, cache=cache,
    )
    return {
        "thr_skew_099": base["throughput_mrps"],
        "thr_skew_09999": hot["throughput_mrps"],
        "hit_rate_099": base["hit_rate"],
        "hit_rate_09999": hot["hit_rate"],
    }


# --------------------------------------------------------------------- F3

#: Paper anchors: networking is ~40% of tier latency on average and up to
#: ~80% for User/UniqueID; it grows with load.
FIG3_PAPER = {"mean_network_fraction": 0.40, "max_network_fraction": 0.80}


def fig3_breakdown(loads_krps: Optional[List[float]] = None,
                   nreq: int = 4000, jobs: int = 1,
                   cache: bool = True) -> List[Dict]:
    """Fig 3: networking share of per-tier median/tail latency vs load."""
    loads = loads_krps or [8, 16, 21]
    per_load = run_sweep(
        [SweepPoint(_FIG3_POINT, dict(load_krps=load, nreq=nreq))
         for load in loads],
        jobs=jobs, cache=cache,
    )
    return [row for rows in per_load for row in rows]


# --------------------------------------------------------------------- F4

#: Paper anchors: 75% of requests < 512 B; >90% of responses < 64 B;
#: Text's median request ~580 B; Media/User/UniqueID never exceed 64 B.
FIG4_PAPER = {
    "requests_under_512": 0.75,
    "responses_under_64": 0.90,
    "text_median_request": 580,
}


def fig4_rpc_sizes(samples_per_tier: int = 2000) -> Dict:
    """Fig 4: RPC size CDF + per-tier medians for both applications."""
    social_req, social_resp = sample_sizes(
        SOCIAL_NETWORK_SIZES, samples_per_tier
    )
    media_req, media_resp = sample_sizes(MEDIA_SIZES, samples_per_tier)
    per_tier_medians = {
        tier: sizes.median_request()
        for tier, sizes in SOCIAL_NETWORK_SIZES.items()
    }
    return {
        "social_requests_under_512": request_size_cdf(social_req, 512),
        "social_responses_under_64": request_size_cdf(social_resp, 64),
        "media_requests_under_512": request_size_cdf(media_req, 512),
        "media_responses_under_64": request_size_cdf(media_resp, 64),
        "per_tier_median_request": per_tier_medians,
        "paper": FIG4_PAPER,
    }


# --------------------------------------------------------------------- F5


def fig5_interference(loads_krps: Optional[List[float]] = None,
                      nreq: int = 3000, jobs: int = 1,
                      cache: bool = True) -> List[Dict]:
    """Fig 5: end-to-end latency, networking on separate vs shared cores.

    Network interrupt routines are bound to 4 cores (N=4 as in the paper);
    the application tiers run either on the other cores (isolated) or on
    the same 4 cores (shared). See :func:`_fig5_point` for one cell.
    """
    grid = [(load, shared)
            for load in (loads_krps or [5, 10, 15])
            for shared in (False, True)]
    return run_sweep(
        [SweepPoint(_FIG5_POINT, dict(load_krps=load, shared=shared,
                                      nreq=nreq))
         for load, shared in grid],
        jobs=jobs, cache=cache,
    )


# ---------------------------------------------------------------- T4, F15

#: Table 4 anchors.
TABLE4_PAPER = {
    "simple": {"max_krps": 2.7, "p50_us": 13.3, "p90_us": 20.2,
               "p99_us": 23.8},
    "optimized": {"max_krps": 48.0, "p50_us": 23.4, "p90_us": 27.3,
                  "p99_us": 33.6},
}


def table4_flight(nreq: int = 4000, jobs: int = 1,
                  cache: bool = True) -> List[Dict]:
    """Table 4: highest sustainable load + lowest latency per model."""
    models = (
        ("simple", 0.025, [2.4, 2.8, 3.2]),
        ("optimized", 5.0, [30, 36, 40]),
    )
    points = []
    for model, latency_load, capacity_loads in models:
        optimized = model == "optimized"
        points.append(SweepPoint(_FLIGHT_POINT, dict(
            optimized=optimized, load_krps=latency_load,
            nreq=min(nreq, 2000),
        )))
        for load in capacity_loads:
            points.append(SweepPoint(_FLIGHT_POINT, dict(
                optimized=optimized, load_krps=load, nreq=nreq,
                measure_from_issue=True,
            )))
    results = iter(run_sweep(points, jobs=jobs, cache=cache))
    rows = []
    for model, latency_load, capacity_loads in models:
        latency = next(results)
        max_krps = 0.0
        for _ in capacity_loads:
            result = next(results)
            if result["drop_rate"] <= 0.01:
                max_krps = max(max_krps, result["throughput_krps"])
        paper = TABLE4_PAPER[model]
        rows.append({
            "model": model,
            "paper_max_krps": paper["max_krps"], "max_krps": max_krps,
            "paper_p50_us": paper["p50_us"], "p50_us": latency["p50_us"],
            "paper_p90_us": paper["p90_us"], "p90_us": latency["p90_us"],
            "paper_p99_us": paper["p99_us"], "p99_us": latency["p99_us"],
        })
    return rows


def fig15_flight_curves(loads_krps: Optional[List[float]] = None,
                        nreq: int = 4000, jobs: int = 1,
                        cache: bool = True) -> List[Dict]:
    """Fig 15: latency/load curves, Optimized threading model."""
    loads = loads_krps or [15, 20, 25, 30, 36, 42]
    results = run_sweep(
        [SweepPoint(_FLIGHT_POINT, dict(
            optimized=True, load_krps=load, nreq=nreq,
            measure_from_issue=True,
        )) for load in loads],
        jobs=jobs, cache=cache,
    )
    return [{"load_krps": load, **result}
            for load, result in zip(loads, results)]


# --------------------------------------------------------------------- §5.3


def sec53_raw_access() -> Dict:
    """Section 5.3: raw one-way shared-memory access, UPI vs PCIe DMA.

    Paper: ~400 ns over UPI, ~450 ns over PCIe.
    """
    from repro.hw.interconnect.ccip import make_interface
    from repro.hw.platform import Machine
    from repro.sim import Simulator

    results = {}
    for kind, key in (("upi", "upi_ns"), ("pcie-doorbell", "pcie_ns")):
        sim = Simulator()
        machine = Machine(sim, calibration=DEFAULT_CALIBRATION)
        interface = make_interface(kind, sim, DEFAULT_CALIBRATION,
                                   machine.fpga)

        def once():
            start = sim.now
            yield from interface.raw_read()
            return sim.now - start

        results[key] = sim.run_until_done(sim.spawn(once()))
    results["paper_upi_ns"] = 400
    results["paper_pcie_ns"] = 450
    return results


# ------------------------------------------------------------- sharded mesh


def mesh_scaling(shard_counts: Optional[List[int]] = None, hosts: int = 4,
                 nreq_per_host: int = 2000, jobs: int = 1,
                 cache: bool = True,
                 window_mode: str = "adaptive") -> List[Dict]:
    """Sharded-engine parity over the multi-host echo mesh (ISSUE 7).

    Runs the full-mesh closed-loop echo at each shard count through
    ``run_sweep`` and reports the *simulated* metrics plus a ``parity``
    flag: every row's result signature (everything except the shard count
    and window accounting) must be byte-identical to the serial row's.
    ``window_mode`` selects the horizon policy (``"adaptive"`` stretches
    conservative windows past hosts' declared egress bounds, ``"fixed"``
    is the classic one-lookahead grant); both must produce the same
    signature. Wall-clock scaling is deliberately not measured here — it
    belongs to ``benchmarks/perf/bench_kernel.py --scenario mesh``,
    outside the deterministic cache.
    """
    from repro.harness.mesh import mesh_signature

    counts = list(shard_counts or [1, 2, 4])
    if 1 not in counts:
        counts = [1] + counts
    results = run_sweep(
        [SweepPoint("repro.harness.mesh:run_echo_mesh", dict(
            hosts=hosts, shards=shards, nreq_per_host=nreq_per_host,
            window_mode=window_mode,
        )) for shards in counts],
        jobs=jobs, cache=cache,
    )
    serial = mesh_signature(results[counts.index(1)])
    return [{
        "shards": shards,
        "window_mode": result["window_mode"],
        "throughput_mrps": result["throughput_mrps"],
        "p50_us": result["p50_us"],
        "p99_us": result["p99_us"],
        "count": result["count"],
        "windows": result["windows"],
        "stretched_windows": result["stretched_windows"],
        "skipped_shard_rounds": result["skipped_shard_rounds"],
        "events_total": result["events_total"],
        "parity": mesh_signature(result) == serial,
    } for shards, result in zip(counts, results)]


# ------------------------------------------------------- rack-scale cluster


_CLUSTER_POINT = "repro.harness.cluster:run_cluster_point"


def cluster_slo(loads_krps: Optional[List[float]] = None,
                app: str = "social_network", machines: int = 8,
                policy: str = "p2c", modulation: str = "bursty",
                nreq: int = 2000, deadline_us: float = 500.0,
                seed: int = 11, mode: str = "exact", jobs: int = 1,
                cache: bool = True) -> List[Dict]:
    """End-to-end SLO attainment vs offered load at rack scale (ISSUE 9).

    Each point deploys the app as replica pools across ``machines``
    machines behind the ToR (``repro.harness.cluster``), drives it with
    Zipf-skewed session traffic at the given peak rate under the chosen
    arrival modulation, and reports the fraction of requests completing
    within ``deadline_us`` — measured from each request's *intended*
    arrival time, so entry-queueing counts against the SLO. The
    autoscaler is on: the per-tier replica counts in the result show
    which tier it had to grow.

    Deliberately serial-only (no ``shards``): replica selection is a
    dynamic per-call decision the conservative-window sharded engine
    cannot partition (see the ``repro.harness.cluster`` docstring).
    """
    loads = list(loads_krps or [30.0, 50.0, 70.0, 90.0])
    return run_sweep(
        [SweepPoint(_CLUSTER_POINT, dict(
            app=app, machines=machines, load_krps=load, nreq=nreq,
            policy=policy, modulation=modulation, deadline_us=deadline_us,
            seed=seed, mode=mode,
        )) for load in loads],
        jobs=jobs, cache=cache,
    )
