"""Multi-host echo mesh over the sharded engine (one Simulator per host).

The single-machine :class:`~repro.harness.runner.EchoRig` puts client and
server NICs on one FPGA behind one simulator. This rig scales out instead:
``hosts`` machines, each with its own client NIC and server NIC behind a
:class:`~repro.hw.switch.ShardBoundary`, every host running a closed-loop
echo workload against *every other* host (a full mesh — the densest
cross-host traffic pattern, so it is the honest scaling benchmark for
:mod:`repro.sim.sharded`).

Cross-host connections cannot go through :func:`repro.stacks.connect` (the
two stacks live in different simulators, possibly different processes), so
each side registers the connection independently with an id that is a pure
function of the (client_host, server_host) pair — both sides compute the
same id without ever sharing an object.

``run_echo_mesh(shards=N)`` returns a :class:`MeshResult` whose fields —
including merged latency percentiles (via :meth:`SummaryStats.merge` over
the per-host sample runs), per-host breakdowns, window count, and per-host
event counts — are bit-identical for every shard count. ``signature()``
drops only the ``shards`` field itself; its canonical JSON is what the
parity gates (tests, ``bench_sharded.py``, CI) compare byte-for-byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Union

from repro.harness.runner import SERVER_CORE_BASE, _echo_handler
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.platform import Machine, MachineConfig
from repro.hw.switch import ShardBoundary
from repro.rpc import RpcClient, RpcThreadedServer, ThreadingModel
from repro.sim import LatencyRecorder, Simulator, SummaryStats
from repro.sim.sharded import EGRESS_NEVER, canonical_json, run_sharded
from repro.sim.stats import _check_mode
from repro.stacks import DaggerStack

#: Base for deterministic cross-host connection ids: far above anything
#: next_connection_id() hands out in-process, so explicit mesh ids can
#: never collide with locally allocated ones.
_MESH_CONNECTION_BASE = 1_000_000


def _mesh_connection_id(client_host: int, server_host: int, hosts: int) -> int:
    """Connection id for the (client_host -> server_host) pair.

    A pure function of the pair so both endpoints — built in different
    processes with no shared state — register the same id.
    """
    return _MESH_CONNECTION_BASE + client_host * hosts + server_host


def _client_address(host_id: int) -> str:
    return f"h{host_id}-c"


def _server_address(host_id: int) -> str:
    return f"h{host_id}-s"


def _flow_index(host_id: int, remote: int) -> int:
    """Dense [0, hosts-2] flow index for a remote host (skips ``host_id``)."""
    return remote - 1 if remote > host_id else remote


class MeshHost:
    """One host of the echo mesh: machine, client+server NICs, workload.

    Satisfies the :func:`repro.sim.sharded.run_sharded` host protocol:
    exposes ``sim``, ``boundary``, and ``finish()`` returning plain data.
    The closed-loop issue processes are spawned at construction, so the
    engine's first window finds the kick-off events already pending.
    """

    def __init__(
        self,
        host_id: int,
        hosts: int,
        nreq_per_host: int,
        window: int = 64,
        batch_size: int = 4,
        rpc_bytes: int = 48,
        service_ns: int = 0,
        warmup_ns: int = 20_000,
        tor_delay_ns: Optional[int] = None,
        seed: int = 1,
        mode: str = "exact",
        calibration: Calibration = DEFAULT_CALIBRATION,
    ):
        if hosts < 2:
            raise ValueError(f"a mesh needs at least 2 hosts, got {hosts}")
        if not 0 <= host_id < hosts:
            raise ValueError(f"host_id {host_id} out of range for {hosts} hosts")
        if nreq_per_host < 1:
            raise ValueError(f"nreq_per_host must be >= 1, got {nreq_per_host}")
        peers = [h for h in range(hosts) if h != host_id]
        if len(peers) > SERVER_CORE_BASE * 2:
            raise ValueError(
                f"{len(peers)} peer connections exceed the per-host thread "
                f"budget ({SERVER_CORE_BASE * 2})"
            )
        self.host_id = host_id
        self.hosts = hosts
        self.window = window
        self.rpc_bytes = rpc_bytes
        self.sim = Simulator()
        self.machine = Machine(self.sim, MachineConfig(), calibration,
                               seed=(seed << 4) + host_id)
        self.boundary = ShardBoundary(self.sim, calibration, host_id=host_id,
                                      delay_ns=tor_delay_ns)

        hard = NicHardConfig(num_flows=len(peers))
        self.client_stack = DaggerStack(
            self.machine, self.boundary, _client_address(host_id),
            hard=hard, soft=NicSoftConfig(batch_size=batch_size),
        )
        self.server_stack = DaggerStack(
            self.machine, self.boundary, _server_address(host_id),
            hard=hard, soft=NicSoftConfig(batch_size=batch_size),
        )

        self.server = RpcThreadedServer(self.sim, calibration,
                                        name=f"echo-h{host_id}")
        self.server.register_handler(
            "echo", _echo_handler(service_ns, response_bytes=rpc_bytes)
        )
        client_threads = self.machine.threads(len(peers), start_core=0)
        server_threads = self.machine.threads(len(peers),
                                              start_core=SERVER_CORE_BASE)
        self.clients: List[RpcClient] = []
        for remote in peers:
            flow = _flow_index(host_id, remote)
            # Server side of the connection *from* `remote`'s client.
            self.server.add_server_thread(
                self.server_stack.port(flow), server_threads[flow],
                model=ThreadingModel.DISPATCH,
            )
            self.server_stack.register_connection(
                _mesh_connection_id(remote, host_id, hosts), flow,
                _client_address(remote),
            )
            # Client side of our connection *to* `remote`'s server.
            outbound = _mesh_connection_id(host_id, remote, hosts)
            self.client_stack.register_connection(
                outbound, flow, _server_address(remote),
            )
            self.clients.append(
                RpcClient(self.client_stack.port(flow), client_threads[flow],
                          outbound)
            )
        self.server.start()

        self.recorder = LatencyRecorder(name=f"h{host_id}",
                                        warmup_ns=warmup_ns, mode=mode)
        self.completed = 0
        self.service_ns = service_ns
        base, extra = divmod(nreq_per_host, len(peers))
        self.quotas = [base + (1 if i < extra else 0)
                       for i in range(len(peers))]
        self._issued = [0] * len(peers)
        for index, (client, quota) in enumerate(zip(self.clients,
                                                    self.quotas)):
            if quota:
                self.sim.spawn(self._issue(index, client, quota))

        # Adaptive-horizon support (repro.sim.sharded): the boundary tracks
        # per-address delivery counts, the delivery hook keeps per-client-
        # flow request arrival times, and _egress_bound turns those plus
        # the client/server counters into a conservative earliest-next-
        # egress estimate. A request arriving at the server cannot cause a
        # new cross-host send before service_ns has elapsed — that is the
        # ingress floor the coordinator stretches past.
        self._flow_deliveries: Dict[int, deque] = {r: deque() for r in peers}
        self._flow_answered = {r: 0 for r in peers}
        self.boundary.delivery_hook = self._on_delivery
        self.boundary.egress_bound_fn = self._egress_bound
        if service_ns > 0:
            self.boundary.ingress_floors[_server_address(host_id)] = service_ns

    def _issue(self, index: int, client: RpcClient, quota: int):
        """Closed loop: keep ``window`` RPCs in flight until quota issued.

        Self-terminating — no completion gate: the sharded engine runs every
        host to full drain, which is exactly when all issue loops have
        finished and every response has been polled.
        """
        recorder = self.recorder

        def on_complete(call):
            recorder.record(call.issued_at, call.completed_at)
            self.completed += 1

        issued = 0
        while issued < quota:
            while client.outstanding >= self.window:
                yield 100
            issued += 1
            # Counted *before* submission: from here until the NIC puts the
            # request on the wire, the host must report "egress imminent".
            self._issued[index] = issued
            yield from client.call_async(
                "echo", b"x" * min(self.rpc_bytes, 8), self.rpc_bytes,
                callback=on_complete,
            )

    def _on_delivery(self, dst_address: str, packet: Any) -> None:
        """Boundary delivery hook: record per-flow request arrival times.

        Only requests (deliveries to the server address) matter for the
        serving bound; responses to the client address are covered by the
        delivered-vs-completed check in :meth:`_egress_bound`. The client
        flow a request belongs to is recovered from the packet's mesh
        connection id, which encodes the (client_host, server_host) pair.
        """
        if dst_address != _server_address(self.host_id):
            return
        client_host = ((packet.connection_id - _MESH_CONNECTION_BASE)
                       // self.hosts)
        self._flow_deliveries[client_host].append(self.sim.now)

    def _egress_bound(self):
        """Conservative earliest next cross-host send (adaptive horizons).

        Every cross-host send from this host is either a request (client
        NIC -> a peer's server address) or a response (server NIC -> a
        peer's client address), and ``boundary.sent_by_address`` counts the
        wire-level truth for both. The host claims a bound only for states
        it can prove from counters:

        - anything issued but not yet on the wire, or delivered but not yet
          completed, or a client that is free to issue -> no claim (None);
        - requests delivered but not yet answered on the wire -> the oldest
          unanswered delivery plus the handler's minimum service time.
          Responses leave in delivery order *within* a client flow (one
          FIFO dispatch lane per flow, identical minimum service time), so
          each flow's queue is trimmed by the per-flow response count and
          the bound is the min over flows of head-of-queue + service;
        - fully drained and every client blocked or done -> EGRESS_NEVER.

        Unsound claims are fail-stop (the engine's arrival check), and the
        mesh parity gates compare fixed vs adaptive byte-for-byte.
        """
        if self.client_stack.drops or self.server_stack.drops:
            return None  # drop accounting breaks the send-count algebra
        boundary = self.boundary
        sent = boundary.sent_by_address
        delivered = boundary.delivered_by_address
        peers = [h for h in range(self.hosts) if h != self.host_id]
        if sum(sent.get(_server_address(r), 0)
               for r in peers) < sum(self._issued):
            return None  # request(s) still inside the client TX pipeline
        if delivered.get(_client_address(self.host_id), 0) > self.completed:
            return None  # response mid-RX: completion may free a slot now
        for index, client in enumerate(self.clients):
            if (self._issued[index] < self.quotas[index]
                    and client.outstanding < self.window):
                return None  # free to issue immediately
        bound = None
        for remote in peers:
            answered = sent.get(_client_address(remote), 0)
            queue = self._flow_deliveries[remote]
            trimmed = self._flow_answered[remote]
            while trimmed < answered and queue:
                queue.popleft()
                trimmed += 1
            self._flow_answered[remote] = trimmed
            if queue:
                flow_bound = queue[0] + self.service_ns
                bound = (flow_bound if bound is None
                         else min(bound, flow_bound))
        if bound is not None:
            return bound
        return EGRESS_NEVER

    def finish(self) -> Dict[str, Any]:
        recorder = self.recorder
        data = {
            "host": self.host_id,
            "first_finish_ns": recorder.first_finish_ns,
            "last_finish_ns": recorder.last_finish_ns,
            "discarded": recorder.discarded,
            "issued": sum(self.quotas),
            "completed": self.completed,
            "requests_handled": self.server.requests_handled,
            "drops": self.client_stack.drops + self.server_stack.drops,
            "packets_forwarded": self.boundary.packets_forwarded,
        }
        # Latency payload by mode: the raw sample list in exact mode (the
        # historical key, byte-for-byte), the sketch's plain-data record in
        # sketch mode. Either form crosses the worker-process boundary as
        # plain JSON-able data.
        if recorder.sketch is not None:
            data["sketch"] = recorder.sketch.to_record()
        else:
            data["samples"] = list(recorder.samples)
        return data


def build_mesh_host(host_id: int, **params: Any) -> MeshHost:
    """Builder entry point for :func:`repro.sim.sharded.run_sharded`."""
    return MeshHost(host_id=host_id, **params)


#: MeshResult fields that describe *how the engine ran*, not what the
#: simulation computed: excluded from the parity signature. ``windows``
#: moved here when adaptive horizons landed — the window count is engine
#: bookkeeping that legally differs between fixed and adaptive modes while
#: the simulated results stay byte-identical.
ENGINE_FIELDS = (
    "shards", "mode", "window_mode", "windows", "stretched_windows",
    "skipped_shard_rounds", "boundary_packets", "boundary_bytes",
)


@dataclass
class MeshResult:
    """Outcome of a mesh run; every field outside :data:`ENGINE_FIELDS`
    is identical for every shard count *and* window mode (that is the
    parity contract)."""

    hosts: int
    shards: int
    throughput_mrps: float
    p50_us: float
    p90_us: float
    p99_us: float
    mean_us: float
    count: int
    drops: int
    windows: int
    events_total: int
    events_per_host: List[int]
    per_host: List[dict]
    #: Latency-recording mode the hosts ran with ("exact" | "sketch").
    #: Defaulted so cached dicts from before ISSUE 8 still round-trip.
    mode: str = "exact"
    #: Horizon policy the engine ran ("fixed" | "adaptive") plus its
    #: window accounting — all signature-adjacent metadata, defaulted so
    #: cached dicts from before ISSUE 10 still round-trip.
    window_mode: str = "adaptive"
    stretched_windows: int = 0
    skipped_shard_rounds: int = 0
    boundary_packets: int = 0
    boundary_bytes: int = 0

    def signature(self) -> dict:
        """Everything the simulation computed, minus the engine metadata.

        ``shards``, ``mode``, ``window_mode``, and the window accounting
        are dropped: they label or describe the execution strategy, and
        the parity gates compare simulated results across strategies
        (sketch-mode percentiles legally differ from exact ones, but
        sketched shard counts must still agree with each other — lossless
        sketch merge guarantees it).
        """
        data = asdict(self)
        for field in ENGINE_FIELDS:
            del data[field]
        return data

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MeshResult":
        return cls(**data)


def mesh_signature(result: Union[MeshResult, dict]) -> str:
    """Canonical-JSON signature of a mesh result (or its dict form).

    This is the byte string the A/B parity gates compare: identical bytes
    <=> the sharded/adaptive run reproduced the serial run exactly.
    """
    if isinstance(result, MeshResult):
        data = result.signature()
    else:
        data = {key: value for key, value in result.items()
                if key not in ENGINE_FIELDS}
    return canonical_json(data)


def run_echo_mesh(
    hosts: int = 4,
    shards: int = 1,
    nreq_per_host: int = 4000,
    window: int = 64,
    batch_size: int = 4,
    rpc_bytes: int = 48,
    service_ns: int = 0,
    warmup_ns: int = 20_000,
    tor_delay_ns: Optional[int] = None,
    seed: int = 1,
    mode: str = "exact",
    window_mode: str = "adaptive",
    record_boundary_log: bool = False,
    max_windows: Optional[int] = None,
) -> MeshResult:
    """Closed-loop full-mesh echo across ``hosts`` machines on ``shards``
    event-loop workers; see the module docstring for the parity contract.

    ``mode="sketch"`` records per-host latencies in quantile sketches
    (:mod:`repro.obs.sketch`): no host ships a sample list back, and the
    cross-host merge folds bucket maps instead of k-way-merging samples —
    O(1) memory per host no matter how large ``nreq_per_host`` gets.

    ``window_mode="adaptive"`` (default) lets the engine stretch
    conservative windows using the hosts' egress bounds; ``"fixed"`` grants
    the minimal ``T_min + lookahead`` every round. Simulated results are
    byte-identical across modes — only the window accounting differs.
    """
    _check_mode(mode)  # fail in the parent, not inside a worker process
    lookahead = (tor_delay_ns if tor_delay_ns is not None
                 else DEFAULT_CALIBRATION.tor_delay_ns)
    sharded = run_sharded(
        "repro.harness.mesh:build_mesh_host",
        hosts=hosts,
        params=dict(
            hosts=hosts,
            nreq_per_host=nreq_per_host,
            window=window,
            batch_size=batch_size,
            rpc_bytes=rpc_bytes,
            service_ns=service_ns,
            warmup_ns=warmup_ns,
            tor_delay_ns=tor_delay_ns,
            seed=seed,
            mode=mode,
        ),
        shards=shards,
        lookahead_ns=lookahead,
        window_mode=window_mode,
        record_boundary_log=record_boundary_log,
        max_windows=max_windows,
    )

    def host_stats(host: Dict[str, Any], *, keep: bool):
        """Per-host SummaryStats (or None when warmup ate every sample)."""
        if "sketch" in host:
            from repro.obs.sketch import QuantileSketch

            sketch = QuantileSketch.from_record(host["sketch"])
            return (SummaryStats.from_sketch(sketch) if sketch.count
                    else None)
        if not host["samples"]:
            return None
        return SummaryStats.from_samples(host["samples"], keep_samples=keep)

    parts = [stats for stats in
             (host_stats(host, keep=True) for host in sharded.per_host)
             if stats is not None]
    if not parts:
        raise ValueError(
            "no latency samples survived warmup — lower warmup_ns or raise "
            "nreq_per_host"
        )
    merged = SummaryStats.merge(parts)
    firsts = [host["first_finish_ns"] for host in sharded.per_host
              if host["first_finish_ns"] is not None]
    lasts = [host["last_finish_ns"] for host in sharded.per_host
             if host["last_finish_ns"] is not None]
    span_ns = max(lasts) - min(firsts)
    throughput_mrps = ((merged.count - 1) * 1e3 / span_ns
                       if merged.count >= 2 and span_ns > 0 else 0.0)

    per_host = []
    for index, host in enumerate(sharded.per_host):
        stats = host_stats(host, keep=False)
        per_host.append({
            "host": host["host"],
            "count": stats.count if stats else 0,
            "p50_us": stats.p50_us if stats else None,
            "p99_us": stats.p99_us if stats else None,
            "issued": host["issued"],
            "completed": host["completed"],
            "requests_handled": host["requests_handled"],
            "drops": host["drops"],
            "packets_forwarded": host["packets_forwarded"],
            "events": sharded.events_per_host[index],
        })

    return MeshResult(
        hosts=hosts,
        shards=shards,
        throughput_mrps=throughput_mrps,
        p50_us=merged.p50_us,
        p90_us=merged.p90_us,
        p99_us=merged.p99_us,
        mean_us=merged.mean_ns / 1000.0,
        count=merged.count,
        drops=sum(host["drops"] for host in sharded.per_host),
        windows=sharded.windows,
        events_total=sharded.events_total,
        events_per_host=list(sharded.events_per_host),
        per_host=per_host,
        mode=mode,
        window_mode=sharded.window_mode,
        stretched_windows=sharded.stretched_windows,
        skipped_shard_rounds=sharded.skipped_shard_rounds,
        boundary_packets=sharded.boundary_packets,
        boundary_bytes=sharded.boundary_bytes,
    )


class EchoMeshRig:
    """Facade mirroring :class:`~repro.harness.runner.EchoRig`'s shape for
    the multi-host mesh: construct with the topology, then call
    :meth:`closed_loop` with the shard count.

    Unlike ``EchoRig`` there is no live rig object to poke at afterwards —
    the hosts are built inside the engine (possibly in worker processes)
    and torn down when the run completes; only the result comes back.
    """

    def __init__(self, hosts: int = 4, batch_size: int = 4,
                 rpc_bytes: int = 48, service_ns: int = 0,
                 tor_delay_ns: Optional[int] = None, seed: int = 1,
                 mode: str = "exact", window_mode: str = "adaptive"):
        self.hosts = hosts
        self.batch_size = batch_size
        self.rpc_bytes = rpc_bytes
        self.service_ns = service_ns
        self.tor_delay_ns = tor_delay_ns
        self.seed = seed
        self.mode = _check_mode(mode)
        self.window_mode = window_mode

    def closed_loop(self, window: int = 64, nreq_per_host: int = 4000,
                    warmup_ns: int = 20_000, shards: int = 1) -> MeshResult:
        return run_echo_mesh(
            hosts=self.hosts,
            shards=shards,
            nreq_per_host=nreq_per_host,
            window=window,
            batch_size=self.batch_size,
            rpc_bytes=self.rpc_bytes,
            service_ns=self.service_ns,
            warmup_ns=warmup_ns,
            tor_delay_ns=self.tor_delay_ns,
            seed=self.seed,
            mode=self.mode,
            window_mode=self.window_mode,
        )
