"""Rigs and load generators for the echo-RPC experiments.

The paper's section 5.2-5.5 experiments all share one setup: a client and a
server on the same CPU, two NIC instances on one FPGA connected through a
loopback network, 48-64 B echo RPCs. :class:`EchoRig` builds that setup for
any stack; the module-level ``run_*`` helpers wrap the common measurement
loops:

- ``run_closed_loop`` — asynchronous clients with a fixed request window;
  measures saturated throughput (the Mrps numbers of Fig 10 / Table 3);
- ``run_open_loop`` — Poisson arrivals at a target load; measures the
  latency-vs-load curves of Fig 11 (left);
- ``run_thread_scaling`` / ``run_raw_reads`` — Fig 11 (right).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Dict, List, Optional, Sequence

from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.cpu import SoftwareThread
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.virtualization import VirtualizedFpga
from repro.hw.platform import Machine, MachineConfig
from repro.hw.switch import ToRSwitch
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    TimelineCollector,
    attach_tracer,
    breakdown,
    export_chrome_trace,
    register_dagger_nic,
    utilization_summary,
    utilization_tenants,
)
from repro.obs.timeline import DEFAULT_INTERVAL_NS
from repro.rpc import RpcClient, RpcThreadedServer, ThreadingModel
from repro.sim import Exponential, LatencyRecorder, Simulator
from repro.sim.stats import _check_mode
from repro.stacks import DaggerStack, connect, make_stack

#: Core layout: clients fill the first half of the chip, servers the second.
SERVER_CORE_BASE = 6


@dataclass
class BenchResult:
    """Outcome of one measurement run."""

    throughput_mrps: float
    p50_us: float
    p90_us: float
    p99_us: float
    mean_us: float
    count: int
    drops: int
    offered_mrps: Optional[float] = None
    #: Per-stage latency breakdown (repro.obs.Breakdown) when the rig ran
    #: with tracing enabled; None otherwise.
    breakdown: Optional[object] = None
    #: Metrics-registry snapshot dict when tracing was enabled.
    metrics: Optional[dict] = None
    #: Exact per-component busy fractions over the sampled window
    #: (repro.obs.utilization_summary) when the rig ran with telemetry
    #: enabled; None otherwise.
    utilization: Optional[dict] = None
    #: Timeline-collector dump (TimelineCollector.to_dict) when telemetry
    #: was enabled: one ring-buffered time series per registered probe.
    timeline: Optional[dict] = None

    @classmethod
    def from_recorder(cls, recorder: LatencyRecorder, drops: int,
                      offered_mrps: Optional[float] = None,
                      breakdown: Optional[object] = None,
                      metrics: Optional[dict] = None,
                      utilization: Optional[dict] = None,
                      timeline: Optional[dict] = None) -> "BenchResult":
        stats = recorder.summary()
        # Throughput needs a measurement window; a single-sample run (e.g.
        # nreq=1 smoke tests) reports latency only.
        throughput = (recorder.throughput_mrps() if recorder.count >= 2
                      else 0.0)
        return cls(
            throughput_mrps=throughput,
            p50_us=stats.p50_us,
            p90_us=stats.p90_us,
            p99_us=stats.p99_us,
            mean_us=stats.mean_ns / 1000.0,
            count=recorder.count,
            drops=drops,
            offered_mrps=offered_mrps,
            breakdown=breakdown,
            metrics=metrics,
            utilization=utilization,
            timeline=timeline,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the sweep result cache).

        A dataclass breakdown (repro.obs.Breakdown) is flattened to nested
        dicts; reconstruction via :meth:`from_dict` keeps it as plain data.
        """
        if self.breakdown is not None and not is_dataclass(self.breakdown):
            raise TypeError(
                f"breakdown {type(self.breakdown).__name__} is not "
                "JSON-serializable"
            )
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BenchResult":
        return cls(**data)


def _echo_handler(service_ns: int = 0, response_bytes: int = 48):
    """Build an echo handler with optional per-request compute."""

    def echo(ctx, payload):
        if service_ns > 0:
            yield from ctx.exec(service_ns)
        return payload, response_bytes

    # Handlers must be generator functions even when service_ns == 0.
    def echo_fast(ctx, payload):
        return payload, response_bytes
        yield  # pragma: no cover - makes this a generator function

    return echo if service_ns > 0 else echo_fast


class EchoRig:
    """Client+server echo setup over a chosen stack, on one machine."""

    def __init__(
        self,
        stack_name: str = "dagger",
        interface: str = "upi",
        batch_size: int = 1,
        auto_batch: bool = False,
        num_threads: int = 1,
        calibration: Calibration = DEFAULT_CALIBRATION,
        rpc_bytes: int = 48,
        server_service_ns: int = 0,
        loopback: bool = True,
        tor_delay_ns: Optional[int] = None,
        rx_ring_entries: int = 256,
        hard_overrides: Optional[dict] = None,
        seed: int = 1,
        trace: bool = False,
        trace_max_spans: Optional[int] = None,
        telemetry: bool = False,
        telemetry_interval_ns: int = DEFAULT_INTERVAL_NS,
        telemetry_adaptive: bool = False,
        chaos=None,
        shards: int = 1,
        mode: str = "exact",
    ):
        if shards != 1:
            # A loopback rig has exactly one host, so there is no shard
            # boundary to cut along; point callers at the topology that has
            # one instead of silently ignoring the request.
            raise ValueError(
                "EchoRig is a single-machine rig and only supports "
                "shards=1; for sharded execution use the multi-host mesh "
                "(repro.harness.mesh.run_echo_mesh / EchoMeshRig)"
            )
        # Latency-recording mode (ISSUE 8): "exact" keeps raw samples (the
        # signature-gated default); "sketch" streams them into O(1)-memory
        # quantile sketches so million-request runs don't grow a list.
        self.mode = _check_mode(mode)
        self.sim = Simulator()
        self.machine = Machine(self.sim, MachineConfig(), calibration, seed=seed)
        self.calibration = calibration
        self.rpc_bytes = rpc_bytes
        self.num_threads = num_threads
        self.switch = ToRSwitch(
            self.sim, calibration, loopback=loopback, delay_ns=tor_delay_ns
        )

        if stack_name == "dagger":
            hard = NicHardConfig(
                num_flows=num_threads,
                interface=interface,
                rx_ring_entries=rx_ring_entries,
                **(hard_overrides or {}),
            )
            soft = NicSoftConfig(batch_size=batch_size, auto_batch=auto_batch)
            self.client_stack = DaggerStack(
                self.machine, self.switch, "client", hard=hard, soft=soft
            )
            server_soft = NicSoftConfig(
                batch_size=batch_size, auto_batch=auto_batch
            )
            self.server_stack = DaggerStack(
                self.machine, self.switch, "server",
                hard=hard, soft=server_soft,
            )
        else:
            self.client_stack = make_stack(
                stack_name, self.machine, self.switch, "client"
            )
            self.server_stack = make_stack(
                stack_name, self.machine, self.switch, "server"
            )

        self.server = RpcThreadedServer(self.sim, calibration, name="echo")
        self.server.register_handler(
            "echo", _echo_handler(server_service_ns, response_bytes=rpc_bytes)
        )
        self.clients: List[RpcClient] = []
        # Pack threads two-per-core like the paper's SMT experiment.
        client_threads = self.machine.threads(num_threads, start_core=0)
        server_threads = self.machine.threads(
            num_threads, start_core=SERVER_CORE_BASE
        )
        for t in range(num_threads):
            self.server.add_server_thread(
                self.server_stack.port(t), server_threads[t],
                model=ThreadingModel.DISPATCH,
            )
            conn = connect(self.client_stack, t, self.server_stack, t)
            self.clients.append(
                RpcClient(self.client_stack.port(t), client_threads[t], conn)
            )
        self.server.start()

        # Observability: the registry always absorbs the NIC stats (reading
        # it is snapshot-time work); the span tracer only exists when asked
        # for, so untraced runs keep every hook at `tracer is None`.
        self.registry = MetricsRegistry()
        self.tracer: Optional[SpanTracer] = None
        nics = [stack.nic for stack in (self.client_stack, self.server_stack)
                if isinstance(stack, DaggerStack)]
        for nic, role in zip(nics, ("client", "server")):
            register_dagger_nic(self.registry, nic, component=f"nic.{role}")

        # Fault injection (repro.chaos): accepts a ChaosConfig or its dict
        # form. None (the default) installs nothing — the switch keeps its
        # zero-overhead perfect-wire path and no fault processes exist.
        self.chaos = None
        if chaos is not None:
            from repro.chaos import ChaosConfig, ChaosInjector

            config = (chaos if isinstance(chaos, ChaosConfig)
                      else ChaosConfig.from_dict(chaos))
            rig_cores = {}
            for thread in client_threads + server_threads:
                rig_cores.setdefault(thread.core.core_id, thread.core)
            self.chaos = ChaosInjector(self.sim, config)
            self.chaos.attach(self.switch,
                              cores=[core for _, core
                                     in sorted(rig_cores.items())],
                              nics=nics)
        if trace:
            self.tracer = SpanTracer(max_spans=trace_max_spans)
            attach_tracer(self.tracer, self.clients)
            attach_tracer(self.tracer, self.server.server_threads)
            attach_tracer(self.tracer, nics)
            attach_tracer(self.tracer, [nic.interface for nic in nics])

        # Time-series telemetry (ISSUE 3): a TimelineCollector sampling every
        # instrumented component. Building it also turns on exact busy-time
        # accounting (enable_usage) on the sampled resources; untelemetered
        # runs keep every accounting site at `usage is None`.
        self.timeline: Optional[TimelineCollector] = None
        if telemetry:
            collector = TimelineCollector(
                self.sim, interval_ns=telemetry_interval_ns,
                adaptive=telemetry_adaptive,
            )
            for nic, role in zip(nics, ("client", "server")):
                nic.enable_usage()
                collector.add_source(f"nic.{role}", nic)
            # The FPGA's shared CCI-P endpoints are one source: both NICs
            # arbitrate for them, so they live under a single component.
            collector.add_source("interconnect", self.machine.fpga)
            used_cores = {}
            for thread in client_threads + server_threads:
                used_cores.setdefault(thread.core.core_id, thread.core)
            for core_id, core in sorted(used_cores.items()):
                collector.add_source(f"cpu.core{core_id}", core)
            for i, client in enumerate(self.clients):
                collector.add_source(f"client{i}", client)
            collector.add_source("server.rpc", self.server)
            if self.chaos is not None:
                collector.add_source("chaos", self.chaos)
            self.timeline = collector

    @property
    def drops(self) -> int:
        return self.client_stack.drops + self.server_stack.drops

    def _client_quotas(self, nreq: int) -> List[int]:
        """Split ``nreq`` across the clients without dropping the remainder.

        The first ``nreq % num_clients`` clients issue one extra request, so
        every requested RPC is issued regardless of divisibility (and small
        ``nreq`` can no longer leave target == 0, which used to hang).
        """
        if nreq < 1:
            raise ValueError(f"nreq must be >= 1, got {nreq}")
        base, extra = divmod(nreq, len(self.clients))
        return [base + (1 if i < extra else 0)
                for i in range(len(self.clients))]

    def _traced_result(self, recorder: LatencyRecorder, warmup_ns: int,
                       offered_mrps: Optional[float] = None) -> BenchResult:
        """Build a BenchResult, attaching breakdown/metrics/telemetry."""
        bd = snap = util = timeline = None
        if self.tracer is not None:
            bd = breakdown(self.tracer, warmup_ns=warmup_ns)
            snap = self.registry.snapshot()
        if self.timeline is not None:
            util = utilization_summary(self.timeline)
            timeline = self.timeline.to_dict()
        return BenchResult.from_recorder(
            recorder, self.drops, offered_mrps=offered_mrps,
            breakdown=bd, metrics=snap,
            utilization=util, timeline=timeline,
        )

    def export_chrome_trace(self, target, max_spans: Optional[int] = None) -> int:
        """Write this run's Chrome trace-event / Perfetto JSON to ``target``
        (a path or a text stream); returns the event count. Needs the rig to
        have run with ``trace=True`` and/or ``telemetry=True``."""
        return export_chrome_trace(target, tracer=self.tracer,
                                   collector=self.timeline,
                                   max_spans=max_spans)

    # -- measurement loops -----------------------------------------------------

    def closed_loop(self, window: int = 64, nreq: int = 20000,
                    warmup_ns: int = 100_000) -> BenchResult:
        """Each client keeps ``window`` async RPCs in flight."""
        recorder = LatencyRecorder(warmup_ns=warmup_ns, mode=self.mode)
        if self.timeline is not None:
            self.timeline.start()
        sim = self.sim
        done = sim.event()
        quotas = self._client_quotas(nreq)
        state = {"completed": 0, "target": nreq}

        def on_complete(call):
            recorder.record(call.issued_at, call.completed_at)
            state["completed"] += 1
            if state["completed"] >= state["target"] and not done.triggered:
                done.succeed()

        def issue(client, quota):
            issued = 0
            while issued < quota:
                while client.outstanding >= window:
                    yield 100
                issued += 1
                yield from client.call_async(
                    "echo", b"x" * min(self.rpc_bytes, 8), self.rpc_bytes,
                    callback=on_complete,
                )

        for client, quota in zip(self.clients, quotas):
            sim.spawn(issue(client, quota))

        def waiter():
            yield done

        handle = sim.spawn(waiter())
        from repro.sim import SimulationError

        try:
            sim.run_until_done(handle)
        except SimulationError:
            # Drops: some calls never complete. Drain and report what did.
            # The issue loops stall once outstanding pins at the window, so
            # fail the remaining calls to unblock and drain again.
            for client in self.clients:
                client.fail_pending("dropped by the fabric")
        sim.run()
        if self.timeline is not None:
            self.timeline.stop()
        return self._traced_result(recorder, warmup_ns)

    def open_loop(self, load_mrps: float, nreq: int = 20000,
                  warmup_ns: int = 200_000, seed: int = 7) -> BenchResult:
        """Poisson arrivals at ``load_mrps``, split across the clients.

        Latency is measured from the *intended arrival time*, so client-side
        queueing above saturation shows up in the tail, as it should.
        """
        if load_mrps <= 0:
            raise ValueError(f"load must be positive, got {load_mrps}")
        recorder = LatencyRecorder(warmup_ns=warmup_ns, mode=self.mode)
        if self.timeline is not None:
            self.timeline.start()
        sim = self.sim
        done = sim.event()
        quotas = self._client_quotas(nreq)
        state = {"completed": 0, "target": nreq}
        interarrival = Exponential(
            mean=len(self.clients) * 1000.0 / load_mrps, rng=seed
        )

        def issue(client, quota):
            issued = 0
            next_arrival = sim.now
            while issued < quota:
                gap = interarrival.sample_ns()
                next_arrival += gap
                if next_arrival > sim.now:
                    yield next_arrival - sim.now
                issued += 1
                arrival = next_arrival

                def on_complete(call, arrival=arrival):
                    recorder.record(arrival, call.completed_at)
                    state["completed"] += 1
                    if (state["completed"] >= state["target"]
                            and not done.triggered):
                        done.succeed()

                yield from client.call_async(
                    "echo", b"x" * min(self.rpc_bytes, 8), self.rpc_bytes,
                    callback=on_complete,
                )

        for client, quota in zip(self.clients, quotas):
            sim.spawn(issue(client, quota))

        def waiter():
            yield done

        sim.run_until_done(sim.spawn(waiter()))
        if self.timeline is not None:
            self.timeline.stop()
        return self._traced_result(recorder, warmup_ns,
                                   offered_mrps=load_mrps)


def run_closed_loop(stack_name: str = "dagger", interface: str = "upi",
                    batch_size: int = 1, auto_batch: bool = False,
                    num_threads: int = 1, window: int = 64,
                    nreq: int = 20000, rpc_bytes: int = 48,
                    loopback: bool = True,
                    tor_delay_ns: Optional[int] = None,
                    telemetry: bool = False,
                    telemetry_interval_ns: int = DEFAULT_INTERVAL_NS,
                    mode: str = "exact",
                    calibration: Calibration = DEFAULT_CALIBRATION) -> BenchResult:
    rig = EchoRig(
        stack_name=stack_name, interface=interface, batch_size=batch_size,
        auto_batch=auto_batch, num_threads=num_threads, rpc_bytes=rpc_bytes,
        loopback=loopback, tor_delay_ns=tor_delay_ns, calibration=calibration,
        telemetry=telemetry, telemetry_interval_ns=telemetry_interval_ns,
        mode=mode,
    )
    return rig.closed_loop(window=window, nreq=nreq)


def run_open_loop(load_mrps: float, stack_name: str = "dagger",
                  interface: str = "upi", batch_size: int = 1,
                  auto_batch: bool = False, num_threads: int = 1,
                  nreq: int = 20000, rpc_bytes: int = 48,
                  loopback: bool = True,
                  telemetry: bool = False,
                  telemetry_interval_ns: int = DEFAULT_INTERVAL_NS,
                  mode: str = "exact",
                  calibration: Calibration = DEFAULT_CALIBRATION) -> BenchResult:
    rig = EchoRig(
        stack_name=stack_name, interface=interface, batch_size=batch_size,
        auto_batch=auto_batch, num_threads=num_threads, rpc_bytes=rpc_bytes,
        loopback=loopback, calibration=calibration,
        telemetry=telemetry, telemetry_interval_ns=telemetry_interval_ns,
        mode=mode,
    )
    return rig.open_loop(load_mrps, nreq=nreq)


def run_thread_scaling(num_threads: int, batch_size: int = 4,
                       nreq_per_thread: int = 8000,
                       calibration: Calibration = DEFAULT_CALIBRATION) -> BenchResult:
    """End-to-end multi-thread throughput (Fig 11 right, black line)."""
    rig = EchoRig(
        stack_name="dagger", interface="upi", batch_size=batch_size,
        auto_batch=True, num_threads=num_threads, calibration=calibration,
    )
    return rig.closed_loop(window=64, nreq=nreq_per_thread * num_threads)


def run_raw_reads(num_threads: int, nreads_per_thread: int = 20000,
                  calibration: Calibration = DEFAULT_CALIBRATION) -> float:
    """Raw idle UPI reads (Fig 11 right, red line); returns Mrps."""
    sim = Simulator()
    machine = Machine(sim, MachineConfig(), calibration, seed=3)
    from repro.hw.interconnect.ccip import make_interface

    interface = make_interface("upi", sim, calibration, machine.fpga)
    threads = machine.threads(num_threads, start_core=0)
    recorder = LatencyRecorder()
    issue_cost = calibration.cpu_tx_ns + calibration.cpu_rx_ns

    def reader(thread: SoftwareThread):
        for _ in range(nreads_per_thread):
            start = sim.now
            yield from thread.exec(issue_cost)
            sim.spawn(_read_once(start))

    def _read_once(start):
        yield from interface.raw_read()
        recorder.record(start, sim.now)

    handles = [sim.spawn(reader(thread)) for thread in threads]

    def waiter(handles):
        for handle in handles:
            yield handle

    sim.run_until_done(sim.spawn(waiter(handles)))
    sim.run()
    return recorder.throughput_mrps()


# -- multi-tenant rig (Fig 14) -------------------------------------------------


@dataclass
class MultiTenantResult:
    """Outcome of one multi-tenant measurement run.

    One :class:`BenchResult` per tenant plus the rig-level per-tenant
    telemetry: ``utilization`` keys look like ``nic.<tenant>.fetch`` and
    ``tenant_map`` says which tenant owns which key (shared components —
    the blue-region interconnect endpoints — are absent from the map).
    """

    tenants: List[str]
    per_tenant: Dict[str, BenchResult]
    utilization: Optional[dict] = None
    #: utilization-summary key -> owning tenant (repro.obs.utilization_tenants).
    tenant_map: Optional[Dict[str, str]] = None
    timeline: Optional[dict] = None
    offered_mrps: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["per_tenant"] = {
            tenant: result.to_dict()
            for tenant, result in self.per_tenant.items()
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MultiTenantResult":
        data = dict(data)
        data["per_tenant"] = {
            tenant: BenchResult.from_dict(result)
            for tenant, result in data["per_tenant"].items()
        }
        return cls(**data)


class MultiTenantEchoRig:
    """N co-located echo tenants on one FPGA (:class:`VirtualizedFpga`).

    Each tenant gets its own client NIC + server NIC pair (both tagged
    with the tenant's name), its own RPC server, and its own CPU threads;
    the only cross-tenant coupling is the FPGA's shared CCI-P endpoints —
    exactly the paper's Fig 14 setup. With ``telemetry=True`` the rig
    samples the virtualized FPGA's per-tenant probes, so
    ``result.utilization`` carries one ``nic.<tenant>.*`` namespace per
    tenant and :func:`repro.obs.attribute_bottleneck` can blame a noisy
    neighbour by name.
    """

    def __init__(
        self,
        tenants: Sequence[str] = ("t0", "t1", "t2"),
        interface: str = "upi",
        batch_size: int = 1,
        calibration: Calibration = DEFAULT_CALIBRATION,
        rpc_bytes: int = 48,
        rx_ring_entries: int = 256,
        max_utilization: float = 0.9,
        seed: int = 1,
        telemetry: bool = False,
        telemetry_interval_ns: int = DEFAULT_INTERVAL_NS,
        mode: str = "exact",
    ):
        if len(tenants) < 2:
            raise ValueError(f"need at least 2 tenants, got {list(tenants)}")
        if len(set(tenants)) != len(tenants):
            raise ValueError(f"duplicate tenant names in {list(tenants)}")
        self.mode = _check_mode(mode)
        self.tenants = list(tenants)
        self.sim = Simulator()
        self.machine = Machine(self.sim, MachineConfig(), calibration, seed=seed)
        self.calibration = calibration
        self.rpc_bytes = rpc_bytes
        self.switch = ToRSwitch(self.sim, calibration, loopback=True)
        self.vfpga = VirtualizedFpga(
            self.machine, self.switch, max_utilization=max_utilization
        )

        # Per-tenant stacks: a client NIC and a server NIC per tenant, all
        # resident on the one FPGA. num_flows=1 keeps 2N instances inside
        # the utilization budget.
        hard = NicHardConfig(
            num_flows=1, interface=interface, rx_ring_entries=rx_ring_entries
        )
        soft = NicSoftConfig(batch_size=batch_size)
        client_threads = self.machine.threads(len(self.tenants), start_core=0)
        server_threads = self.machine.threads(
            len(self.tenants), start_core=SERVER_CORE_BASE
        )
        self.client_stacks: Dict[str, DaggerStack] = {}
        self.server_stacks: Dict[str, DaggerStack] = {}
        self.servers: Dict[str, RpcThreadedServer] = {}
        self.clients: Dict[str, RpcClient] = {}
        for index, tenant in enumerate(self.tenants):
            client_nic = self.vfpga.add_nic(
                f"{tenant}-c", hard=hard, soft=soft, tenant=tenant
            )
            server_nic = self.vfpga.add_nic(
                f"{tenant}-s", hard=hard, soft=soft, tenant=tenant
            )
            client_stack = DaggerStack.from_nic(self.machine, client_nic)
            server_stack = DaggerStack.from_nic(self.machine, server_nic)
            server = RpcThreadedServer(
                self.sim, calibration, name=f"echo-{tenant}"
            )
            server.register_handler(
                "echo", _echo_handler(0, response_bytes=rpc_bytes)
            )
            server.add_server_thread(
                server_stack.port(0), server_threads[index],
                model=ThreadingModel.DISPATCH,
            )
            conn = connect(client_stack, 0, server_stack, 0)
            server.start()
            self.client_stacks[tenant] = client_stack
            self.server_stacks[tenant] = server_stack
            self.servers[tenant] = server
            self.clients[tenant] = RpcClient(
                client_stack.port(0), client_threads[index], conn
            )

        # Per-tenant telemetry: the virtualized FPGA's probe source yields
        # (tenant, name, mode, fn) 4-tuples, so one add_source call fans
        # out into a nic.<tenant>.* namespace per tenant. Client/server
        # probes are tagged per tenant too; the shared blue-region
        # endpoints stay untenanted (they are the coupling under test).
        self.timeline: Optional[TimelineCollector] = None
        if telemetry:
            collector = TimelineCollector(
                self.sim, interval_ns=telemetry_interval_ns
            )
            self.vfpga.enable_usage()
            collector.add_source("nic", self.vfpga)
            collector.add_source("interconnect", self.machine.fpga)
            used_cores = {}
            for thread in client_threads + server_threads:
                used_cores.setdefault(thread.core.core_id, thread.core)
            for core_id, core in sorted(used_cores.items()):
                collector.add_source(f"cpu.core{core_id}", core)
            for tenant in self.tenants:
                collector.add_source(
                    f"client.{tenant}", self.clients[tenant], tenant=tenant
                )
                collector.add_source(
                    f"server.{tenant}", self.servers[tenant], tenant=tenant
                )
            self.timeline = collector

    def tenant_drops(self, tenant: str) -> int:
        return (self.client_stacks[tenant].drops
                + self.server_stacks[tenant].drops)

    @property
    def drops(self) -> int:
        return sum(self.tenant_drops(tenant) for tenant in self.tenants)

    def export_chrome_trace(self, target, max_spans: Optional[int] = None) -> int:
        """Write this run's Perfetto JSON (per-tenant counter processes)."""
        return export_chrome_trace(target, collector=self.timeline,
                                   max_spans=max_spans)

    def open_loop(self, loads_mrps: Dict[str, float],
                  nreq_total: int = 6000,
                  warmup_ns: Optional[int] = None,
                  seed: int = 7) -> MultiTenantResult:
        """Poisson arrivals per tenant at each tenant's own target load.

        Request quotas are split proportionally to the offered loads so
        every tenant keeps issuing for (approximately) the same stretch of
        simulated time — a steady tenant must still be observing while the
        noisy one saturates, or its p99 would miss the interference window.
        The default warmup discards the first tenth of that stretch (a
        fixed cutoff would swallow a short run's slow tenants whole).
        """
        if set(loads_mrps) != set(self.tenants):
            raise ValueError(
                f"loads {sorted(loads_mrps)} do not match tenants "
                f"{sorted(self.tenants)}"
            )
        for tenant, load in loads_mrps.items():
            if load <= 0:
                raise ValueError(
                    f"load must be positive, got {load} for {tenant!r}"
                )
        if nreq_total < len(self.tenants):
            raise ValueError(
                f"nreq_total must be >= {len(self.tenants)}, got {nreq_total}"
            )
        total_load = sum(loads_mrps.values())
        if warmup_ns is None:
            # Expected issuing stretch: nreq_total arrivals at total_load
            # requests/us across all tenants.
            warmup_ns = int(nreq_total * 1000 / total_load) // 10
        quotas = {
            tenant: max(1, round(nreq_total * load / total_load))
            for tenant, load in loads_mrps.items()
        }
        recorders = {
            tenant: LatencyRecorder(warmup_ns=warmup_ns, mode=self.mode)
            for tenant in self.tenants
        }
        if self.timeline is not None:
            self.timeline.start()
        sim = self.sim
        done = sim.event()
        state = {"completed": 0, "target": sum(quotas.values())}

        def issue(client, quota, recorder, interarrival):
            issued = 0
            next_arrival = sim.now
            while issued < quota:
                gap = interarrival.sample_ns()
                next_arrival += gap
                if next_arrival > sim.now:
                    yield next_arrival - sim.now
                issued += 1
                arrival = next_arrival

                def on_complete(call, arrival=arrival):
                    recorder.record(arrival, call.completed_at)
                    state["completed"] += 1
                    if (state["completed"] >= state["target"]
                            and not done.triggered):
                        done.succeed()

                yield from client.call_async(
                    "echo", b"x" * min(self.rpc_bytes, 8), self.rpc_bytes,
                    callback=on_complete,
                )

        for index, tenant in enumerate(self.tenants):
            interarrival = Exponential(
                mean=1000.0 / loads_mrps[tenant], rng=seed + index
            )
            sim.spawn(issue(self.clients[tenant], quotas[tenant],
                            recorders[tenant], interarrival))

        def waiter():
            yield done

        sim.run_until_done(sim.spawn(waiter()))
        if self.timeline is not None:
            self.timeline.stop()
        util = tenant_map = timeline = None
        if self.timeline is not None:
            util = utilization_summary(self.timeline)
            tenant_map = utilization_tenants(self.timeline)
            timeline = self.timeline.to_dict()
        per_tenant = {
            tenant: BenchResult.from_recorder(
                recorders[tenant], self.tenant_drops(tenant),
                offered_mrps=loads_mrps[tenant],
            )
            for tenant in self.tenants
        }
        return MultiTenantResult(
            tenants=list(self.tenants),
            per_tenant=per_tenant,
            utilization=util,
            tenant_map=tenant_map,
            timeline=timeline,
            offered_mrps=dict(loads_mrps),
        )


def run_multi_tenant(noisy_mrps: float, steady_mrps: float = 0.5,
                     tenants: int = 3, noisy: str = "t0",
                     nreq_total: int = 6000, interface: str = "upi",
                     batch_size: int = 1, telemetry: bool = False,
                     telemetry_interval_ns: int = DEFAULT_INTERVAL_NS,
                     mode: str = "exact",
                     calibration: Calibration = DEFAULT_CALIBRATION) -> MultiTenantResult:
    """One noisy tenant at ``noisy_mrps``, the rest steady (Fig 14 point)."""
    names = [f"t{i}" for i in range(tenants)]
    if noisy not in names:
        raise ValueError(f"noisy tenant {noisy!r} not in {names}")
    rig = MultiTenantEchoRig(
        tenants=names, interface=interface, batch_size=batch_size,
        calibration=calibration, telemetry=telemetry,
        telemetry_interval_ns=telemetry_interval_ns, mode=mode,
    )
    loads = {name: (noisy_mrps if name == noisy else steady_mrps)
             for name in names}
    return rig.open_loop(loads, nreq_total=nreq_total)
