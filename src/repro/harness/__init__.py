"""Experiment harness.

:mod:`repro.harness.runner` builds rigs (machines + stacks + echo services +
load generators) and runs them; :mod:`repro.harness.experiments` exposes one
entry point per paper table/figure; :mod:`repro.harness.sweep` evaluates
grids of measurement points (in parallel, with a content-addressed result
cache); :mod:`repro.harness.report` renders the paper-style text tables the
benchmarks print.
"""

from repro.harness import experiments, report
from repro.harness.cluster import (
    AutoscalerConfig,
    ClusterResult,
    ClusterRig,
    LB_POLICIES,
    LoadBalancer,
    TierDeployment,
    cluster_signature,
    run_cluster_point,
)
from repro.harness.mesh import EchoMeshRig, MeshResult, run_echo_mesh
from repro.harness.runner import (
    BenchResult,
    EchoRig,
    MultiTenantEchoRig,
    MultiTenantResult,
    run_closed_loop,
    run_multi_tenant,
    run_open_loop,
    run_raw_reads,
    run_thread_scaling,
)
from repro.harness.sweep import SweepPoint, run_sweep

__all__ = [
    "experiments",
    "report",
    "AutoscalerConfig",
    "ClusterResult",
    "ClusterRig",
    "LB_POLICIES",
    "LoadBalancer",
    "TierDeployment",
    "cluster_signature",
    "run_cluster_point",
    "BenchResult",
    "EchoMeshRig",
    "EchoRig",
    "MeshResult",
    "run_echo_mesh",
    "MultiTenantEchoRig",
    "MultiTenantResult",
    "run_closed_loop",
    "run_multi_tenant",
    "run_open_loop",
    "run_raw_reads",
    "run_thread_scaling",
    "SweepPoint",
    "run_sweep",
]
