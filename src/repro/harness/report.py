"""Text rendering of paper-style tables.

The benchmarks print these so a run's output can be compared side by side
with the paper's tables and figures (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width text table."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row]
                                     for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def compare_row(name: str, paper: Optional[float], measured: float,
                unit: str = "") -> str:
    """One 'paper vs measured' line for EXPERIMENTS.md-style output."""
    if paper is None:
        return f"{name}: paper=N/A measured={measured:.2f}{unit}"
    ratio = measured / paper if paper else float("inf")
    return (f"{name}: paper={paper:.2f}{unit} measured={measured:.2f}{unit} "
            f"(x{ratio:.2f})")
