"""Text rendering of paper-style tables.

The benchmarks print these so a run's output can be compared side by side
with the paper's tables and figures (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width text table."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row]
                                     for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_breakdown(breakdown, title: str = "Per-stage latency breakdown") -> str:
    """Render a repro.obs.Breakdown as a Fig 3-style table.

    One row per pipeline stage (p50/mean in us, share of the end-to-end
    p50), plus a footer comparing the sum of stage p50s against the
    measured end-to-end p50 — the consistency check the tracer is for.
    """
    rows = [(label, f"{p50_us:.3f}", f"{mean_us:.3f}", f"{share:.1%}", count)
            for label, p50_us, mean_us, share, count in breakdown.rows()]
    table = render_table(
        ["stage", "p50 us", "mean us", "share", "count"], rows, title=title
    )
    lines = [table]
    if breakdown.e2e is not None:
        stage_sum_us = breakdown.stage_p50_sum_ns / 1000.0
        e2e_us = breakdown.e2e.p50_us
        deviation = (stage_sum_us / e2e_us - 1.0) if e2e_us else 0.0
        lines.append(
            f"stage p50 sum = {stage_sum_us:.3f} us vs end-to-end p50 = "
            f"{e2e_us:.3f} us ({deviation:+.1%}); "
            f"{breakdown.spans_used} spans"
            + (f", {breakdown.spans_skipped} skipped (warmup/incomplete)"
               if breakdown.spans_skipped else "")
        )
    return "\n".join(lines)


def render_metrics(snapshot: dict, title: str = "Metrics registry") -> str:
    """Render a MetricsRegistry snapshot as one flat component/metric table."""
    rows = []
    for component in sorted(snapshot):
        for name in sorted(snapshot[component]):
            value = snapshot[component][name]
            if isinstance(value, dict):  # histogram summary
                value = ", ".join(f"{k}={_fmt(v)}"
                                  for k, v in sorted(value.items()))
            rows.append((component, name, value))
    return render_table(["component", "metric", "value"], rows, title=title)


def render_utilization(utilization: dict,
                       title: str = "Utilization (exact busy fractions)") -> str:
    """Render a :func:`repro.obs.utilization_summary` dict, busiest first."""
    rows = [(name, f"{frac:.1%}")
            for name, frac in sorted(utilization.items(),
                                     key=lambda kv: -kv[1])]
    return render_table(["component", "busy"], rows, title=title)


def render_tenant_utilization(
        utilization: dict, tenants: dict,
        title: str = "Per-tenant utilization (exact busy fractions)") -> str:
    """Render a utilization summary grouped by owning tenant.

    ``tenants`` is the :func:`repro.obs.utilization_tenants` key->tenant
    map; components it does not name (the shared blue-region endpoints,
    CPU cores) are grouped under ``shared``. Busiest first within each
    group, busiest group first — so a noisy neighbour's saturated
    namespace tops the table.
    """
    groups: dict = {}
    for key, frac in utilization.items():
        groups.setdefault(tenants.get(key, "shared"), []).append((key, frac))
    ordered = sorted(
        groups.items(),
        key=lambda kv: (-max(frac for _, frac in kv[1]), kv[0]),
    )
    rows = []
    for tenant, entries in ordered:
        for key, frac in sorted(entries, key=lambda kv: -kv[1]):
            rows.append((tenant, key, f"{frac:.1%}"))
    return render_table(["tenant", "component", "busy"], rows, title=title)


def render_bottleneck(report) -> str:
    """Render a :class:`repro.obs.BottleneckReport` (or its as_dict form)."""
    data = report if isinstance(report, dict) else report.as_dict()
    latency_key = next((k for k in data["per_point"][0] if k.endswith("_us")),
                       "p99_us") if data["per_point"] else "p99_us"
    with_tenant = any(p.get("tenant") for p in data["per_point"])
    headers = ["offered Mrps", latency_key.replace("_us", " us"),
               "bottleneck", "busy"]
    if with_tenant:
        headers.append("tenant")
    rows = []
    for p in data["per_point"]:
        row = [p["offered_mrps"], p[latency_key], p["bottleneck"],
               f"{p['utilization']:.1%}"]
        if with_tenant:
            row.append(p.get("tenant") or "-")
        rows.append(row)
    table = render_table(headers, rows,
                         title="Bottleneck attribution per load point")
    verdict = (
        f"latency knee at {data['knee_load_mrps']} Mrps "
        f"(p99 {data['knee_latency_us']:.2f} us): first-saturating component "
        f"is {data['bottleneck']} at {data['bottleneck_utilization']:.1%} busy"
    )
    if data.get("bottleneck_tenant"):
        verdict += f", owned by tenant {data['bottleneck_tenant']}"
    return f"{table}\n{verdict}"


def render_anomalies(report, limit: int = 15) -> str:
    """Render a :class:`repro.obs.AnomalyReport` (or its as_dict form).

    One row per finding (strongest first, capped at ``limit``) plus the
    attribution verdict naming the culprit component/tenant.
    """
    data = report if isinstance(report, dict) else report.as_dict()
    findings = data["findings"]
    if not findings:
        return ("no anomalies detected "
                f"(|z| >= {data['z_threshold']}, window {data['window']})")
    rows = []
    for f in findings[:limit]:
        rows.append((
            f["component"], f["name"], f.get("tenant") or "-",
            f["t_ns"], f["direction"], f"{f['zscore']:+.1f}",
            f"{f['baseline']:.4g}", f"{f['value']:.4g}",
        ))
    table = render_table(
        ["component", "probe", "tenant", "t_ns", "dir", "z",
         "baseline", "level"],
        rows, title="Timeline anomalies (strongest first)",
    )
    lines = [table]
    if len(findings) > limit:
        lines.append(f"... and {len(findings) - limit} weaker findings")
    verdict = (f"verdict: {data['culprit']} deviated hardest "
               f"({len(findings)} findings total)")
    if data.get("culprit_tenant"):
        verdict += f", owned by tenant {data['culprit_tenant']}"
    lines.append(verdict)
    return "\n".join(lines)


def compare_row(name: str, paper: Optional[float], measured: float,
                unit: str = "") -> str:
    """One 'paper vs measured' line for EXPERIMENTS.md-style output."""
    if paper is None:
        return f"{name}: paper=N/A measured={measured:.2f}{unit}"
    ratio = measured / paper if paper else float("inf")
    return (f"{name}: paper={paper:.2f}{unit} measured={measured:.2f}{unit} "
            f"(x{ratio:.2f})")


def render_slo_curve(rows, deadline_us: float,
                     title: str = "SLO attainment vs offered load") -> str:
    """Render a cluster SLO sweep: attainment curve + scaling summary.

    ``rows`` are ``run_cluster_point`` result dicts (one per offered
    load). Tiers the autoscaler grew are summarized per row as
    ``tier initial->peak``; the event log of the highest-load row is
    appended so the scaling is visible without opening the timeline.
    """
    rows = list(rows)

    def scaled(row):
        parts = [f"{name} {t['initial']}->{t['peak']}"
                 for name, t in sorted(row["tiers"].items())
                 if t["peak"] > t["initial"]]
        return ", ".join(parts) if parts else "-"

    table = render_table(
        ["peak Krps", "thr Krps", "p50 us", "p99 us",
         f"SLO<{deadline_us:g}us", "scaled tiers"],
        [(row["load_krps"], row["throughput_krps"], row["p50_us"],
          row["p99_us"], f"{row['slo_attainment']:.1%}", scaled(row))
         for row in rows],
        title=title,
    )
    lines = [table]
    if rows:
        last = rows[-1]
        events = last["scaling_events"]
        if events:
            lines.append(
                f"autoscaler events at {last['load_krps']:g} Krps peak:"
            )
            for event in events:
                lines.append(
                    f"  t={event['t_ns'] / 1e6:8.3f} ms  "
                    f"{event['tier']:>14s} {event['action']:>4s} -> "
                    f"{event['active']} active "
                    f"(util {event['utilization']:.2f})"
                )
        else:
            lines.append(
                f"no autoscaler events at {last['load_krps']:g} Krps peak"
            )
    return "\n".join(lines)
