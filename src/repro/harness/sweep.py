"""Parallel sweep executor with a content-addressed result cache.

Every paper figure is a *sweep*: the same measurement function evaluated at
a grid of configurations (stacks, batch sizes, offered loads, thread
counts). Each grid cell is an independent simulation, so the cells can run
in worker processes; and each cell is a pure function of its configuration
plus the calibration constants, so its result can be cached by content
hash and reused across runs and figures.

A :class:`SweepPoint` names the measurement function by dotted path
(``"repro.harness.runner:run_closed_loop"``) plus a JSON-able kwargs dict;
:func:`run_sweep` evaluates a list of points — serially, or fanned across a
``ProcessPoolExecutor`` with ``jobs > 1`` — and returns the results in
input order.

Determinism contract: the three evaluation paths (serial, parallel, cache
hit) return bit-identical results. Two mechanisms enforce this:

- every result is normalized through the same canonical-JSON encoding
  (``decode(encode(result))``) whether it was just computed or read back
  from the cache, so float identity is the JSON round-trip in all paths
  (exact in Python 3: ``float(repr(x)) == x``);
- each point is a pure function of its parameters — simulations seed their
  own RNGs — so a worker process computes the same bytes as the parent
  would. ``tests/harness/test_sweep.py`` asserts all of this.

Cache entries live under ``benchmarks/results/cache/`` as
``<sha256>.json``; the key covers :data:`CACHE_VERSION`, the function
path, the canonical parameters, and a fingerprint of
``DEFAULT_CALIBRATION``, so editing the timing model invalidates every
cached result automatically. Writes are atomic (``tmp + os.replace``) so
parallel sweeps sharing a cache directory never tear an entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.harness.runner import BenchResult

#: Bump when the result encoding or the meaning of cached entries changes.
#: 2: zero-yield try_* fast paths re-baselined equal-timestamp grant order.
#: 3: canonical injection keys made per-host event order window-independent;
#:    sharded results grew window-accounting fields (window_mode etc.).
CACHE_VERSION = 3

#: Repo-level default cache directory (benchmarks/results/cache/).
DEFAULT_CACHE_DIR = os.path.join(
    os.path.abspath(os.path.join(os.path.dirname(__file__),
                                 "..", "..", "..")),
    "benchmarks", "results", "cache",
)


def _canonical(params: Dict[str, Any]) -> str:
    """Canonical JSON for hashing and worker hand-off (sorted, compact)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def calibration_fingerprint() -> str:
    """Short digest of the default timing-model constants.

    Part of every cache key: changing any calibrated latency silently
    changes every simulated result, so it must invalidate the cache.
    """
    from repro.hw.calibration import DEFAULT_CALIBRATION

    values = {
        field.name: getattr(DEFAULT_CALIBRATION, field.name)
        for field in dataclasses.fields(DEFAULT_CALIBRATION)
    }
    blob = json.dumps(values, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid cell: a measurement function plus its kwargs.

    ``fn`` is a ``"package.module:function"`` path so the point is
    picklable and resolvable inside worker processes; ``params`` must be
    JSON-serializable (they are part of the cache key).
    """

    fn: str
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        module, sep, attr = self.fn.partition(":")
        if not (module and sep and attr):
            raise ValueError(
                f"fn must look like 'package.module:function', got {self.fn!r}"
            )
        try:
            _canonical(self.params)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"params for {self.fn} are not JSON-serializable: {exc}"
            ) from exc

    def resolve(self) -> Callable:
        module_name, _, attr = self.fn.partition(":")
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attr)
        except AttributeError:
            raise AttributeError(
                f"{module_name} has no attribute {attr!r}"
            ) from None

    def cache_key(self, fingerprint: Optional[str] = None) -> str:
        if fingerprint is None:
            fingerprint = calibration_fingerprint()
        blob = _canonical({
            "version": CACHE_VERSION,
            "fn": self.fn,
            "params": self.params,
            "calibration": fingerprint,
        })
        return hashlib.sha256(blob.encode()).hexdigest()


# -- result encoding -----------------------------------------------------------

_BENCH_RESULT_KIND = "BenchResult"


def encode_result(value: Any) -> Any:
    """Encode a measurement result into JSON-able data (recursive)."""
    if isinstance(value, BenchResult):
        return {"__kind__": _BENCH_RESULT_KIND, "value": value.to_dict()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Generic dataclass results (e.g. KvsWorkloadResult) flatten to
        # plain dicts; they decode as dicts, identically in every path.
        return encode_result(dataclasses.asdict(value))
    if isinstance(value, dict):
        if "__kind__" in value:
            raise ValueError("result dicts must not use the '__kind__' key")
        return {key: encode_result(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_result(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"sweep results must be JSON-able data or BenchResult, "
        f"got {type(value).__name__}"
    )


def decode_result(value: Any) -> Any:
    """Inverse of :func:`encode_result` (tuples come back as lists)."""
    if isinstance(value, dict):
        if value.get("__kind__") == _BENCH_RESULT_KIND:
            return BenchResult.from_dict(value["value"])
        return {key: decode_result(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_result(item) for item in value]
    return value


def execute_point(fn_path: str, params_json: str) -> str:
    """Worker entry point: run one sweep point, return canonical JSON.

    Module-level (picklable) and string-typed at both ends so the parent
    can cache the returned payload byte-for-byte.
    """
    point = SweepPoint(fn_path, json.loads(params_json))
    result = point.resolve()(**point.params)
    return json.dumps(encode_result(result), sort_keys=True,
                      separators=(",", ":"))


# -- cache ---------------------------------------------------------------------


def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"{key}.json")


def _cache_read(cache_dir: str, key: str) -> Optional[str]:
    try:
        with open(_cache_path(cache_dir, key), "r") as handle:
            return handle.read()
    except (OSError, ValueError):
        return None


def _cache_write(cache_dir: str, key: str, payload: str) -> None:
    """Atomic write: a reader never sees a partially written entry."""
    os.makedirs(cache_dir, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp_path, _cache_path(cache_dir, key))
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def clear_cache(cache_dir: Optional[str] = None) -> int:
    """Delete all cache entries; returns how many were removed."""
    cache_dir = cache_dir or DEFAULT_CACHE_DIR
    removed = 0
    try:
        entries = os.listdir(cache_dir)
    except OSError:
        return 0
    for entry in entries:
        if entry.endswith(".json") or entry.endswith(".tmp"):
            try:
                os.unlink(os.path.join(cache_dir, entry))
                removed += 1
            except OSError:
                pass
    return removed


def cache_info(cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Entry count + total bytes of the cache directory."""
    cache_dir = cache_dir or DEFAULT_CACHE_DIR
    entries = 0
    total_bytes = 0
    try:
        names = os.listdir(cache_dir)
    except OSError:
        names = []
    for name in names:
        if name.endswith(".json"):
            entries += 1
            try:
                total_bytes += os.path.getsize(os.path.join(cache_dir, name))
            except OSError:
                pass
    return {"dir": cache_dir, "entries": entries, "bytes": total_bytes}


# -- executor ------------------------------------------------------------------


def _accepts_param(point: SweepPoint, name: str) -> bool:
    """True when the point's function takes an explicit ``name`` kwarg."""
    import inspect

    try:
        signature = inspect.signature(point.resolve())
    except (TypeError, ValueError):
        return False
    return name in signature.parameters


def _accepts_shards(point: SweepPoint) -> bool:
    """True when the point's function takes an explicit ``shards`` kwarg."""
    return _accepts_param(point, "shards")


def _inject_param(points: List[SweepPoint], name: str,
                  value: Any) -> List[SweepPoint]:
    """Inject ``name=value`` into every point that can take it.

    Points whose params already pin the key, and functions without the
    parameter, are left untouched — the same opt-in contract ``shards``
    injection has always had.
    """
    return [
        SweepPoint(point.fn, {**point.params, name: value})
        if name not in point.params and _accepts_param(point, name)
        else point
        for point in points
    ]


def run_sweep(
    points: Iterable[SweepPoint],
    jobs: int = 1,
    cache: bool = True,
    cache_dir: Optional[str] = None,
    stats: Optional[Dict[str, int]] = None,
    shards: Optional[int] = None,
    mode: Optional[str] = None,
    window_mode: Optional[str] = None,
) -> List[Any]:
    """Evaluate sweep points; results come back in input order.

    ``jobs > 1`` fans cache misses across a process pool. ``stats``, when
    given, is filled with ``{"hits": n, "misses": n}``.

    ``shards`` injects a shard count into every point whose measurement
    function takes an explicit ``shards`` parameter and whose params do not
    already pin one (points that set their own, and shard-unaware
    functions, are left untouched). This is orthogonal to ``jobs``: jobs
    parallelize *across* grid cells, shards parallelize the event loops
    *inside* one cell (see :mod:`repro.sim.sharded`). Because sharded runs
    are bit-identical to serial ones, the injected value changes the cache
    key but never the measured payload beyond its recorded ``shards``
    field.

    ``mode`` injects a latency-recording mode (``"exact"`` or
    ``"sketch"``, see :mod:`repro.obs.sketch`) under the same opt-in
    contract. Unlike ``shards``, sketch mode *does* change the measured
    percentiles (within the sketch's relative-accuracy bound), which is
    why it participates in the cache key and is never injected by
    default — signature-gated sweeps keep exact results untouched.

    ``window_mode`` (``"fixed"`` or ``"adaptive"``, see
    :mod:`repro.sim.sharded`) follows the ``shards`` contract exactly:
    adaptive horizons are bit-identical to fixed windows, so the injected
    value changes only engine accounting, never the measured payload.
    """
    points = list(points)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        points = _inject_param(points, "shards", shards)
    if mode is not None:
        from repro.sim.stats import _check_mode

        points = _inject_param(points, "mode", _check_mode(mode))
    if window_mode is not None:
        if window_mode not in ("fixed", "adaptive"):
            raise ValueError(
                f"window_mode must be 'fixed' or 'adaptive', "
                f"got {window_mode!r}"
            )
        points = _inject_param(points, "window_mode", window_mode)
    cache_dir = cache_dir or DEFAULT_CACHE_DIR
    fingerprint = calibration_fingerprint()
    keys = [point.cache_key(fingerprint) for point in points]

    payloads: List[Optional[str]] = [None] * len(points)
    pending: List[int] = []
    hits = 0
    for index, key in enumerate(keys):
        text = _cache_read(cache_dir, key) if cache else None
        if text is None:
            pending.append(index)
        else:
            payloads[index] = text
            hits += 1

    if pending:
        if jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(execute_point, points[index].fn,
                                _canonical(points[index].params))
                    for index in pending
                ]
                for index, future in zip(pending, futures):
                    payloads[index] = future.result()
        else:
            for index in pending:
                payloads[index] = execute_point(
                    points[index].fn, _canonical(points[index].params)
                )
        if cache:
            for index in pending:
                _cache_write(cache_dir, keys[index], payloads[index])

    if stats is not None:
        stats["hits"] = hits
        stats["misses"] = len(pending)
    return [decode_result(json.loads(text)) for text in payloads]
