"""Rack-scale cluster harness: replica pools, load balancing, autoscaling.

Every experiment so far ran 1-2 hosts behind one ToR. This module deploys
the DeathStarBench-style service graphs (:mod:`repro.apps.microservices`)
at rack scale:

- a :class:`ClusterRig` instantiates N service machines (plus one
  dedicated load-generator machine) from :class:`repro.hw.cluster.Cluster`
  behind the ToR fabric, and builds each tier as a **replica pool**: up to
  ``max_replicas`` fully-wired replicas per tier, spread round-robin
  across machines, each with its own NIC instance, RPC server, and
  dedicated cores (so per-replica ``Usage`` integrals are clean signals);
- a seeded :class:`LoadBalancer` picks a replica per call — policies
  ``round-robin``, ``least-outstanding`` and ``p2c``
  (power-of-two-choices);
- a reactive :class:`Autoscaler` watches per-tier busy integrals over a
  sliding window and activates / drains replicas against per-tier
  min/max bounds, with a cooldown that gives scale actions time to take
  effect before the next decision (hysteresis);
- traffic comes from the session-based open-loop generator
  (:mod:`repro.workloads.sessions`): non-homogeneous Poisson arrivals
  (bursty / diurnal), Zipf-skewed session keys over millions of modeled
  sessions;
- the result is an end-to-end **SLO attainment** measurement: the
  fraction of requests completing within a deadline, measured from the
  *intended* arrival time (open-loop semantics), in exact or sketch
  latency-recording mode.

Determinism: replica connections use explicit connection ids allocated
from :data:`_CLUSTER_CONNECTION_BASE` (a pure function of build order,
never the process-global counter), every RNG is seeded, and the whole
topology lives in one :class:`~repro.sim.kernel.Simulator` — two runs
with the same parameters are bit-identical, including back-to-back runs
in one process. That is the contract ``benchmarks/perf/bench_cluster.py``
gates in CI.

The rig deliberately does **not** accept ``--shards``: replica routing is
a per-call dynamic decision (the balancer reads live outstanding counts),
which the conservative-window sharded engine cannot partition without
breaking its fixed-topology lookahead contract. ``run_cluster_point``
therefore takes no ``shards`` parameter, and ``run_sweep``'s opt-in
injection leaves sharded execution to the harnesses that support it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.microservices.tier import MethodSpec, TierSpec, sample_size
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.cluster import Cluster
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.platform import MachineConfig
from repro.rpc import RpcClient, RpcThreadedServer, ThreadingModel
from repro.sim import LatencyRecorder, SimulationError, Simulator
from repro.sim.distributions import make_rng
from repro.sim.sharded import canonical_json
from repro.sim.stats import _check_mode
from repro.stacks import DaggerStack, connect
from repro.workloads.sessions import (
    MODULATIONS,
    SessionWorkload,
    make_modulation,
)

#: Base for explicit cluster connection ids. Far above anything
#: ``next_connection_id()`` hands out in-process (and above the mesh
#: harness's 1M block), so cluster wiring never consumes — and never
#: depends on — the process-global connection counter. That counter is
#: never reset, so depending on it would make two in-process runs differ
#: (connection-cache indexing is id-dependent).
_CLUSTER_CONNECTION_BASE = 2_000_000

#: Replica-selection policies, in documentation order.
LB_POLICIES = ("round-robin", "least-outstanding", "p2c")


@dataclass(frozen=True)
class TierDeployment:
    """Replica bounds for one tier."""

    initial: int = 1
    min_replicas: int = 1
    max_replicas: int = 3

    def __post_init__(self):
        if not (1 <= self.min_replicas <= self.initial
                <= self.max_replicas):
            raise ValueError(
                f"need 1 <= min <= initial <= max, got "
                f"{self.min_replicas}/{self.initial}/{self.max_replicas}"
            )


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the reactive horizontal autoscaler.

    Every ``interval_ns`` the autoscaler computes each tier's busy
    fraction (the delta of the active replicas' exact ``Usage`` busy
    integrals over the interval, normalized by their thread capacity) and
    averages it over the last ``window`` intervals. A tier whose mean
    exceeds ``high_watermark`` gains a replica; a tier whose *every*
    sample over the longer ``down_window`` sits below ``low_watermark``
    loses one. The up/down asymmetry (fast up, slow down) keeps a bursty
    on/off load from draining a replica in every lull; after any action
    the tier's history restarts and it sits out ``cooldown`` intervals,
    so a scale action is observed before the next decision (no flapping
    on a plateau).
    """

    enabled: bool = True
    interval_ns: int = 1_000_000
    window: int = 3
    down_window: int = 8
    high_watermark: float = 0.70
    low_watermark: float = 0.25
    cooldown: int = 2

    def __post_init__(self):
        if self.interval_ns <= 0:
            raise ValueError("interval must be positive")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.down_window < self.window:
            raise ValueError(
                f"down_window must be >= window, got {self.down_window} "
                f"< {self.window}"
            )
        if not 0.0 <= self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                f"need 0 <= low < high <= 1, got "
                f"{self.low_watermark}/{self.high_watermark}"
            )
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")


class Replica:
    """One deployed copy of a tier: stack + server + threads on one machine."""

    def __init__(self, spec: TierSpec, index: int, machine_id: int):
        self.spec = spec
        self.index = index
        self.machine_id = machine_id
        self.address = f"{spec.name}.{index}"
        self.stack: Optional[DaggerStack] = None
        self.server: Optional[RpcThreadedServer] = None
        self.cores: List = []
        self.dispatch_threads: List = []
        self.worker_threads: List = []
        #: thread -> target tier -> (RpcClient, conn id per target replica)
        self.clients: Dict[object, Dict[str, Tuple[RpcClient, List[int]]]] = {}
        self._usages: List[Tuple[object, object]] = []  # (usage, core)
        self._next_client_flow = spec.num_dispatch_threads

    @property
    def num_threads(self) -> int:
        return self.spec.num_dispatch_threads + self.spec.num_workers

    @property
    def handler_threads(self) -> List:
        if self.spec.threading is ThreadingModel.WORKER:
            return list(self.worker_threads)
        return list(self.dispatch_threads)

    def alloc_client_flow(self) -> int:
        flow = self._next_client_flow
        self._next_client_flow += 1
        return flow

    def busy_ns(self, now: int) -> float:
        """Exact slot-busy integral of this replica's dedicated cores."""
        return sum(usage.busy_integral(now, core.slots._in_use)
                   for usage, core in self._usages)


class ReplicaPool:
    """All replicas of one tier plus the balancer's per-replica state."""

    def __init__(self, spec: TierSpec, deployment: TierDeployment):
        self.spec = spec
        self.deployment = deployment
        self.replicas: List[Replica] = []
        self.active: List[int] = list(range(deployment.initial))
        self.outstanding: List[int] = [0] * deployment.max_replicas
        self.issued: List[int] = [0] * deployment.max_replicas
        self.scale_ups = 0
        self.scale_downs = 0
        self.peak_active = deployment.initial
        self._rr = -1

    @property
    def name(self) -> str:
        return self.spec.name

    def note_issue(self, index: int) -> None:
        self.outstanding[index] += 1
        self.issued[index] += 1

    def make_done_callback(self, index: int):
        def on_done(call):
            self.outstanding[index] -= 1

        return on_done

    def activate_next(self) -> Optional[int]:
        """Activate the lowest-index inactive replica, if any."""
        active = set(self.active)
        for index in range(len(self.replicas)):
            if index not in active:
                self.active.append(index)
                self.active.sort()
                self.scale_ups += 1
                self.peak_active = max(self.peak_active, len(self.active))
                return index
        return None

    def drain_last(self) -> Optional[int]:
        """Drain the highest-index active replica (in-flight calls finish)."""
        if len(self.active) <= self.deployment.min_replicas:
            return None
        index = self.active.pop()
        self.scale_downs += 1
        return index

    def requests_handled(self) -> int:
        return sum(replica.server.requests_handled
                   for replica in self.replicas)


class LoadBalancer:
    """Seeded replica selection over a pool's active set."""

    def __init__(self, policy: str, seed=0):
        if policy not in LB_POLICIES:
            raise ValueError(
                f"policy must be one of {LB_POLICIES}, got {policy!r}"
            )
        self.policy = policy
        self.rng = make_rng(seed)

    def pick(self, pool: ReplicaPool) -> int:
        active = pool.active
        if len(active) == 1:
            return active[0]
        if self.policy == "round-robin":
            pool._rr += 1
            return active[pool._rr % len(active)]
        outstanding = pool.outstanding
        if self.policy == "least-outstanding":
            return min(active, key=lambda i: (outstanding[i], i))
        # p2c: two uniform picks without replacement, keep the shorter
        # queue (ties break to the lower index — deterministic).
        first, second = self.rng.sample(active, 2)
        if (outstanding[second], second) < (outstanding[first], first):
            return second
        return first


@dataclass
class ClusterResult:
    """Outcome of one cluster run; plain data, canonical-JSON friendly."""

    app: str
    machines: int
    policy: str
    modulation: str
    load_krps: float  # peak offered rate (the thinning envelope)
    deadline_us: float
    nreq: int
    seed: int
    count: int
    discarded: int
    completed: int
    lost: int
    drops: int
    throughput_krps: float
    mean_us: float
    p50_us: float
    p90_us: float
    p99_us: float
    slo_met: int
    slo_total: int
    slo_attainment: float
    tiers: Dict[str, dict]
    scaling_events: List[dict]
    mode: str = "exact"
    #: Timeline dump when the rig ran with telemetry; excluded from the
    #: signature (sampling cadence is observability, not a result).
    timeline: Optional[dict] = field(default=None, repr=False)

    def signature(self) -> dict:
        data = asdict(self)
        del data["timeline"]
        return data

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterResult":
        return cls(**data)


def cluster_signature(result) -> str:
    """Canonical-JSON byte string the CI determinism gates compare."""
    if isinstance(result, ClusterResult):
        data = result.signature()
    else:
        data = {key: value for key, value in result.items()
                if key != "timeline"}
    return canonical_json(data)


class ClusterRig:
    """N machines, replica pools, a balancer, and an autoscaler.

    ``tiers`` are declarative :class:`TierSpec` lists (e.g.
    :func:`repro.apps.microservices.social_network.social_network_tiers`
    or :func:`repro.apps.microservices.flight.flight_cluster_tiers`).
    Custom-handler tiers are rejected: a replica pool re-instantiates
    every tier per replica, which a stateful handler closure (the
    functional-MICA path) cannot express.

    Machine ``machines`` (the last one) is the dedicated load-generator
    host, so loadgen CPU never pollutes the service tiers' Usage signals.
    """

    def __init__(
        self,
        tiers: List[TierSpec],
        machines: int = 8,
        policy: str = "p2c",
        deployment: TierDeployment = TierDeployment(),
        deployments: Optional[Dict[str, TierDeployment]] = None,
        autoscaler: AutoscalerConfig = AutoscalerConfig(),
        calibration: Calibration = DEFAULT_CALIBRATION,
        machine_config: Optional[MachineConfig] = None,
        seed: int = 11,
        telemetry: bool = False,
        telemetry_interval_ns: int = 200_000,
    ):
        if machines < 1:
            raise ValueError(f"need at least one machine, got {machines}")
        if not tiers:
            raise ValueError("need at least one tier")
        self.machines = machines
        self.policy = policy
        self.autoscaler_config = autoscaler
        self.calibration = calibration
        self.seed = seed
        self.sim = Simulator()
        # +1: the dedicated loadgen machine.
        self.cluster = Cluster(self.sim, machines + 1, calibration,
                               machine_config, seed=seed)
        self.switch = self.cluster.switch
        self.rng = make_rng(seed)
        self.balancer = LoadBalancer(policy, seed=seed + 1)
        self.pools: Dict[str, ReplicaPool] = {}
        self.scaling_events: List[dict] = []
        self.collector = None
        self._next_connection = _CLUSTER_CONNECTION_BASE
        self._next_core = [0] * machines
        self._machine_cursor = 0
        self._ran = False
        self._done = self.sim.event()

        deployments = deployments or {}
        names = set()
        for spec in tiers:
            if spec.name in names:
                raise ValueError(f"duplicate tier name {spec.name!r}")
            names.add(spec.name)
            for method_name, method in spec.methods.items():
                if not isinstance(method, MethodSpec):
                    raise ValueError(
                        f"tier {spec.name}: method {method_name!r} is a "
                        "custom handler — the cluster rig deploys "
                        "declarative MethodSpec tiers only"
                    )
            for target in spec.downstream_targets:
                if target not in names:
                    raise ValueError(
                        f"tier {spec.name}: downstream tier {target!r} "
                        "must be declared before its callers"
                    )
        for spec in tiers:
            self.pools[spec.name] = ReplicaPool(
                spec, deployments.get(spec.name, deployment)
            )
        self._build()
        if telemetry:
            self._enable_telemetry(telemetry_interval_ns)

    # -- construction -----------------------------------------------------------

    def _alloc_connection(self) -> int:
        connection_id = self._next_connection
        self._next_connection += 1
        return connection_id

    def _place(self, num_threads: int, smt: int,
               cores_per_machine: int) -> Tuple[int, int]:
        """(machine, first core) of a dedicated core block, round-robin."""
        cores_needed = -(-num_threads // smt)  # ceil
        if cores_needed > cores_per_machine:
            raise ValueError(
                f"a replica needs {cores_needed} cores but machines have "
                f"{cores_per_machine}"
            )
        for probe in range(self.machines):
            machine_id = (self._machine_cursor + probe) % self.machines
            start = self._next_core[machine_id]
            if start + cores_needed <= cores_per_machine:
                self._next_core[machine_id] = start + cores_needed
                self._machine_cursor = (machine_id + 1) % self.machines
                return machine_id, start
        demand = sum(
            -(-pool.replicas[0].num_threads // smt
              ) * len(pool.replicas) if pool.replicas else 0
            for pool in self.pools.values()
        )
        raise ValueError(
            f"cluster out of cores: {self.machines} machines x "
            f"{cores_per_machine} cores cannot host ~{demand} more "
            "replica cores — add machines or lower max_replicas"
        )

    def _build(self) -> None:
        smt = self.cluster.machines[0].config.smt
        cores_per_machine = len(self.cluster.machines[0].cores)
        # Pass 1: replicas — stack, server, threads on dedicated cores.
        # Big-first placement (stable within equal sizes): a 12-core
        # replica must find a contiguous block, so it claims machines
        # before the one-core leaves fragment them. Connection wiring
        # (pass 2) stays in declaration order, so ids are unaffected.
        def _cores_needed(pool):
            spec = pool.spec
            return -(-(spec.num_dispatch_threads + spec.num_workers) // smt)

        placement_order = sorted(
            self.pools.values(),
            key=lambda pool: -_cores_needed(pool),
        )
        for pool in placement_order:
            spec = pool.spec
            handler_count = (spec.num_workers
                             if spec.threading is ThreadingModel.WORKER
                             else spec.num_dispatch_threads)
            num_flows = (spec.num_dispatch_threads
                         + handler_count * len(spec.downstream_targets))
            for index in range(pool.deployment.max_replicas):
                replica = Replica(spec, index, 0)
                machine_id, start_core = self._place(
                    replica.num_threads, smt, cores_per_machine
                )
                replica.machine_id = machine_id
                machine = self.cluster.machines[machine_id]
                cores_needed = -(-replica.num_threads // smt)
                replica.cores = [machine.core(start_core + i)
                                 for i in range(cores_needed)]
                replica._usages = [(core.enable_usage(), core)
                                   for core in replica.cores]
                replica.stack = DaggerStack(
                    machine, self.switch, replica.address,
                    hard=NicHardConfig(num_flows=max(1, num_flows),
                                       rx_ring_entries=256),
                    soft=NicSoftConfig(
                        batch_size=spec.batch_size,
                        auto_batch=spec.auto_batch,
                        active_flows=spec.num_dispatch_threads,
                        load_balancer=spec.load_balancer,
                    ),
                )
                server = RpcThreadedServer(self.sim, self.calibration,
                                           name=replica.address)
                replica.server = server
                for method_name, method in spec.methods.items():
                    server.register_handler(
                        method_name, self._make_handler(replica, method)
                    )
                threads = []
                for i in range(replica.num_threads):
                    core = replica.cores[i // smt]
                    threads.append(machine.thread(
                        core.core_id, name=f"{replica.address}-t{i}"
                    ))
                replica.worker_threads = threads[:spec.num_workers]
                replica.dispatch_threads = threads[spec.num_workers:]
                for i, thread in enumerate(replica.dispatch_threads):
                    server.add_server_thread(
                        replica.stack.port(i), thread,
                        model=spec.threading,
                        workers=(replica.worker_threads
                                 if spec.threading is ThreadingModel.WORKER
                                 else None),
                    )
                pool.replicas.append(replica)
        # Pass 2: downstream clients — one client per (handler thread,
        # target tier), carrying one connection per target replica over
        # the same ring pair (the SRQ model of section 4.2).
        for pool in self.pools.values():
            for replica in pool.replicas:
                for thread in replica.handler_threads:
                    per_target: Dict[str, Tuple[RpcClient, List[int]]] = {}
                    for target in replica.spec.downstream_targets:
                        flow = replica.alloc_client_flow()
                        per_target[target] = self._wire_client(
                            replica.stack, flow, thread,
                            self.pools[target],
                            name=f"{replica.address}->{target}",
                        )
                    replica.clients[thread] = per_target
        for pool in self.pools.values():
            for replica in pool.replicas:
                replica.server.start()

    def _wire_client(self, stack: DaggerStack, flow: int, thread,
                     target_pool: ReplicaPool,
                     name: str) -> Tuple[RpcClient, List[int]]:
        """One client on ``flow`` with a connection to every target replica."""
        conn_ids = []
        for target_replica in target_pool.replicas:
            connection_id = self._alloc_connection()
            connect(stack, flow, target_replica.stack, 0,
                    connection_id=connection_id)
            conn_ids.append(connection_id)
        client = RpcClient(stack.port(flow), thread, conn_ids[0], name=name)
        for connection_id in conn_ids[1:]:
            client.add_connection(connection_id)
        return client, conn_ids

    def _make_handler(self, replica: Replica, method: MethodSpec):
        """Replica-aware version of ``Microservice.make_handler``: every
        downstream call is routed to a balancer-picked replica of the
        target pool over the matching SRQ connection."""
        rig = self

        def handler(ctx, payload):
            compute = method.compute.sample_ns()
            if compute:
                yield from ctx.exec(compute)
            request_key = None
            if method.request_key:
                request_key = ctx.packet.lb_key
                if request_key is None:
                    request_key = rig.rng.getrandbits(32)
            for stage in method.stages:
                pending = []
                for call_spec in stage:
                    pool = rig.pools[call_spec.target]
                    client, conn_ids = (
                        replica.clients[ctx.thread][call_spec.target]
                    )
                    target = rig.balancer.pick(pool)
                    pool.note_issue(target)
                    call = yield from client.call_async(
                        call_spec.method,
                        b"",
                        sample_size(call_spec.payload_bytes),
                        lb_key=(request_key if call_spec.use_key else None),
                        connection_id=conn_ids[target],
                        callback=pool.make_done_callback(target),
                    )
                    pending.append(call)
                for call in pending:
                    yield call.event
            if method.post_compute_ns:
                ctx.defer(method.post_compute_ns)
            return b"", sample_size(method.response_bytes)

        return handler

    # -- telemetry --------------------------------------------------------------

    def _enable_telemetry(self, interval_ns: int) -> None:
        from repro.obs.timeline import TimelineCollector

        collector = TimelineCollector(self.sim, interval_ns=interval_ns)
        sim = self.sim
        for name, pool in self.pools.items():
            component = f"cluster.{name}"
            collector.add_probe(
                component, "active_replicas",
                lambda p=pool: len(p.active), mode="gauge",
            )
            collector.add_probe(
                component, "outstanding",
                lambda p=pool: sum(p.outstanding), mode="gauge",
            )
            # Sum over ALL replicas (not just active) keeps the counter
            # monotonic across scale-downs.
            collector.add_probe(
                component, "busy_ns",
                lambda p=pool: sum(r.busy_ns(sim.now) for r in p.replicas),
                mode="counter",
            )
        self.collector = collector

    # -- autoscaling ------------------------------------------------------------

    def _autoscale(self):
        cfg = self.autoscaler_config
        pools = self.pools
        now = self.sim.now
        prev = {name: [r.busy_ns(now) for r in pool.replicas]
                for name, pool in pools.items()}
        windows = {name: deque(maxlen=cfg.down_window) for name in pools}
        cooldowns = {name: 0 for name in pools}
        while not self._done.triggered:
            yield cfg.interval_ns
            now = self.sim.now
            for name, pool in pools.items():
                current = [r.busy_ns(now) for r in pool.replicas]
                active = pool.active
                capacity = sum(pool.replicas[i].num_threads
                               for i in active) * cfg.interval_ns
                delta = sum(current[i] - prev[name][i] for i in active)
                prev[name] = current
                utilization = delta / capacity if capacity else 0.0
                windows[name].append(utilization)
                if cooldowns[name] > 0:
                    cooldowns[name] -= 1
                    continue
                window = windows[name]
                if len(window) < cfg.window:
                    continue
                recent = list(window)[-cfg.window:]
                smoothed = sum(recent) / len(recent)
                action = None
                if (smoothed > cfg.high_watermark
                        and len(active) < pool.deployment.max_replicas):
                    pool.activate_next()
                    action = "up"
                elif (len(window) >= cfg.down_window
                        and all(u < cfg.low_watermark for u in window)
                        and len(active) > pool.deployment.min_replicas):
                    pool.drain_last()
                    action = "down"
                if action is not None:
                    cooldowns[name] = cfg.cooldown
                    window.clear()
                    self.scaling_events.append({
                        "t_ns": now,
                        "tier": name,
                        "action": action,
                        "active": len(pool.active),
                        "utilization": round(smoothed, 4),
                    })

    # -- load driving -----------------------------------------------------------

    def run_sessions(
        self,
        workload: SessionWorkload,
        nreq: int,
        entry_tier: Optional[str] = None,
        entry_payload_bytes: int = 64,
        deadline_us: float = 500.0,
        warmup_ns: int = 2_000_000,
        num_load_threads: int = 2,
        mode: str = "exact",
        idle_limit_ns: int = 50_000_000,
    ) -> ClusterResult:
        """Drive ``nreq`` session arrivals and report SLO attainment.

        The workload's mix keys name methods on ``entry_tier`` (or
        ``"tier.method"`` pairs). Latency is measured from each arrival's
        *intended* time, so queueing behind a saturated entry NIC counts
        against the SLO — open-loop semantics. ``idle_limit_ns`` bounds
        how long the run waits after the last completion before declaring
        the remainder lost (dropped requests never complete).
        """
        if self._ran:
            raise RuntimeError("rig already ran (build a fresh one)")
        self._ran = True
        _check_mode(mode)
        if nreq < 1:
            raise ValueError(f"nreq must be >= 1, got {nreq}")
        if deadline_us <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_us}")

        entries: Dict[str, Tuple[str, str]] = {}
        for key in workload.methods:
            if "." in key:
                tier_name, method = key.split(".", 1)
            else:
                if entry_tier is None:
                    raise ValueError(
                        f"mix key {key!r} has no tier and no entry_tier "
                        "given"
                    )
                tier_name, method = entry_tier, key
            if tier_name not in self.pools:
                raise ValueError(f"unknown entry tier {tier_name!r}")
            if method not in self.pools[tier_name].spec.methods:
                raise ValueError(
                    f"entry tier {tier_name} has no method {method!r}"
                )
            entries[key] = (tier_name, method)
        entry_tiers = sorted({tier for tier, _ in entries.values()})

        sim = self.sim
        loadgen_machine = self.cluster.machines[-1]
        flows = num_load_threads * len(entry_tiers)
        loadgen_stack = DaggerStack(
            loadgen_machine, self.switch, "loadgen",
            hard=NicHardConfig(num_flows=max(1, flows),
                               rx_ring_entries=512),
            soft=NicSoftConfig(batch_size=1, auto_batch=True),
        )
        clients: List[Dict[str, Tuple[RpcClient, List[int]]]] = []
        threads = loadgen_machine.threads(num_load_threads, start_core=0)
        next_flow = 0
        for i in range(num_load_threads):
            per_tier: Dict[str, Tuple[RpcClient, List[int]]] = {}
            for tier_name in entry_tiers:
                per_tier[tier_name] = self._wire_client(
                    loadgen_stack, next_flow, threads[i],
                    self.pools[tier_name], name=f"loadgen{i}->{tier_name}",
                )
                next_flow += 1
            clients.append(per_tier)

        recorder = LatencyRecorder(warmup_ns=warmup_ns, mode=mode)
        deadline_ns = int(deadline_us * 1000)
        done = self._done
        state = {"completed": 0, "slo_met": 0, "slo_total": 0,
                 "drivers_done": 0}

        arrivals = workload.arrivals(nreq)

        def driver(per_tier):
            for arrival in arrivals:
                if arrival.t_ns > sim.now:
                    yield sim.timeout(arrival.t_ns - sim.now)
                tier_name, method = entries[arrival.method]
                pool = self.pools[tier_name]
                client, conn_ids = per_tier[tier_name]
                target = self.balancer.pick(pool)
                pool.note_issue(target)
                done_cb = pool.make_done_callback(target)

                def on_complete(call, intended=arrival.t_ns,
                                done_cb=done_cb):
                    done_cb(call)
                    recorder.record(intended, call.completed_at)
                    if call.completed_at >= warmup_ns:
                        state["slo_total"] += 1
                        if call.completed_at - intended <= deadline_ns:
                            state["slo_met"] += 1
                    state["completed"] += 1
                    if state["completed"] >= nreq and not done.triggered:
                        done.succeed()

                yield from client.call_async(
                    method, b"", entry_payload_bytes,
                    lb_key=arrival.key,
                    connection_id=conn_ids[target],
                    callback=on_complete,
                )
            state["drivers_done"] += 1

        def watchdog():
            # Declares the run over when completions stall (dropped
            # requests never complete): without this the scaler's periodic
            # timeouts would keep the simulation alive forever. Progress of
            # any kind resets the idle clock, so only a genuinely wedged or
            # fully-drained run trips it.
            interval = self.autoscaler_config.interval_ns
            idle_limit = max(1, idle_limit_ns // interval)
            last, idle = -1, 0
            while not done.triggered:
                yield interval
                if state["completed"] == last:
                    idle += 1
                    if idle >= idle_limit:
                        done.succeed()
                        return
                else:
                    idle, last = 0, state["completed"]

        for per_tier in clients:
            sim.spawn(driver(per_tier))
        sim.spawn(watchdog())
        if self.autoscaler_config.enabled:
            sim.spawn(self._autoscale())
        if self.collector is not None:
            self.collector.start()

        def waiter():
            yield done

        handle = sim.spawn(waiter())
        try:
            sim.run_until_done(handle)
        except SimulationError:
            pass  # heap drained before the done event: everything lost
        if not done.triggered:
            done.succeed()
        try:
            sim.run()
        except SimulationError:
            pass
        if self.collector is not None:
            self.collector.stop()

        drops = loadgen_stack.drops + sum(
            replica.stack.drops
            for pool in self.pools.values() for replica in pool.replicas
        )
        if recorder.count >= 2:
            throughput_krps = recorder.throughput_rps() / 1e3
        else:
            throughput_krps = 0.0
        if recorder.count:
            stats = recorder.summary()
            mean_us = stats.mean_ns / 1000.0
            p50_us, p90_us, p99_us = (stats.p50_us, stats.p90_us,
                                      stats.p99_us)
        else:
            mean_us = p50_us = p90_us = p99_us = 0.0
        slo_total = state["slo_total"]
        tiers = {
            name: {
                "initial": pool.deployment.initial,
                "min": pool.deployment.min_replicas,
                "max": pool.deployment.max_replicas,
                "final": len(pool.active),
                "peak": pool.peak_active,
                "scale_ups": pool.scale_ups,
                "scale_downs": pool.scale_downs,
                "requests_handled": pool.requests_handled(),
                "issued_per_replica": list(pool.issued),
            }
            for name, pool in self.pools.items()
        }
        return ClusterResult(
            app="",
            machines=self.machines,
            policy=self.policy,
            modulation=type(workload.modulation).__name__,
            load_krps=workload.peak_rate_krps,
            deadline_us=deadline_us,
            nreq=nreq,
            seed=self.seed,
            count=recorder.count,
            discarded=recorder.discarded,
            completed=state["completed"],
            lost=nreq - state["completed"],
            drops=drops,
            throughput_krps=round(throughput_krps, 3),
            mean_us=round(mean_us, 3),
            p50_us=round(p50_us, 3),
            p90_us=round(p90_us, 3),
            p99_us=round(p99_us, 3),
            slo_met=state["slo_met"],
            slo_total=slo_total,
            slo_attainment=(round(state["slo_met"] / slo_total, 4)
                            if slo_total else 0.0),
            tiers=tiers,
            scaling_events=list(self.scaling_events),
            mode=mode,
            timeline=(self.collector.to_dict()
                      if self.collector is not None else None),
        )


#: Cluster-deployable applications: name -> builder returning (tiers,
#: entry tier, default mix, entry payload bytes, provisioned replicas).
#:
#: The provisioned dict pins ``initial == min`` replicas for tiers whose
#: bottleneck is dispatch-thread *occupancy* (threads parked on nested
#: calls release their core, so the CPU-busy signal under-reads them —
#: the scaler must neither be expected to grow them nor allowed to drain
#: them). The compute-bound tiers (post_storage's 40 us/request is the
#: hottest) are left at one replica for the autoscaler to manage.
def _social_app():
    from repro.apps.microservices.social_network import (
        DEFAULT_MIX,
        social_network_tiers,
    )

    provisioned = {"nginx": 2, "home_timeline": 2, "user_timeline": 2,
                   "compose_post": 2}
    return (social_network_tiers(), "nginx", dict(DEFAULT_MIX), 64,
            provisioned)


def _flight_app():
    from repro.apps.microservices.flight import (
        DEFAULT_MIX,
        flight_cluster_tiers,
    )

    provisioned = {"passenger_frontend": 2}
    return flight_cluster_tiers(), None, dict(DEFAULT_MIX), 96, provisioned


CLUSTER_APPS = {
    "social_network": _social_app,
    "flight": _flight_app,
}


def run_cluster_point(
    app: str = "social_network",
    machines: int = 8,
    load_krps: float = 60.0,
    nreq: int = 2000,
    policy: str = "p2c",
    modulation: str = "bursty",
    num_sessions: int = 1_000_000,
    skew_theta: float = 0.99,
    deadline_us: float = 500.0,
    seed: int = 11,
    mode: str = "exact",
    initial_replicas: int = 1,
    min_replicas: int = 1,
    max_replicas: int = 3,
    autoscale: bool = True,
    num_load_threads: int = 2,
    warmup_ns: int = 2_000_000,
    telemetry: bool = False,
) -> dict:
    """One cluster SLO measurement point; returns a plain JSON-able dict.

    This is the ``run_sweep`` entry point (cache-friendly: everything in
    the return value is reproducible plain data). Deliberately takes no
    ``shards`` parameter — see the module docstring.
    """
    if app not in CLUSTER_APPS:
        raise ValueError(
            f"unknown app {app!r} (expected one of {sorted(CLUSTER_APPS)})"
        )
    if modulation not in MODULATIONS:
        raise ValueError(
            f"unknown modulation {modulation!r} (expected one of "
            f"{MODULATIONS})"
        )
    tiers, entry_tier, mix, payload_bytes, provisioned = CLUSTER_APPS[app]()
    deployments = {
        name: TierDeployment(initial=count, min_replicas=count,
                             max_replicas=max(count, max_replicas))
        for name, count in provisioned.items()
    }
    rig = ClusterRig(
        tiers,
        machines=machines,
        policy=policy,
        deployment=TierDeployment(initial=initial_replicas,
                                  min_replicas=min_replicas,
                                  max_replicas=max_replicas),
        deployments=deployments,
        autoscaler=AutoscalerConfig(enabled=autoscale),
        seed=seed,
        telemetry=telemetry,
    )
    workload = SessionWorkload(
        num_sessions=num_sessions,
        peak_rate_krps=load_krps,
        method_mix=mix,
        skew_theta=skew_theta,
        modulation=make_modulation(modulation, seed=seed + 2),
        seed=seed + 3,
    )
    result = rig.run_sessions(
        workload, nreq,
        entry_tier=entry_tier,
        entry_payload_bytes=payload_bytes,
        deadline_us=deadline_us,
        warmup_ns=warmup_ns,
        num_load_threads=num_load_threads,
        mode=mode,
    )
    result.app = app
    result.modulation = modulation
    data = result.to_dict()
    if not telemetry:
        del data["timeline"]
    return data
