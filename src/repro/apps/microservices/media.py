"""The Media Serving application (Fig 2).

Second end-to-end service of the section 3 characterization: client
requests reach an nginx front-end and either compose a movie review
(fanning out to MovieId, UniqueId, Text, User and Rating, then writing
through MovieReview/UserReview to ReviewStorage) or browse movie
information / reviews.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Sequence

from repro.apps.microservices.graph import ServiceGraph
from repro.apps.microservices.tier import CallSpec, MethodSpec, TierSpec
from repro.sim.distributions import LogNormal
from repro.workloads.rpc_sizes import MEDIA_SIZES


def _seed(name: str, salt: int = 0) -> int:
    return (zlib.crc32(name.encode()) + salt) % 100_000


DEFAULT_MIX = {
    "compose_review": 0.15,
    "browse_movie": 0.55,
    "read_reviews": 0.30,
}

COMPUTE_NS = {
    "nginx": 15_000,
    "compose_review": 22_000,
    "movie_id": 8_000,
    "unique_id": 7_000,
    "review_text": 65_000,
    "user": 9_000,
    "rating": 6_000,
    "movie_review": 18_000,
    "user_review": 18_000,
    "review_storage": 35_000,
    "movie_info": 30_000,
    "cast_info": 25_000,
    "plot": 20_000,
}


def _req(tier: str):
    sizes = MEDIA_SIZES.get(tier)
    if sizes is None:
        return 64
    return sizes.request_dist(rng=_seed(tier))


def _resp(tier: str):
    sizes = MEDIA_SIZES.get(tier)
    if sizes is None:
        return 32
    return sizes.response_dist(rng=_seed(tier, 1))


def _leaf(name: str, threads: int = 2,
          cores: Optional[Sequence[int]] = None) -> TierSpec:
    return TierSpec(
        name=name,
        methods={"handle": MethodSpec(
            compute=LogNormal(COMPUTE_NS[name], sigma=0.45, rng=_seed(name)),
            response_bytes=_resp(name),
        )},
        num_dispatch_threads=threads,
        cores=cores,
    )


def build_media(graph: ServiceGraph,
                cores: Optional[Dict[str, Sequence[int]]] = None) -> ServiceGraph:
    """Add the Media Serving tiers to a graph."""
    cores = cores or {}

    def pin(name):
        return cores.get(name)

    for leaf in ("movie_id", "unique_id", "user", "rating",
                 "movie_info", "cast_info", "plot"):
        graph.add_tier(_leaf(leaf, cores=pin(leaf)))
    graph.add_tier(_leaf("review_storage", threads=3,
                         cores=pin("review_storage")))

    graph.add_tier(TierSpec(
        name="review_text",
        methods={"handle": MethodSpec(
            compute=LogNormal(COMPUTE_NS["review_text"], sigma=0.45,
                              rng=_seed("review_text")),
            response_bytes=_resp("review_text"),
        )},
        num_dispatch_threads=2,
        cores=pin("review_text"),
    ))

    for review in ("movie_review", "user_review"):
        graph.add_tier(TierSpec(
            name=review,
            methods={
                "handle": MethodSpec(  # write path
                    compute=LogNormal(COMPUTE_NS[review], sigma=0.45,
                                      rng=_seed(review)),
                    stages=[[CallSpec("review_storage",
                                      payload_bytes=_req(review))]],
                    response_bytes=16,
                ),
                "read": MethodSpec(
                    compute=LogNormal(COMPUTE_NS[review], sigma=0.45,
                                      rng=_seed(review, 7)),
                    stages=[[CallSpec("review_storage",
                                      payload_bytes=_req(review))]],
                    response_bytes=_resp(review),
                ),
            },
            num_dispatch_threads=3,
            cores=pin(review),
        ))

    graph.add_tier(TierSpec(
        name="compose_review",
        methods={"handle": MethodSpec(
            compute=LogNormal(COMPUTE_NS["compose_review"], sigma=0.45,
                              rng=_seed("compose_review")),
            stages=[
                [
                    CallSpec("movie_id", payload_bytes=_req("movie_id")),
                    CallSpec("unique_id", payload_bytes=32),
                    CallSpec("review_text",
                             payload_bytes=_req("review_text")),
                    CallSpec("user", payload_bytes=48),
                    CallSpec("rating", payload_bytes=_req("rating")),
                ],
                [
                    CallSpec("movie_review",
                             payload_bytes=_req("movie_review")),
                    CallSpec("user_review",
                             payload_bytes=_req("user_review")),
                ],
            ],
            response_bytes=32,
        )},
        num_dispatch_threads=2,
        cores=pin("compose_review"),
    ))

    graph.add_tier(TierSpec(
        name="nginx",
        methods={
            "compose_review": MethodSpec(
                compute=LogNormal(COMPUTE_NS["nginx"], sigma=0.4,
                                  rng=_seed("nginx")),
                stages=[[CallSpec("compose_review",
                                  payload_bytes=_req("review_text"))]],
                response_bytes=64,
            ),
            "browse_movie": MethodSpec(
                compute=LogNormal(COMPUTE_NS["nginx"], sigma=0.4,
                                  rng=_seed("nginx", 1)),
                stages=[[
                    CallSpec("movie_info", payload_bytes=48),
                    CallSpec("cast_info", payload_bytes=48),
                    CallSpec("plot", payload_bytes=48),
                ]],
                response_bytes=320,
            ),
            "read_reviews": MethodSpec(
                compute=LogNormal(COMPUTE_NS["nginx"], sigma=0.4,
                                  rng=_seed("nginx", 2)),
                stages=[[CallSpec("movie_review", method="read",
                                  payload_bytes=64)]],
                response_bytes=480,
            ),
        },
        num_dispatch_threads=4,
        cores=pin("nginx"),
    ))
    return graph


def media_graph(stack_name: str = "linux-tcp",
                cores: Optional[Dict[str, Sequence[int]]] = None,
                seed: int = 6) -> ServiceGraph:
    """Convenience: a built Media Serving graph over the given stack."""
    graph = ServiceGraph(stack_name=stack_name, seed=seed)
    build_media(graph, cores=cores)
    graph.build()
    return graph
