"""Declarative microservice tiers.

A :class:`TierSpec` describes one tier: its methods (compute + downstream
fanout), its threading model, and its placement. The graph builder turns a
spec into a :class:`Microservice`: an RPC server over the tier's own NIC
instance plus per-thread RPC clients to every downstream tier (each handler
thread owns its own client flows, which keeps ring access lock-free, as in
the paper's threading model, Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.rpc import RpcClient, RpcThreadedServer, ThreadingModel
from repro.sim.distributions import Constant, Distribution

SizeLike = Union[int, Distribution]


def sample_size(size: SizeLike) -> int:
    if isinstance(size, Distribution):
        return max(1, size.sample_ns())
    if size < 1:
        raise ValueError(f"payload size must be >= 1, got {size}")
    return size


@dataclass
class CallSpec:
    """One downstream call a handler makes.

    ``use_key``: pass the request's key (see ``MethodSpec.request_key``) as
    the call's load-balancing key — what routes KVS calls to the owning
    MICA partition through the object-level balancer.
    """

    target: str
    method: str = "handle"
    payload_bytes: SizeLike = 64
    use_key: bool = False


@dataclass
class MethodSpec:
    """Behaviour of one method of a tier.

    ``stages`` is a list of fanout stages executed in order; the calls
    inside one stage are issued concurrently (non-blocking) and joined
    before the next stage starts — which expresses every dependency shape
    of Fig 13 (chains, fanouts, one-to-many).
    """

    compute: Distribution = field(default_factory=lambda: Constant(0))
    stages: List[List[CallSpec]] = field(default_factory=list)
    response_bytes: SizeLike = 64
    post_compute_ns: int = 0  # deferred (post-response) work
    request_key: bool = False  # draw one key per request (for use_key calls)


@dataclass
class TierSpec:
    """Static description of one tier."""

    name: str
    #: method name -> MethodSpec, or a custom handler generator function
    #: ``handler(ctx, payload) -> (payload, bytes)`` for tiers whose logic
    #: the declarative spec cannot express (e.g. MICA-backed storage).
    methods: Dict[str, object]
    num_dispatch_threads: int = 1
    threading: ThreadingModel = ThreadingModel.DISPATCH
    num_workers: int = 0
    cores: Optional[Sequence[int]] = None  # explicit pinning (Fig 5)
    batch_size: int = 1
    auto_batch: bool = True
    load_balancer: str = "round-robin"  # NIC steering scheme for this tier

    def __post_init__(self):
        if not self.methods:
            raise ValueError(f"tier {self.name}: needs at least one method")
        if self.num_dispatch_threads < 1:
            raise ValueError(f"tier {self.name}: needs a dispatch thread")
        if self.threading is ThreadingModel.WORKER and self.num_workers < 1:
            raise ValueError(
                f"tier {self.name}: worker model needs num_workers >= 1"
            )

    @property
    def downstream_targets(self) -> List[str]:
        targets = []
        for method in self.methods.values():
            if not isinstance(method, MethodSpec):
                continue  # custom handlers declare no static fanout
            for stage in method.stages:
                for call in stage:
                    if call.target not in targets:
                        targets.append(call.target)
        return targets


class Microservice:
    """A built tier: server + per-thread downstream clients."""

    def __init__(self, spec: TierSpec, graph):
        self.spec = spec
        self.graph = graph
        self.stack = None  # set by the graph builder
        self.server: Optional[RpcThreadedServer] = None
        self.dispatch_threads = []
        self.worker_threads = []
        # thread -> target tier name -> RpcClient
        self.clients: Dict[object, Dict[str, RpcClient]] = {}
        self._next_client_flow = spec.num_dispatch_threads

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def handler_threads(self) -> List:
        """Threads that can run handlers (and thus issue nested calls)."""
        if self.spec.threading is ThreadingModel.WORKER:
            return list(self.worker_threads)
        return list(self.dispatch_threads)

    def required_flows(self) -> int:
        """NIC flows: one per dispatch thread + one per (handler, target)."""
        handler_count = (self.spec.num_workers
                         if self.spec.threading is ThreadingModel.WORKER
                         else self.spec.num_dispatch_threads)
        return (self.spec.num_dispatch_threads
                + handler_count * len(self.spec.downstream_targets))

    def alloc_client_flow(self) -> int:
        flow = self._next_client_flow
        self._next_client_flow += 1
        return flow

    def client_for(self, thread, target: str) -> RpcClient:
        try:
            return self.clients[thread][target]
        except KeyError:
            raise KeyError(
                f"tier {self.name}: thread {getattr(thread, 'name', thread)} "
                f"has no client for target {target!r}"
            ) from None

    # -- handler construction ------------------------------------------------

    def make_handler(self, method_name: str, method: MethodSpec):
        tracer = self.graph.tracer

        rng = self.graph.rng

        def handler(ctx, payload):
            compute = method.compute.sample_ns()
            if compute:
                yield from ctx.exec(compute)
            tracer.record_compute(self.name, compute)
            request_key = None
            if method.request_key:
                # One key per request: inherited from the caller when it
                # forwarded one, else freshly drawn.
                request_key = ctx.packet.lb_key
                if request_key is None:
                    request_key = rng.getrandbits(32)
            nested_wait = 0
            for stage in method.stages:
                stage_start = ctx.sim.now
                pending = []
                for call_spec in stage:
                    client = self.client_for(ctx.thread, call_spec.target)
                    call = yield from client.call_async(
                        call_spec.method,
                        b"",
                        sample_size(call_spec.payload_bytes),
                        lb_key=request_key if call_spec.use_key else None,
                    )
                    pending.append((call_spec.target, call))
                for target, call in pending:
                    yield call.event
                    tracer.record_call(target, call.latency_ns,
                                       rpc_id=call.rpc_id)
                nested_wait += ctx.sim.now - stage_start
            if method.stages:
                tracer.record_nested(self.name, ctx.packet.rpc_id,
                                     nested_wait)
            if method.post_compute_ns:
                ctx.defer(method.post_compute_ns)
            return b"", sample_size(method.response_bytes)

        return handler
