"""Service-graph builder and load driver.

Builds every tier of an application on one machine — each tier with its own
NIC instance on the shared FPGA, connected through the static-table ToR
switch, exactly the virtualized deployment of Fig 14 — then drives an
open-loop request mix at the entry tier and collects end-to-end latency
plus per-tier traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.apps.microservices.tier import MethodSpec, Microservice, TierSpec
from repro.apps.microservices.tracing import Tracer
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.platform import Machine, MachineConfig
from repro.hw.switch import ToRSwitch
from repro.rpc import RpcClient, RpcThreadedServer, ThreadingModel
from repro.sim import Exponential, LatencyRecorder, Simulator, SimulationError
from repro.sim.distributions import make_rng
from repro.stacks import DaggerStack, connect, make_stack


class ThreadAllocator:
    """Round-robin software-thread placement over the machine's cores."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._counter = 0

    def alloc(self, name: str, core: Optional[int] = None):
        if core is None:
            core = self._counter % len(self.machine.cores)
            self._counter += 1
        return self.machine.thread(core, name=name)


@dataclass
class GraphResult:
    """Outcome of one load run against a service graph."""

    throughput_krps: float
    p50_us: float
    p90_us: float
    p99_us: float
    count: int
    drops: int
    drop_rate: float
    tracer: Tracer


class ServiceGraph:
    """A set of tiers + the fabric between them."""

    def __init__(
        self,
        stack_name: str = "dagger",
        calibration: Calibration = DEFAULT_CALIBRATION,
        machine_config: Optional[MachineConfig] = None,
        loopback: bool = True,
        seed: int = 5,
    ):
        self.sim = Simulator()
        self.calibration = calibration
        self.stack_name = stack_name
        self.machine = Machine(
            self.sim, machine_config or MachineConfig(), calibration, seed=seed
        )
        self.switch = ToRSwitch(self.sim, calibration, loopback=loopback)
        self.allocator = ThreadAllocator(self.machine)
        self.tiers: Dict[str, Microservice] = {}
        self.tracer = Tracer(*self._transport_profile(stack_name))
        self.rng = make_rng(seed)
        self._built = False

    def _transport_profile(self, stack_name: str) -> Tuple[int, int]:
        """(oneway_ns, cpu_ns) of the *transport* (TCP/IP) layer only.

        For software stacks roughly half the stack cost is the transport
        layer and the rest is RPC processing (Thrift-style marshalling,
        dispatch); Fig 3 shows the two shares are comparable, with RPC
        growing under load because queueing happens in the RPC layer.
        """
        if stack_name == "dagger":
            # Transport is on the NIC; the CPU-visible transport share is 0.
            return (self.calibration.upi_oneway_ns
                    + self.calibration.loopback_delay_ns, 0)
        from repro.stacks.registry import STACKS

        params = STACKS[stack_name].params
        return (int(params.oneway_ns * 0.53),
                int((params.cpu_tx_ns + params.cpu_rx_ns) * 0.48))

    # -- construction -----------------------------------------------------------

    def add_tier(self, spec: TierSpec) -> Microservice:
        if self._built:
            raise RuntimeError("graph already built")
        if spec.name in self.tiers:
            raise ValueError(f"duplicate tier name {spec.name!r}")
        microservice = Microservice(spec, self)
        self.tiers[spec.name] = microservice
        return microservice

    def _core_for(self, spec: TierSpec, index: int) -> Optional[int]:
        if spec.cores is None:
            return None
        return spec.cores[index % len(spec.cores)]

    def _make_stack(self, name: str, num_flows: int, spec: TierSpec):
        if self.stack_name == "dagger":
            hard = NicHardConfig(
                num_flows=max(1, num_flows),
                rx_ring_entries=256,
            )
            soft = NicSoftConfig(
                batch_size=spec.batch_size,
                auto_batch=spec.auto_batch,
                active_flows=spec.num_dispatch_threads,
                load_balancer=spec.load_balancer,
            )
            return DaggerStack(self.machine, self.switch, name,
                               hard=hard, soft=soft)
        stack = make_stack(self.stack_name, self.machine, self.switch, name,
                           num_ports=max(1, num_flows),
                           load_balancer=spec.load_balancer)
        stack.server_ports = list(range(spec.num_dispatch_threads))
        return stack

    def build(self) -> None:
        """Instantiate stacks, servers, threads, clients, connections."""
        if self._built:
            raise RuntimeError("graph already built")
        self._built = True
        # validate targets first
        for microservice in self.tiers.values():
            for target in microservice.spec.downstream_targets:
                if target not in self.tiers:
                    raise ValueError(
                        f"tier {microservice.name}: unknown downstream "
                        f"tier {target!r}"
                    )
        for microservice in self.tiers.values():
            spec = microservice.spec
            microservice.stack = self._make_stack(
                spec.name, microservice.required_flows(), spec
            )
            server = RpcThreadedServer(self.sim, self.calibration,
                                       name=spec.name)
            microservice.server = server
            for method_name, method_spec in spec.methods.items():
                if isinstance(method_spec, MethodSpec):
                    handler = microservice.make_handler(
                        method_name, method_spec
                    )
                else:
                    handler = method_spec  # custom handler function
                server.register_handler(method_name, handler)
            for i in range(spec.num_workers):
                microservice.worker_threads.append(self.allocator.alloc(
                    f"{spec.name}-worker{i}", core=self._core_for(spec, i)
                ))
            for i in range(spec.num_dispatch_threads):
                thread = self.allocator.alloc(
                    f"{spec.name}-dispatch{i}",
                    core=self._core_for(spec, spec.num_workers + i),
                )
                microservice.dispatch_threads.append(thread)
                server.add_server_thread(
                    microservice.stack.port(i),
                    thread,
                    model=spec.threading,
                    workers=(microservice.worker_threads
                             if spec.threading is ThreadingModel.WORKER
                             else None),
                )
        # downstream clients (needs all stacks to exist)
        for microservice in self.tiers.values():
            for thread in microservice.handler_threads:
                per_target: Dict[str, RpcClient] = {}
                for target in microservice.spec.downstream_targets:
                    flow = microservice.alloc_client_flow()
                    connection = connect(
                        microservice.stack, flow, self.tiers[target].stack, 0
                    )
                    per_target[target] = RpcClient(
                        microservice.stack.port(flow), thread, connection,
                        name=f"{microservice.name}->{target}",
                    )
                microservice.clients[thread] = per_target
        for microservice in self.tiers.values():
            microservice.server.start()

    @property
    def drops(self) -> int:
        return sum(ms.stack.drops for ms in self.tiers.values())

    # -- load driving -------------------------------------------------------------

    def run_load(
        self,
        entry_tier: Optional[str],
        method_mix: Dict[str, float],
        load_krps: float,
        nreq: int = 5000,
        entry_payload_bytes: Union[int, Dict[str, int]] = 64,
        num_load_threads: int = 2,
        warmup_ns: int = 2_000_000,
        seed: int = 17,
        measure_from_issue: bool = False,
    ) -> GraphResult:
        """Drive a Poisson request mix.

        ``method_mix`` keys are method names on ``entry_tier``, or
        ``"tier.method"`` keys to spread load over several entry tiers
        (the Flight app drives both front-ends at once).
        """
        if not self._built:
            self.build()
        if load_krps <= 0:
            raise ValueError(f"load must be positive, got {load_krps}")
        # Resolve mix keys to (tier, method) pairs.
        entries: Dict[str, Tuple[str, str]] = {}
        for key in method_mix:
            if "." in key:
                tier_name, method = key.split(".", 1)
            else:
                if entry_tier is None:
                    raise ValueError(
                        f"mix key {key!r} has no tier and no entry_tier given"
                    )
                tier_name, method = entry_tier, key
            if tier_name not in self.tiers:
                raise ValueError(f"unknown entry tier {tier_name!r}")
            if method not in self.tiers[tier_name].spec.methods:
                raise ValueError(
                    f"entry tier {tier_name} has no method {method!r}"
                )
            entries[key] = (tier_name, method)
        entry_tiers = sorted({tier for tier, _ in entries.values()})

        sim = self.sim
        rng = make_rng(seed)
        # External load generator: its own NIC + threads (the "Client" box).
        flows_needed = num_load_threads * len(entry_tiers)
        if self.stack_name == "dagger":
            loadgen_stack = DaggerStack(
                self.machine, self.switch, "loadgen",
                hard=NicHardConfig(num_flows=flows_needed,
                                   rx_ring_entries=512),
                soft=NicSoftConfig(batch_size=1, auto_batch=True),
            )
        else:
            loadgen_stack = make_stack(
                self.stack_name, self.machine, self.switch, "loadgen",
                num_ports=flows_needed,
            )
        # One RpcClient per (loadgen thread, entry tier).
        clients: List[Dict[str, RpcClient]] = []
        next_flow = 0
        for i in range(num_load_threads):
            thread = self.allocator.alloc(f"loadgen{i}")
            per_tier: Dict[str, RpcClient] = {}
            for tier_name in entry_tiers:
                connection = connect(
                    loadgen_stack, next_flow, self.tiers[tier_name].stack, 0
                )
                per_tier[tier_name] = RpcClient(
                    loadgen_stack.port(next_flow), thread, connection
                )
                next_flow += 1
            clients.append(per_tier)

        methods = list(method_mix)
        weights = [method_mix[m] for m in methods]
        total_weight = sum(weights)
        if total_weight <= 0:
            raise ValueError("method mix weights must sum to > 0")
        recorder = LatencyRecorder(warmup_ns=warmup_ns)
        done = sim.event()
        state = {"completed": 0, "expected": nreq // len(clients) * len(clients)}
        interarrival = Exponential(
            mean=1e6 / load_krps * len(clients), rng=seed + 1
        )

        def payload_size(method: str) -> int:
            if isinstance(entry_payload_bytes, dict):
                return entry_payload_bytes.get(method, 64)
            return entry_payload_bytes

        def driver(per_tier: Dict[str, RpcClient], count: int):
            next_arrival = sim.now
            for _ in range(count):
                next_arrival += interarrival.sample_ns()
                if next_arrival > sim.now:
                    yield sim.timeout(next_arrival - sim.now)
                # Past saturation the generator falls behind its schedule;
                # measuring from issue time (as the paper's generator does)
                # keeps the median meaningful while the tail soars (Fig 15).
                arrival = sim.now if measure_from_issue else next_arrival
                mix_key = rng.choices(methods, weights=weights)[0]
                tier_name, method = entries[mix_key]

                def on_complete(call, arrival=arrival):
                    recorder.record(arrival, call.completed_at)
                    self.tracer.record_e2e(call.completed_at - arrival)
                    state["completed"] += 1
                    if (state["completed"] >= state["expected"]
                            and not done.triggered):
                        done.succeed()

                yield from per_tier[tier_name].call_async(
                    method, b"", payload_size(mix_key), callback=on_complete
                )

        for per_tier in clients:
            sim.spawn(driver(per_tier, nreq // len(clients)))

        def waiter():
            yield done

        handle = sim.spawn(waiter())
        try:
            sim.run_until_done(handle)
        except SimulationError:
            pass  # drops: drain and report what completed
        self.sim.run()

        drops = self.drops + loadgen_stack.drops
        total = recorder.count + recorder.discarded
        stats = recorder.summary()
        return GraphResult(
            throughput_krps=recorder.throughput_rps() / 1e3,
            p50_us=stats.p50_us,
            p90_us=stats.p90_us,
            p99_us=stats.p99_us,
            count=recorder.count,
            drops=drops,
            drop_rate=drops / max(1, total + drops),
            tracer=self.tracer,
        )
