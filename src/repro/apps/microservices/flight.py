"""The 8-tier Flight Registration service (Fig 13, Table 4, Fig 15).

Topology:

- the **Passenger frontend** sends registration requests to **Check-in**;
- **Check-in** consults **Flight**, **Baggage** and **Passport** in
  parallel, blocks for all three, then registers the passenger in the
  **Airport** database (MICA);
- **Passport** issues a nested blocking read to the **Citizens** database
  (MICA);
- the **Staff frontend** asynchronously checks records in Airport.

The Flight service answers quickly but is "resource-demanding and
long-running": each request leaves ~340 us of post-response work on the
handling thread (seat-map/aggregate recomputation). Under the **Simple**
threading model that work runs in the dispatch thread, blocking the flow's
RX rings and capping the whole application near 2.7 Krps; the **Optimized**
model moves Flight (and the nested-blocking Check-in and Passport) to
worker threads, trading ~10 us of hand-off latency for ~17x throughput —
Table 4's two rows.

The Airport and Citizens tiers run real (functional) MICA partitions, and
their NICs use the custom object-level load balancer, as section 5.7
describes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List

from repro.apps.kvs.mica import MicaServer
from repro.apps.microservices.graph import GraphResult, ServiceGraph
from repro.apps.microservices.tier import CallSpec, MethodSpec, TierSpec
from repro.rpc import ThreadingModel
from repro.sim.distributions import LogNormal, make_rng

#: Post-response work of one Flight request (the Simple-model bottleneck):
#: ~2.8 Krps of single-thread capacity, matching Table 4's 2.7 Krps cap.
FLIGHT_POST_WORK_NS = 340_000

#: Load mix: mostly passenger check-ins plus staff record checks.
DEFAULT_MIX = {
    "passenger_frontend.register": 0.8,
    "staff_frontend.staff_check": 0.2,
}


def _mica_handler(backend: MicaServer, partition_map: Dict, op: str,
                  value_bytes: int = 16, seed: int = 31):
    """Custom tier handler backed by a functional MICA server.

    The request key rides in the packet's load-balancing key (which the
    object-level balancer also hashed on the "FPGA" to steer the request
    to the owning partition's flow).
    """
    rng = make_rng(seed)

    def handler(ctx, payload):
        raw = ctx.packet.lb_key
        key = struct.pack("<Q", (raw if raw is not None else 0)
                          & 0xFFFFFFFFFFFFFFFF)
        partition = partition_map.get(ctx.thread)
        if op == "get":
            cost = backend.costs.get_cost(len(key), value_bytes, rng)
            cost += backend.cross_partition_penalty_ns(key, partition)
            value = backend.do_get(key, partition)
            yield from ctx.exec(cost)
            return (value or b""), value_bytes
        inline, deferred = backend.costs.set_split(len(key), value_bytes, rng)
        inline += backend.cross_partition_penalty_ns(key, partition)
        backend.do_set(key, b"r" * value_bytes, partition)
        yield from ctx.exec(inline)
        if deferred:
            ctx.defer(deferred)
        return b"", 8

    return handler


@dataclass
class FlightApp:
    """A built Flight Registration deployment."""

    graph: ServiceGraph
    airport_db: MicaServer
    citizens_db: MicaServer
    optimized: bool

    def run(self, load_krps: float, nreq: int = 4000,
            warmup_ns: int = 3_000_000, seed: int = 17,
            measure_from_issue: bool = False) -> GraphResult:
        return self.graph.run_load(
            None, DEFAULT_MIX, load_krps=load_krps, nreq=nreq,
            entry_payload_bytes=96, warmup_ns=warmup_ns, seed=seed,
            measure_from_issue=measure_from_issue,
        )


def _flight_logic_tiers(
    optimized: bool,
    flight_workers: int,
    checkin_workers: int,
    passport_workers: int,
    flight_post_work_ns: int,
    seed: int,
) -> List[TierSpec]:
    """The six logic tiers (everything except the MICA-backed storage).

    Shared between the single-machine :func:`build_flight_app` and the
    declarative :func:`flight_cluster_tiers`, so the two deployments can
    never drift apart.
    """

    def model(workers: int):
        if optimized:
            return dict(threading=ThreadingModel.WORKER, num_workers=workers)
        return dict(threading=ThreadingModel.DISPATCH)

    return [
        TierSpec(
            name="flight",
            methods={"info": MethodSpec(
                compute=LogNormal(2_000, sigma=0.4, rng=seed + 4),
                post_compute_ns=flight_post_work_ns,
                response_bytes=48,
            )},
            num_dispatch_threads=1,
            **model(flight_workers),
        ),
        TierSpec(
            name="baggage",
            methods={"check": MethodSpec(
                compute=LogNormal(1_500, sigma=0.4, rng=seed + 5),
                response_bytes=24,
            )},
            num_dispatch_threads=1,
        ),
        TierSpec(
            name="passport",
            methods={"verify": MethodSpec(
                compute=LogNormal(1_000, sigma=0.4, rng=seed + 6),
                stages=[[CallSpec("citizens_db", method="get",
                                  payload_bytes=24, use_key=True)]],
                response_bytes=24,
                request_key=True,
            )},
            num_dispatch_threads=1,
            **model(passport_workers),
        ),
        TierSpec(
            name="check_in",
            methods={"check_in": MethodSpec(
                compute=LogNormal(1_200, sigma=0.4, rng=seed + 7),
                stages=[
                    [
                        CallSpec("flight", method="info", payload_bytes=48),
                        CallSpec("baggage", method="check",
                                 payload_bytes=32),
                        CallSpec("passport", method="verify",
                                 payload_bytes=48, use_key=True),
                    ],
                    [CallSpec("airport_db", method="set", payload_bytes=64,
                              use_key=True)],
                ],
                response_bytes=32,
                request_key=True,
            )},
            num_dispatch_threads=2,
            **model(checkin_workers),
        ),
        TierSpec(
            name="passenger_frontend",
            methods={"register": MethodSpec(
                compute=LogNormal(800, sigma=0.4, rng=seed + 8),
                stages=[[CallSpec("check_in", method="check_in",
                                  payload_bytes=96, use_key=True)]],
                response_bytes=32,
                request_key=True,
            )},
            num_dispatch_threads=2,
        ),
        TierSpec(
            name="staff_frontend",
            methods={"staff_check": MethodSpec(
                compute=LogNormal(800, sigma=0.4, rng=seed + 9),
                stages=[[CallSpec("airport_db", method="get",
                                  payload_bytes=24, use_key=True)]],
                response_bytes=48,
                request_key=True,
            )},
            num_dispatch_threads=1,
        ),
    ]


def flight_cluster_tiers(
    optimized: bool = True,
    flight_workers: int = 22,
    checkin_workers: int = 8,
    passport_workers: int = 4,
    flight_post_work_ns: int = FLIGHT_POST_WORK_NS,
    seed: int = 9,
) -> List[TierSpec]:
    """Declarative Flight tier specs for the cluster harness.

    The logic tiers are byte-for-byte the single-machine specs; the two
    storage tiers swap the functional MICA backend for a declarative cost
    model (the MICA costs of :data:`repro.apps.kvs.mica.MICA_COSTS` are
    sub-microsecond, so a LogNormal around them preserves the latency
    shape). The functional-MICA deployment stays single-machine: its
    partition maps are keyed by built dispatch threads, which a replica
    pool re-creates per replica — replicated *stateful* storage is its
    own future work.
    """
    storage = [
        TierSpec(
            name="airport_db",
            methods={
                "get": MethodSpec(
                    compute=LogNormal(150, sigma=0.3, rng=seed + 1),
                    response_bytes=16,
                    request_key=True,
                ),
                "set": MethodSpec(
                    compute=LogNormal(200, sigma=0.3, rng=seed + 2),
                    post_compute_ns=100,
                    response_bytes=8,
                    request_key=True,
                ),
            },
            num_dispatch_threads=2,
            load_balancer="object-level",
        ),
        TierSpec(
            name="citizens_db",
            methods={
                "get": MethodSpec(
                    compute=LogNormal(150, sigma=0.3, rng=seed + 3),
                    response_bytes=16,
                    request_key=True,
                ),
            },
            num_dispatch_threads=2,
            load_balancer="object-level",
        ),
    ]
    return storage + _flight_logic_tiers(
        optimized=optimized,
        flight_workers=flight_workers,
        checkin_workers=checkin_workers,
        passport_workers=passport_workers,
        flight_post_work_ns=flight_post_work_ns,
        seed=seed,
    )


def build_flight_app(
    optimized: bool = False,
    stack_name: str = "dagger",
    flight_workers: int = 22,
    checkin_workers: int = 8,
    passport_workers: int = 4,
    flight_post_work_ns: int = FLIGHT_POST_WORK_NS,
    seed: int = 9,
) -> FlightApp:
    """Build the 8-tier app with the Simple or Optimized threading model."""
    graph = ServiceGraph(stack_name=stack_name, seed=seed)

    # -- storage tiers (MICA-backed, object-level balancing) ----------------
    airport_threads = 2
    citizens_threads = 2
    # Keys ride in the packet's lb_key (a raw integer) and the NIC's
    # object-level balancer steers by ``lb_key % flows``; partition
    # ownership must use the same mapping, so decode the integer back out
    # of the packed key.
    def _owner_fn(key: bytes) -> int:
        return struct.unpack("<Q", key[:8])[0]

    airport_db = MicaServer(num_partitions=airport_threads,
                            owner_fn=_owner_fn)
    citizens_db = MicaServer(num_partitions=citizens_threads,
                             owner_fn=_owner_fn)
    airport_partitions: Dict = {}
    citizens_partitions: Dict = {}
    graph.add_tier(TierSpec(
        name="airport_db",
        methods={
            "get": _mica_handler(airport_db, airport_partitions, "get",
                                 seed=seed + 1),
            "set": _mica_handler(airport_db, airport_partitions, "set",
                                 seed=seed + 2),
        },
        num_dispatch_threads=airport_threads,
        load_balancer="object-level",
    ))
    graph.add_tier(TierSpec(
        name="citizens_db",
        methods={
            "get": _mica_handler(citizens_db, citizens_partitions, "get",
                                 seed=seed + 3),
        },
        num_dispatch_threads=citizens_threads,
        load_balancer="object-level",
    ))

    # -- logic tiers ----------------------------------------------------------
    for spec in _flight_logic_tiers(
        optimized=optimized,
        flight_workers=flight_workers,
        checkin_workers=checkin_workers,
        passport_workers=passport_workers,
        flight_post_work_ns=flight_post_work_ns,
        seed=seed,
    ):
        graph.add_tier(spec)

    graph.build()
    # Partition maps need the built dispatch threads.
    for thread_map, tier_name in ((airport_partitions, "airport_db"),
                                  (citizens_partitions, "citizens_db")):
        tier = graph.tiers[tier_name]
        for index, thread in enumerate(tier.dispatch_threads):
            thread_map[thread] = index
    return FlightApp(
        graph=graph,
        airport_db=airport_db,
        citizens_db=citizens_db,
        optimized=optimized,
    )
