"""Multi-tier microservice applications.

- :mod:`repro.apps.microservices.tier` / :mod:`graph` — a declarative
  framework: tiers are specs (threads, threading model, per-method compute
  and fanout), the graph builder gives each tier its own NIC instance on
  the shared FPGA (Fig 14) and wires connections.
- :mod:`repro.apps.microservices.social_network` / :mod:`media` — the
  DeathStarBench Social Network and Media Serving topologies (Figs 1-2)
  used for the section 3 characterization.
- :mod:`repro.apps.microservices.flight` — the 8-tier Flight Registration
  service (Fig 13) with real MICA-backed storage tiers.
- :mod:`repro.apps.microservices.tracing` — the lightweight request-tracing
  system of section 5.7, producing the Fig 3 latency breakdowns.
"""

from repro.apps.microservices.tier import CallSpec, MethodSpec, Microservice, TierSpec
from repro.apps.microservices.graph import GraphResult, ServiceGraph
from repro.apps.microservices.tracing import Tracer, TierBreakdown

__all__ = [
    "CallSpec",
    "MethodSpec",
    "TierSpec",
    "Microservice",
    "ServiceGraph",
    "GraphResult",
    "Tracer",
    "TierBreakdown",
]
