"""Request tracing: the "lightweight request tracing system" of section 5.7.

Collects two sample streams per tier:

- the RPC-level latency of every call *into* the tier, measured at the
  caller (includes both directions of the network, RPC processing, and all
  queueing);
- the tier's own application compute time per request, reported by the
  handler.

From these it derives the Fig 3 breakdown: per-tier median/tail latency
split into application processing, RPC processing, and transport (TCP/IP
for the software baseline). Unattributed time — queueing — is folded into
the RPC share, matching the paper's observation that at high load "most of
this time corresponds to queueing" in the RPC layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.stats import percentile


@dataclass
class TierBreakdown:
    """Fig 3, one bar: a tier's latency and its decomposition."""

    tier: str
    count: int
    p50_us: float
    p99_us: float
    app_p50_us: float
    # decomposition of the median (fractions sum to 1)
    app_fraction: float
    rpc_fraction: float
    transport_fraction: float

    @property
    def network_fraction(self) -> float:
        return self.rpc_fraction + self.transport_fraction


class Tracer:
    """Per-tier call-latency and compute collector."""

    def __init__(self, transport_oneway_ns: int = 0,
                 transport_cpu_ns: int = 0):
        # Unloaded transport cost of one round trip over the active stack;
        # used to split "networking" into transport vs RPC layers.
        self.transport_rtt_ns = 2 * (transport_oneway_ns + transport_cpu_ns)
        self.call_latencies: Dict[str, List[int]] = {}
        self._call_ids: Dict[str, List[Optional[int]]] = {}
        self.computes: Dict[str, List[int]] = {}
        self.nested: Dict[str, Dict[int, int]] = {}
        self.e2e_latencies: List[int] = []

    def record_call(self, tier: str, latency_ns: int,
                    rpc_id: Optional[int] = None) -> None:
        self.call_latencies.setdefault(tier, []).append(latency_ns)
        self._call_ids.setdefault(tier, []).append(rpc_id)

    def record_nested(self, tier: str, rpc_id: int, nested_ns: int) -> None:
        """Time a tier's handler spent blocked on downstream calls."""
        self.nested.setdefault(tier, {})[rpc_id] = nested_ns

    def local_latencies(self, tier: str) -> List[int]:
        """Call latencies minus the tier's own downstream wait — i.e. time
        attributable to this tier (its compute + its RPC/transport work)."""
        latencies = self.call_latencies.get(tier, [])
        ids = self._call_ids.get(tier, [])
        nested = self.nested.get(tier, {})
        out = []
        for latency, rpc_id in zip(latencies, ids):
            downstream = nested.get(rpc_id, 0) if rpc_id is not None else 0
            out.append(max(0, latency - downstream))
        return out

    def record_compute(self, tier: str, compute_ns: int) -> None:
        self.computes.setdefault(tier, []).append(compute_ns)

    def record_e2e(self, latency_ns: int) -> None:
        self.e2e_latencies.append(latency_ns)

    def tiers(self) -> List[str]:
        return sorted(self.call_latencies)

    def breakdown(self, tier: str) -> TierBreakdown:
        latencies = self.local_latencies(tier)
        if not latencies:
            raise KeyError(f"no calls recorded for tier {tier!r}")
        computes = self.computes.get(tier, [0])
        p50 = percentile(latencies, 50)
        p99 = percentile(latencies, 99)
        app_p50 = percentile(computes, 50)
        return self._decompose(tier, len(latencies), p50, p99, app_p50)

    def e2e_breakdown(self) -> TierBreakdown:
        """End-to-end bar: application share = sum of tier computes on the
        critical path is not observable here, so the entry tier's compute
        stream keyed under 'e2e' is used when recorded."""
        if not self.e2e_latencies:
            raise KeyError("no end-to-end latencies recorded")
        p50 = percentile(self.e2e_latencies, 50)
        p99 = percentile(self.e2e_latencies, 99)
        computes = self.computes.get("e2e", [0])
        app_p50 = percentile(computes, 50)
        return self._decompose(
            "e2e", len(self.e2e_latencies), p50, p99, app_p50
        )

    def _decompose(self, tier: str, count: int, p50: float, p99: float,
                   app_p50: float) -> TierBreakdown:
        total = max(p50, 1.0)
        app = min(app_p50, total)
        networking = total - app
        transport = min(float(self.transport_rtt_ns), networking)
        rpc = networking - transport  # RPC processing + queueing
        return TierBreakdown(
            tier=tier,
            count=count,
            p50_us=p50 / 1000.0,
            p99_us=p99 / 1000.0,
            app_p50_us=app / 1000.0,
            app_fraction=app / total,
            rpc_fraction=rpc / total,
            transport_fraction=transport / total,
        )
