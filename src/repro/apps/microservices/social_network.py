"""The Social Network application (Fig 1) for the section 3 studies.

Topology (the subset the paper profiles, s1-s6, plus the front-end, the
ComposePost mid-tier and the storage back-ends):

- nginx front-end exposing ``compose_post``, ``read_home_timeline`` and
  ``read_user_timeline``;
- ComposePost fans out to UniqueID (s3), Media (s1), User (s2) and Text
  (s4); Text fans out to UrlShorten (s6) and UserMention (s5); the post is
  then written to PostStorage and the timeline caches;
- timeline reads hit the timeline tiers backed by PostStorage.

Per-tier compute times are calibrated against Fig 3's fractions over the
kernel-TCP baseline: communication is ~40% of tier latency on average, up
to ~80% for the light User and UniqueID tiers, and smaller for the
compute-heavy Text and UserMention tiers. RPC sizes come from
:mod:`repro.workloads.rpc_sizes` (Fig 4).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence

from repro.apps.microservices.graph import ServiceGraph
from repro.apps.microservices.tier import CallSpec, MethodSpec, TierSpec
from repro.sim.distributions import LogNormal
from repro.workloads.rpc_sizes import SOCIAL_NETWORK_SIZES

def _stable_seed(name: str, salt: int = 0) -> int:
    """Deterministic per-tier seed (str hash() is salted per process)."""
    return (zlib.crc32(name.encode()) + salt) % 100_000


#: The paper's s1..s6 labels.
PROFILED_TIERS = {
    "s1": "media",
    "s2": "user",
    "s3": "unique_id",
    "s4": "text",
    "s5": "user_mention",
    "s6": "url_shorten",
}

#: Request mix of the DeathStarBench workload generator.
DEFAULT_MIX = {
    "compose_post": 0.10,
    "read_home_timeline": 0.60,
    "read_user_timeline": 0.30,
}

#: Per-tier median compute (ns), calibrated to Fig 3's networking
#: fractions over the Linux-TCP baseline (~36 us unloaded RPC RTT).
COMPUTE_NS = {
    "nginx": 15_000,
    "compose_post": 20_000,
    "media": 30_000,
    "user": 9_000,
    "unique_id": 7_000,
    "text": 70_000,
    "user_mention": 60_000,
    "url_shorten": 25_000,
    "post_storage": 40_000,
    "home_timeline": 28_000,
    "user_timeline": 28_000,
}


def _req(tier: str):
    """Fig 4 request-size distribution for calls into a tier."""
    sizes = SOCIAL_NETWORK_SIZES.get(tier)
    if sizes is None:
        return 64
    return sizes.request_dist(rng=_stable_seed(tier))


def _resp(tier: str):
    sizes = SOCIAL_NETWORK_SIZES.get(tier)
    if sizes is None:
        return 32
    return sizes.response_dist(rng=_stable_seed(tier, 1))


def _leaf(name: str, sigma: float = 0.45, threads: int = 2,
          cores: Optional[Sequence[int]] = None) -> TierSpec:
    return TierSpec(
        name=name,
        methods={"handle": MethodSpec(
            compute=LogNormal(COMPUTE_NS[name], sigma=sigma,
                              rng=_stable_seed(name)),
            response_bytes=_resp(name),
        )},
        num_dispatch_threads=threads,
        cores=cores,
    )


def social_network_tiers(
    cores: Optional[Dict[str, Sequence[int]]] = None,
) -> List[TierSpec]:
    """The Social Network tier specs, in dependency order.

    The single-machine :func:`build_social_network` adds these to a
    :class:`~repro.apps.microservices.graph.ServiceGraph`; the cluster
    harness (:mod:`repro.harness.cluster`) deploys the same specs as
    replica pools across machines. Each call builds fresh specs (and
    fresh seeded distributions), so independent rigs never share RNG
    state.

    ``cores`` optionally pins tiers to explicit cores (the Fig 5
    interference experiment pins everything to 4 shared cores).
    """
    cores = cores or {}

    def pin(name):
        return cores.get(name)

    tiers: List[TierSpec] = []
    for leaf in ("media", "user", "unique_id", "user_mention",
                 "url_shorten"):
        tiers.append(_leaf(leaf, cores=pin(leaf)))
    tiers.append(_leaf("post_storage", threads=3, cores=pin("post_storage")))

    tiers.append(TierSpec(
        name="text",
        methods={"handle": MethodSpec(
            compute=LogNormal(COMPUTE_NS["text"], sigma=0.45, rng=41),
            stages=[[
                CallSpec("url_shorten", payload_bytes=_req("url_shorten")),
                CallSpec("user_mention", payload_bytes=_req("user_mention")),
            ]],
            response_bytes=_resp("text"),
        )},
        num_dispatch_threads=2,
        cores=pin("text"),
    ))

    for timeline in ("home_timeline", "user_timeline"):
        tiers.append(TierSpec(
            name=timeline,
            methods={
                "handle": MethodSpec(  # write path (from compose)
                    compute=LogNormal(COMPUTE_NS[timeline], sigma=0.45,
                                      rng=_stable_seed(timeline)),
                    response_bytes=16,
                ),
                "read": MethodSpec(
                    compute=LogNormal(COMPUTE_NS[timeline], sigma=0.45,
                                      rng=_stable_seed(timeline, 7)),
                    stages=[[CallSpec("post_storage",
                                      payload_bytes=_req("post_storage"))]],
                    response_bytes=_resp("home_timeline"),
                ),
            },
            num_dispatch_threads=4,
            cores=pin(timeline),
        ))

    tiers.append(TierSpec(
        name="compose_post",
        methods={"handle": MethodSpec(
            compute=LogNormal(COMPUTE_NS["compose_post"], sigma=0.45, rng=43),
            stages=[
                [
                    CallSpec("unique_id", payload_bytes=_req("unique_id")),
                    CallSpec("media", payload_bytes=_req("media")),
                    CallSpec("user", payload_bytes=_req("user")),
                    CallSpec("text", payload_bytes=_req("text")),
                ],
                [
                    CallSpec("post_storage",
                             payload_bytes=_req("post_storage")),
                    CallSpec("home_timeline", payload_bytes=64),
                    CallSpec("user_timeline", payload_bytes=64),
                ],
            ],
            response_bytes=32,
        )},
        num_dispatch_threads=2,
        cores=pin("compose_post"),
    ))

    tiers.append(TierSpec(
        name="nginx",
        methods={
            "compose_post": MethodSpec(
                compute=LogNormal(COMPUTE_NS["nginx"], sigma=0.4, rng=47),
                stages=[[CallSpec("compose_post",
                                  payload_bytes=_req("text"))]],
                response_bytes=64,
            ),
            "read_home_timeline": MethodSpec(
                compute=LogNormal(COMPUTE_NS["nginx"], sigma=0.4, rng=48),
                stages=[[CallSpec("home_timeline", method="read",
                                  payload_bytes=_req("home_timeline"))]],
                response_bytes=_resp("home_timeline"),
            ),
            "read_user_timeline": MethodSpec(
                compute=LogNormal(COMPUTE_NS["nginx"], sigma=0.4, rng=49),
                stages=[[CallSpec("user_timeline", method="read",
                                  payload_bytes=_req("home_timeline"))]],
                response_bytes=_resp("home_timeline"),
            ),
        },
        num_dispatch_threads=4,
        cores=pin("nginx"),
    ))
    return tiers


def build_social_network(
    graph: ServiceGraph,
    cores: Optional[Dict[str, Sequence[int]]] = None,
) -> ServiceGraph:
    """Add the Social Network tiers to a graph (caller then builds/runs)."""
    for spec in social_network_tiers(cores=cores):
        graph.add_tier(spec)
    return graph


def social_network_graph(stack_name: str = "linux-tcp",
                         cores: Optional[Dict[str, Sequence[int]]] = None,
                         seed: int = 5) -> ServiceGraph:
    """Convenience: a built Social Network graph over the given stack."""
    graph = ServiceGraph(stack_name=stack_name, seed=seed)
    build_social_network(graph, cores=cores)
    graph.build()
    return graph
