"""KVS-over-RPC glue: generated IDL stubs, servicer bindings, and the
section 5.6 workload driver.

``kvs_idl(key_bytes, value_bytes)`` generates the wire schema for a dataset
shape (tiny = 8/8, small = 16/32, as in MICA's evaluation);
``run_kvs_workload`` builds the full rig — machine, switch, stacks, KVS
server, zipfian load — and measures what Fig 12 reports.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.kvs.memcached import MemcachedServer
from repro.apps.kvs.mica import MicaServer, mica_key_hash
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.platform import Machine, MachineConfig
from repro.hw.switch import ToRSwitch
from repro.rpc import RpcClient, RpcThreadedServer, ThreadingModel
from repro.rpc.idl import load_idl
from repro.sim import Exponential, LatencyRecorder, Simulator, Zipfian
from repro.sim.distributions import make_rng
from repro.stacks import DaggerStack, connect, make_stack

_KVS_IDL_TEMPLATE = """
Message GetRequest {{
    char[{key}] key;
}}
Message GetResponse {{
    uint8 hit;
    char[{value}] value;
}}
Message SetRequest {{
    char[{key}] key;
    char[{value}] value;
}}
Message SetResponse {{
    uint8 ok;
}}
Service KeyValueStore {{
    rpc get(GetRequest) returns(GetResponse);
    rpc set(SetRequest) returns(SetResponse);
}}
"""


@lru_cache(maxsize=None)
def kvs_idl(key_bytes: int, value_bytes: int) -> Dict[str, Any]:
    """Generated message/stub namespace for a dataset shape."""
    if key_bytes < 8:
        raise ValueError("key_bytes must be >= 8 (keys carry a 64-bit index)")
    return load_idl(_KVS_IDL_TEMPLATE.format(key=key_bytes, value=value_bytes))


def encode_key(index: int, key_bytes: int) -> bytes:
    """Stable, unique key encoding for a dataset index."""
    return struct.pack("<Q", index).ljust(key_bytes, b"k")


def make_value(index: int, value_bytes: int) -> bytes:
    return (b"v%d" % (index % 1000)).ljust(value_bytes, b".")[:value_bytes]


def make_kvs_servicer(namespace: Dict[str, Any], backend,
                      value_bytes: int,
                      partition_of_thread: Optional[Dict] = None,
                      seed: int = 29):
    """Bind a MemcachedServer or MicaServer to the generated servicer."""
    is_mica = isinstance(backend, MicaServer)
    rng = make_rng(seed)

    class KvsServicer(namespace["KeyValueStoreServicer"]):
        def _partition(self, ctx) -> Optional[int]:
            if not is_mica or partition_of_thread is None:
                return None
            return partition_of_thread.get(ctx.thread)

        def get(self, ctx, request):
            key = request.key
            partition = self._partition(ctx)
            cost = backend.costs.get_cost(len(key), value_bytes, rng)
            if is_mica:
                cost += backend.cross_partition_penalty_ns(key, partition)
                value = backend.do_get(key, partition)
            else:
                value = backend.do_get(key)
            yield from ctx.exec(cost)
            if value is None:
                return namespace["GetResponse"](hit=0, value=b"")
            return namespace["GetResponse"](hit=1, value=value)

        def set(self, ctx, request):
            key = request.key
            partition = self._partition(ctx)
            inline, deferred = backend.costs.set_split(
                len(key), len(request.value), rng
            )
            if is_mica:
                inline += backend.cross_partition_penalty_ns(key, partition)
                backend.do_set(key, request.value, partition)
            else:
                backend.do_set(key, request.value)
            yield from ctx.exec(inline)
            if deferred:
                ctx.defer(deferred)
            return namespace["SetResponse"](ok=1)

    return KvsServicer()


class KvsClient:
    """Typed client over the generated stub."""

    def __init__(self, namespace: Dict[str, Any], rpc_client: RpcClient,
                 key_bytes: int, value_bytes: int, use_lb_key: bool = False):
        self.namespace = namespace
        self.stub = namespace["KeyValueStoreClient"](rpc_client)
        self.rpc_client = rpc_client
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes
        self.use_lb_key = use_lb_key

    def _lb_key(self, key: bytes) -> Optional[int]:
        return mica_key_hash(key) if self.use_lb_key else None

    def get(self, index: int):
        key = encode_key(index, self.key_bytes)
        request = self.namespace["GetRequest"](key=key)
        response = yield from self.stub.get(request, lb_key=self._lb_key(key))
        return response

    def set(self, index: int):
        key = encode_key(index, self.key_bytes)
        request = self.namespace["SetRequest"](
            key=key, value=make_value(index, self.value_bytes)
        )
        response = yield from self.stub.set(request, lb_key=self._lb_key(key))
        return response

    def get_async(self, index: int, on_response=None):
        key = encode_key(index, self.key_bytes)
        request = self.namespace["GetRequest"](key=key)
        call = yield from self.stub.get_async(
            request, lb_key=self._lb_key(key), on_response=on_response
        )
        return call

    def set_async(self, index: int, on_response=None):
        key = encode_key(index, self.key_bytes)
        request = self.namespace["SetRequest"](
            key=key, value=make_value(index, self.value_bytes)
        )
        call = yield from self.stub.set_async(
            request, lb_key=self._lb_key(key), on_response=on_response
        )
        return call


@dataclass
class KvsWorkloadResult:
    """What Fig 12 reports for one (system, dataset, mix) cell."""

    throughput_mrps: float
    p50_us: float
    p99_us: float
    hit_rate: float
    drops: int
    drop_rate: float
    misrouted: int = 0


def generate_ops(nreq: int, num_keys: int, get_fraction: float,
                 skew: float = 0.99, seed: int = 11) -> List[Tuple[str, int]]:
    """Pre-generate the (op, key_index) trace for a zipfian workload."""
    if not 0.0 <= get_fraction <= 1.0:
        raise ValueError(f"get_fraction must be in [0, 1], got {get_fraction}")
    rng = make_rng(seed)
    zipf = Zipfian(num_keys, theta=skew, rng=rng)
    ops = []
    for _ in range(nreq):
        op = "get" if rng.random() < get_fraction else "set"
        ops.append((op, zipf.sample()))
    return ops


def run_kvs_workload(
    system: str = "mica",  # "mica" | "memcached"
    stack_name: str = "dagger",
    key_bytes: int = 8,
    value_bytes: int = 8,
    num_keys: int = 200_000_000,
    get_fraction: float = 0.5,
    skew: float = 0.99,
    load_mrps: Optional[float] = None,
    load_factor: float = 0.7,
    closed_loop_window: Optional[int] = None,
    nreq: int = 20000,
    num_threads: int = 1,
    batch_size: int = 4,
    load_balancer: Optional[str] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    warmup_ns: int = 300_000,
    model_llc_contention: bool = False,
    seed: int = 11,
) -> KvsWorkloadResult:
    """Run one Fig 12 cell and return its measurements.

    Two driving modes: open loop (Poisson at ``load_mrps``, defaulting to
    ``load_factor`` of the analytic capacity) for latency-vs-load studies,
    or closed loop (``closed_loop_window`` outstanding requests) for the
    peak-throughput and access-latency cells, like the paper's generator.
    """
    sim = Simulator()
    machine = Machine(sim, MachineConfig(), calibration, seed=seed)
    switch = ToRSwitch(sim, calibration, loopback=True)
    namespace = kvs_idl(key_bytes, value_bytes)

    if system == "mica":
        backend = MicaServer(num_partitions=num_threads)
        default_lb = "object-level"
    elif system == "memcached":
        backend = MemcachedServer()
        default_lb = "round-robin"
    else:
        raise ValueError(f"unknown KVS system {system!r}")
    lb = load_balancer or default_lb

    if stack_name == "dagger":
        hard = NicHardConfig(num_flows=num_threads)
        client_stack = DaggerStack(
            machine, switch, "kvs-client", hard=hard,
            soft=NicSoftConfig(batch_size=batch_size, auto_batch=True),
        )
        server_stack = DaggerStack(
            machine, switch, "kvs-server", hard=hard,
            soft=NicSoftConfig(batch_size=batch_size, auto_batch=True,
                               load_balancer=lb),
        )
    else:
        client_stack = make_stack(stack_name, machine, switch, "kvs-client")
        server_stack = make_stack(
            stack_name, machine, switch, "kvs-server", load_balancer=lb
        )

    server = RpcThreadedServer(sim, calibration, name=system)
    server_threads = machine.threads(num_threads, start_core=6)
    partition_of_thread = {
        thread: i for i, thread in enumerate(server_threads)
    }
    servicer = make_kvs_servicer(
        namespace, backend, value_bytes, partition_of_thread
    )
    servicer.register(server)
    for i, thread in enumerate(server_threads):
        server.add_server_thread(server_stack.port(i), thread,
                                 model=ThreadingModel.DISPATCH)
    server.start()

    client_threads = machine.threads(num_threads, start_core=0)
    if model_llc_contention:
        # §5.6: the co-located workload generator trashes the shared LLC
        # ("reads 1.49 GB of data at a very high rate"), slowing the
        # server threads it shares the chip with.
        for thread in client_threads:
            thread.mark_llc_heavy()
    clients = []
    for i in range(num_threads):
        conn = connect(client_stack, i, server_stack, i, load_balancer=lb)
        rpc_client = RpcClient(client_stack.port(i), client_threads[i], conn)
        clients.append(KvsClient(namespace, rpc_client, key_bytes,
                                 value_bytes, use_lb_key=(system == "mica")))

    # Pre-generate the trace and populate exactly the keys it touches.
    ops = generate_ops(nreq, num_keys, get_fraction, skew, seed)
    distinct = sorted({index for _, index in ops})
    backend.populate(
        (encode_key(i, key_bytes), make_value(i, value_bytes))
        for i in distinct
    )

    # Analytic single-thread capacity: backend service time + the RPC
    # framework's per-request CPU share (rx + dispatch + tx + jitter).
    rpc_overhead_ns = (calibration.cpu_rx_ns + calibration.cpu_dispatch_ns
                       + calibration.cpu_tx_ns
                       + 3 * calibration.cpu_jitter_mean_ns)
    mean_cost = (get_fraction * backend.costs.get_cost(key_bytes, value_bytes)
                 + (1 - get_fraction)
                 * backend.costs.set_cost(key_bytes, value_bytes)
                 + rpc_overhead_ns)
    if load_mrps is None:
        load_mrps = num_threads * load_factor * 1000.0 / mean_cost

    recorder = LatencyRecorder(warmup_ns=warmup_ns)
    done = sim.event()
    state = {"completed": 0, "expected": 0}
    interarrival = Exponential(mean=1000.0 / load_mrps * len(clients),
                               rng=seed + 1)

    def drive(client: KvsClient, trace: List[Tuple[str, int]]):
        next_arrival = sim.now
        for op, index in trace:
            if closed_loop_window is not None:
                while client.rpc_client.outstanding >= closed_loop_window:
                    yield sim.timeout(100)
                arrival = sim.now
            else:
                next_arrival += interarrival.sample_ns()
                if next_arrival > sim.now:
                    yield sim.timeout(next_arrival - sim.now)
                arrival = next_arrival

            def on_response(_msg, arrival=arrival):
                recorder.record(arrival, sim.now)
                state["completed"] += 1
                if (state["completed"] >= state["expected"]
                        and not done.triggered):
                    done.succeed()

            if op == "get":
                yield from client.get_async(index, on_response=on_response)
            else:
                yield from client.set_async(index, on_response=on_response)

    shards = [ops[i::len(clients)] for i in range(len(clients))]
    # Drops mean some responses never arrive; completion target excludes
    # an allowance discovered at drain time instead: wait for issued-drops.
    state["expected"] = len(ops)
    for client, shard in zip(clients, shards):
        sim.spawn(drive(client, shard))

    def waiter():
        # Finish when all responses arrived, or when the system drains with
        # drops (done may then never fire by count).
        yield done

    handle = sim.spawn(waiter())
    # Run; if drops occurred, the count never reaches expected, so run the
    # heap dry and use whatever completed.
    from repro.sim import SimulationError

    try:
        sim.run_until_done(handle)
    except SimulationError:
        pass
    sim.run()

    dropped = client_stack.drops + server_stack.drops
    total = recorder.count + recorder.discarded
    misrouted = backend.misrouted if isinstance(backend, MicaServer) else 0
    return KvsWorkloadResult(
        throughput_mrps=recorder.throughput_mrps(),
        p50_us=recorder.summary().p50_us,
        p99_us=recorder.summary().p99_us,
        hit_rate=backend.hit_rate,
        drops=dropped,
        drop_rate=dropped / max(1, total + dropped),
        misrouted=misrouted,
    )
