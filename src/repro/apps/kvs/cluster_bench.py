"""Multi-core KVS scaling over a distributed cluster.

The measurement section 5.6 explicitly could not take: "we do not show
results of multi-core scalability for MICA, since the extensive amount of
LLC contention [from running client and server on the same CPU] introduces
considerable instability... we plan to deploy Dagger to a cluster
environment with physically distributed FPGAs". This module takes it:
the MICA server runs alone on one machine; load comes from separate client
machines over a real ToR switch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.apps.kvs.client import (
    KvsClient,
    encode_key,
    generate_ops,
    kvs_idl,
    make_kvs_servicer,
    make_value,
)
from repro.apps.kvs.memcached import MemcachedServer
from repro.apps.kvs.mica import MicaServer
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.cluster import Cluster
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.rpc import RpcClient, RpcThreadedServer, ThreadingModel
from repro.sim import LatencyRecorder, Simulator, SimulationError
from repro.stacks import DaggerStack, connect

#: Client threads one 12-core machine contributes (2 SMT threads per core
#: on 8 of its cores; the rest absorb OS noise, as the paper's setup does).
CLIENT_THREADS_PER_MACHINE = 16


@dataclass
class ClusterKvsResult:
    """Multi-core scaling measurement."""

    server_threads: int
    client_machines: int
    throughput_mrps: float
    p50_us: float
    p99_us: float
    drop_rate: float


def run_kvs_multicore(
    system: str = "mica",
    server_threads: int = 4,
    key_bytes: int = 8,
    value_bytes: int = 8,
    num_keys: int = 1_000_000,
    get_fraction: float = 0.95,
    window_per_client: int = 24,
    nreq_per_thread: int = 4000,
    batch_size: int = 4,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 13,
) -> ClusterKvsResult:
    """Closed-loop saturation of a multi-threaded KVS server."""
    sim = Simulator()
    # Enough client machines to saturate the server threads.
    clients_needed = max(server_threads, 2)
    num_client_machines = max(
        1, math.ceil(clients_needed / CLIENT_THREADS_PER_MACHINE)
    )
    cluster = Cluster(sim, 1 + num_client_machines, calibration, seed=seed)
    server_machine = cluster.machine(0)
    namespace = kvs_idl(key_bytes, value_bytes)

    if system == "mica":
        backend = MicaServer(num_partitions=server_threads)
        balancer = "object-level"
    elif system == "memcached":
        backend = MemcachedServer()
        balancer = "round-robin"
    else:
        raise ValueError(f"unknown KVS system {system!r}")

    server_stack = DaggerStack(
        server_machine, cluster.switch, "kvs-server",
        hard=NicHardConfig(num_flows=server_threads, rx_ring_entries=256),
        soft=NicSoftConfig(batch_size=batch_size, auto_batch=True,
                           load_balancer=balancer),
    )
    server = RpcThreadedServer(sim, calibration, name=system)
    server_thread_objs = server_machine.threads(server_threads, start_core=0)
    partition_of_thread = {t: i for i, t in enumerate(server_thread_objs)}
    make_kvs_servicer(namespace, backend, value_bytes,
                      partition_of_thread).register(server)
    for i, thread in enumerate(server_thread_objs):
        server.add_server_thread(server_stack.port(i), thread,
                                 model=ThreadingModel.DISPATCH)
    server.start()

    # Client fleet: one thread per server thread, spread across machines.
    clients: List[KvsClient] = []
    for index in range(clients_needed):
        machine = cluster.machine(1 + index % num_client_machines)
        stack_name = f"kvs-client{index}"
        client_stack = DaggerStack(
            machine, cluster.switch, stack_name,
            hard=NicHardConfig(num_flows=1),
            soft=NicSoftConfig(batch_size=batch_size, auto_batch=True),
        )
        thread = machine.thread(
            (index // num_client_machines) % machine.config.cores,
            name=stack_name,
        )
        conn = connect(client_stack, 0, server_stack,
                       index % server_threads, load_balancer=balancer)
        clients.append(KvsClient(namespace, RpcClient(client_stack.port(0),
                                                      thread, conn),
                                 key_bytes, value_bytes,
                                 use_lb_key=(system == "mica")))

    nreq = nreq_per_thread * server_threads
    ops = generate_ops(nreq, num_keys, get_fraction, seed=seed)
    backend.populate(
        (encode_key(i, key_bytes), make_value(i, value_bytes))
        for i in sorted({index for _, index in ops})
    )

    recorder = LatencyRecorder(warmup_ns=150_000)
    done = sim.event()
    shards = [ops[i::len(clients)] for i in range(len(clients))]
    state = {"completed": 0,
             "expected": sum(len(shard) for shard in shards)}

    def drive(client: KvsClient, shard):
        for op, index in shard:
            while client.rpc_client.outstanding >= window_per_client:
                yield sim.timeout(100)
            arrival = sim.now

            def on_response(_msg, arrival=arrival):
                recorder.record(arrival, sim.now)
                state["completed"] += 1
                if (state["completed"] >= state["expected"]
                        and not done.triggered):
                    done.succeed()

            if op == "get":
                yield from client.get_async(index, on_response=on_response)
            else:
                yield from client.set_async(index, on_response=on_response)

    for client, shard in zip(clients, shards):
        sim.spawn(drive(client, shard))

    def waiter():
        yield done

    handle = sim.spawn(waiter())
    try:
        sim.run_until_done(handle)
    except SimulationError:
        pass  # drops; drain below
    sim.run()

    total = recorder.count + recorder.discarded
    drops = server_stack.drops
    return ClusterKvsResult(
        server_threads=server_threads,
        client_machines=num_client_machines,
        throughput_mrps=recorder.throughput_mrps(),
        p50_us=recorder.summary().p50_us,
        p99_us=recorder.summary().p99_us,
        drop_rate=drops / max(1, total + drops),
    )
