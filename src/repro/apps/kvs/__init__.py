"""Key-value stores: memcached and MICA over any RPC stack.

Both stores are *functional* (they really store and return bytes) with a
calibrated per-operation cost model attached, so correctness and timing are
exercised by the same requests.
"""

from repro.apps.kvs.hashtable import ChainedHashTable
from repro.apps.kvs.memcached import MemcachedServer, MEMCACHED_COSTS
from repro.apps.kvs.mica import MicaServer, MicaPartition, MICA_COSTS
from repro.apps.kvs.client import KvsClient, KvsWorkloadResult, kvs_idl, run_kvs_workload

__all__ = [
    "ChainedHashTable",
    "MemcachedServer",
    "MEMCACHED_COSTS",
    "MicaServer",
    "MicaPartition",
    "MICA_COSTS",
    "KvsClient",
    "KvsWorkloadResult",
    "kvs_idl",
    "run_kvs_workload",
]
