"""Chained hash table with versioned buckets.

The functional storage substrate both KVS servers share. Buckets carry a
version counter bumped on every write — the optimistic-concurrency scheme
MICA's lossless mode uses — which the tests use to verify write visibility.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple


class _Bucket:
    __slots__ = ("entries", "version")

    def __init__(self):
        self.entries: List[Tuple[bytes, bytes]] = []
        self.version = 0


class ChainedHashTable:
    """bytes -> bytes hash table with chaining and bucket versions."""

    def __init__(self, num_buckets: int = 1024):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = num_buckets
        self._buckets = [_Bucket() for _ in range(num_buckets)]
        self.size = 0

    def _bucket_for(self, key: bytes) -> _Bucket:
        return self._buckets[hash(key) % self.num_buckets]

    def get(self, key: bytes) -> Optional[bytes]:
        if not isinstance(key, bytes):
            raise TypeError(f"keys must be bytes, got {type(key).__name__}")
        bucket = self._bucket_for(key)
        for stored_key, value in bucket.entries:
            if stored_key == key:
                return value
        return None

    def set(self, key: bytes, value: bytes) -> bool:
        """Insert or update; returns True if the key was new."""
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values must be bytes")
        bucket = self._bucket_for(key)
        bucket.version += 1
        for index, (stored_key, _) in enumerate(bucket.entries):
            if stored_key == key:
                bucket.entries[index] = (key, value)
                return False
        bucket.entries.append((key, value))
        self.size += 1
        return True

    def delete(self, key: bytes) -> bool:
        bucket = self._bucket_for(key)
        for index, (stored_key, _) in enumerate(bucket.entries):
            if stored_key == key:
                bucket.version += 1
                del bucket.entries[index]
                self.size -= 1
                return True
        return False

    def version_of(self, key: bytes) -> int:
        """Version counter of the key's bucket (bumped by any write there)."""
        return self._bucket_for(key).version

    def chain_length(self, key: bytes) -> int:
        return len(self._bucket_for(key).entries)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        for bucket in self._buckets:
            yield from bucket.entries
