"""memcached ported onto the RPC stacks (section 5.6).

The paper changed ~50 lines of memcached to swap its TCP transport for
Dagger; here the store itself is a functional chained hash table with
memcached's measured cost profile (LRU bookkeeping, slab accounting, item
locks) attached: ~0.6 Mrps single-core under a 50/50 mix, ~1.5 Mrps under
95% GETs — the paper's Fig 12 ceilings. The original memcached protocol
semantics that matter to the experiments (GET hit/miss, SET upsert) are
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple  # noqa: F401 (Tuple used in annotations)

from repro.apps.kvs.hashtable import ChainedHashTable


@dataclass(frozen=True)
class KvsCosts:
    """Per-operation service-time model (nanoseconds).

    ``set_inline_ns`` is the part of a SET on the response's critical path;
    the remainder (LRU/slab housekeeping in memcached) is *deferred*: the
    thread stays busy after responding, so it costs throughput but not
    latency. ``slow_fraction``/``slow_extra_ns`` model occasional slow
    operations (long chains, lock retries) that shape the 99th percentile.
    """

    get_ns: int
    set_ns: int
    per_byte_ns: float = 0.0  # applied to key + value bytes moved
    set_inline_ns: Optional[int] = None  # None -> whole set is inline
    slow_fraction: float = 0.0
    slow_extra_ns: int = 0

    def _size_ns(self, key_bytes: int, value_bytes: int) -> int:
        return int((key_bytes + value_bytes) * self.per_byte_ns)

    def _slow_ns(self, rng) -> int:
        if rng is None or self.slow_fraction <= 0.0:
            return 0
        return self.slow_extra_ns if rng.random() < self.slow_fraction else 0

    def get_cost(self, key_bytes: int, value_bytes: int, rng=None) -> int:
        return (self.get_ns + self._size_ns(key_bytes, value_bytes)
                + self._slow_ns(rng))

    def set_cost(self, key_bytes: int, value_bytes: int, rng=None) -> int:
        """Total SET occupancy (inline + deferred)."""
        return (self.set_ns + self._size_ns(key_bytes, value_bytes)
                + self._slow_ns(rng))

    def set_split(self, key_bytes: int, value_bytes: int,
                  rng=None) -> "tuple[int, int]":
        """(inline_ns, deferred_ns) for one SET."""
        total = self.set_cost(key_bytes, value_bytes, rng)
        inline = self.set_inline_ns
        if inline is None or inline >= total:
            return total, 0
        return inline, total - inline


#: Calibrated to Fig 12: 0.6 Mrps at 50% GET, ~1.5 Mrps at 95% GET, with
#: SET latency dominated by the inline part (median KVS access 2.8-3.2 us).
MEMCACHED_COSTS = KvsCosts(
    get_ns=580, set_ns=2350, per_byte_ns=0.5,
    set_inline_ns=900, slow_fraction=0.02, slow_extra_ns=2600,
)


class MemcachedServer:
    """Functional memcached: one shared table, hashtable + LRU cost model."""

    def __init__(self, costs: KvsCosts = MEMCACHED_COSTS,
                 num_buckets: int = 1 << 16):
        self.costs = costs
        self.table = ChainedHashTable(num_buckets)
        self.gets = 0
        self.sets = 0
        self.hits = 0

    # -- functional operations (wrapped by the generated servicer glue) -------

    def do_get(self, key: bytes) -> Optional[bytes]:
        self.gets += 1
        value = self.table.get(key)
        if value is not None:
            self.hits += 1
        return value

    def do_set(self, key: bytes, value: bytes) -> None:
        self.sets += 1
        self.table.set(key, value)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    def populate(self, items) -> None:
        """Bulk-load (key, value) pairs without cost accounting."""
        for key, value in items:
            self.table.set(key, value)
