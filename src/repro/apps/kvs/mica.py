"""MICA KVS ported onto the RPC stacks (section 5.6, 5.7).

MICA partitions its object heap across cores and requires that all requests
for a key reach the partition that owns it (EREW). In the paper this is
enforced by the object-level load balancer synthesized into the Dagger NIC,
which hashes each request's key on the FPGA before steering (section 5.7).

Here each server thread owns one :class:`MicaPartition`. A request that
arrives at the wrong partition (e.g. under a round-robin balancer) is still
served correctly, but pays a cross-partition concurrency-control penalty
and increments ``misrouted`` — the ablation benchmark shows why MICA needs
the object-level balancer.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.kvs.hashtable import ChainedHashTable
from repro.apps.kvs.memcached import KvsCosts

#: Calibrated to Fig 12's MICA rows: ~4.6/5.2 Mrps (tiny) and ~4.2/4.8
#: (small) at 50%/95% GET on one core.
MICA_COSTS = KvsCosts(
    get_ns=85, set_ns=130, per_byte_ns=0.8,
    slow_fraction=0.02, slow_extra_ns=900,
)

#: Extra cost of touching a partition the handling core does not own
#: (cache-line transfer + locking, what EREW avoids).
CROSS_PARTITION_PENALTY_NS = 220


def mica_key_hash(key: bytes) -> int:
    """The key hash the object-level balancer applies (stable across runs)."""
    # FNV-1a, 64-bit: deterministic (unlike Python's salted hash()).
    value = 0xCBF29CE484222325
    for byte in key:
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class MicaPartition:
    """One core's shard of the object heap."""

    def __init__(self, index: int, num_buckets: int = 1 << 16):
        self.index = index
        self.table = ChainedHashTable(num_buckets)
        self.gets = 0
        self.sets = 0
        self.hits = 0


class MicaServer:
    """Partitioned KVS with EREW ownership."""

    def __init__(self, num_partitions: int, costs: KvsCosts = MICA_COSTS,
                 num_buckets_per_partition: int = 1 << 16,
                 owner_fn=None):
        if num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.costs = costs
        self.partitions: List[MicaPartition] = [
            MicaPartition(i, num_buckets_per_partition)
            for i in range(num_partitions)
        ]
        # Ownership must agree with whatever hash the NIC's object-level
        # balancer applies; callers whose balancer keys differ from
        # mica_key_hash(key bytes) inject their own mapping here.
        self._owner_fn = owner_fn
        self.misrouted = 0

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def owner_of(self, key: bytes) -> int:
        if self._owner_fn is not None:
            return self._owner_fn(key) % self.num_partitions
        return mica_key_hash(key) % self.num_partitions

    def _access(self, key: bytes, handling_partition: Optional[int]) -> MicaPartition:
        owner = self.owner_of(key)
        if handling_partition is not None and handling_partition != owner:
            self.misrouted += 1
        return self.partitions[owner]

    def cross_partition_penalty_ns(self, key: bytes,
                                   handling_partition: Optional[int]) -> int:
        if handling_partition is None:
            return 0
        if handling_partition == self.owner_of(key):
            return 0
        return CROSS_PARTITION_PENALTY_NS

    # -- functional operations --------------------------------------------------

    def do_get(self, key: bytes,
               handling_partition: Optional[int] = None) -> Optional[bytes]:
        partition = self._access(key, handling_partition)
        partition.gets += 1
        value = partition.table.get(key)
        if value is not None:
            partition.hits += 1
        return value

    def do_set(self, key: bytes, value: bytes,
               handling_partition: Optional[int] = None) -> None:
        partition = self._access(key, handling_partition)
        partition.sets += 1
        partition.table.set(key, value)

    @property
    def total_items(self) -> int:
        return sum(len(p.table) for p in self.partitions)

    @property
    def hit_rate(self) -> float:
        gets = sum(p.gets for p in self.partitions)
        hits = sum(p.hits for p in self.partitions)
        return hits / gets if gets else 0.0

    def populate(self, items) -> None:
        """Bulk-load pairs into their owning partitions, cost-free."""
        for key, value in items:
            self.partitions[self.owner_of(key)].table.set(key, value)
