"""The paper's applications, ported onto the simulated stacks.

- :mod:`repro.apps.kvs` — memcached and MICA key-value stores (section 5.6).
- :mod:`repro.apps.microservices` — the DeathStarBench-style Social Network
  and Media Serving graphs (section 3) and the 8-tier Flight Registration
  service (section 5.7).
"""
