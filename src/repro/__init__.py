"""repro: a simulation-based reproduction of Dagger (ASPLOS 2021).

Dagger is an FPGA-based RPC acceleration fabric coupled to the host CPU over
a coherent NUMA memory interconnect (Intel UPI via CCI-P) rather than PCIe.
This package reproduces the paper's system and its entire evaluation on top
of a from-scratch discrete-event simulator:

- :mod:`repro.sim` -- the discrete-event simulation kernel.
- :mod:`repro.hw` -- hardware substrate: CPUs, caches, PCIe/UPI interconnects,
  the Dagger NIC pipeline, Ethernet and the ToR switch.
- :mod:`repro.rpc` -- the Dagger RPC framework: IDL + code generator, client
  and server runtimes, threading models.
- :mod:`repro.stacks` -- pluggable end-host networking stacks (Dagger and the
  baselines it is compared against: Linux TCP, DPDK/eRPC, RDMA/FaSST, IX,
  NetDIMM).
- :mod:`repro.apps` -- the paper's applications: memcached, MICA KVS, and the
  DeathStarBench-style microservice graphs including the 8-tier Flight
  Registration service.
- :mod:`repro.workloads` -- workload and dataset generators.
- :mod:`repro.harness` -- experiment runners regenerating every table and
  figure of the paper's evaluation.
"""

__version__ = "1.0.0"

from repro.sim.kernel import Simulator
from repro.hw.platform import Machine, MachineConfig

__all__ = ["Simulator", "MachineConfig", "Machine", "__version__"]
