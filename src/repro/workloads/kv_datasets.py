"""KVS dataset shapes and request mixes (section 5.6).

Two datasets, as in MICA's evaluation: *tiny* (8 B keys, 8 B values, 200M
pairs for MICA / 10M for memcached) and *small* (16 B keys, 32 B values).
Two mixes: write-intensive (50/50) and read-intensive (95/5), accessed
under zipfian skew 0.99 (plus the 0.9999 variant used to push MICA's cache
locality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class KvDataset:
    """One dataset shape."""

    name: str
    key_bytes: int
    value_bytes: int
    mica_keys: int
    memcached_keys: int

    def num_keys(self, system: str) -> int:
        if system == "mica":
            return self.mica_keys
        if system == "memcached":
            return self.memcached_keys
        raise ValueError(f"unknown system {system!r}")


DATASETS: Dict[str, KvDataset] = {
    "tiny": KvDataset("tiny", key_bytes=8, value_bytes=8,
                      mica_keys=200_000_000, memcached_keys=10_000_000),
    "small": KvDataset("small", key_bytes=16, value_bytes=32,
                       mica_keys=200_000_000, memcached_keys=10_000_000),
}

#: get fraction per named mix.
WORKLOAD_MIXES: Dict[str, float] = {
    "write-intensive": 0.50,  # set/get = 50%/50%
    "read-intensive": 0.95,  # set/get = 5%/95%
}

DEFAULT_SKEW = 0.99
HIGH_SKEW = 0.9999
