"""Workload and dataset generators.

- :mod:`repro.workloads.rpc_sizes` — the Fig 4 RPC size distributions of
  the Social Network / Media tiers.
- :mod:`repro.workloads.kv_datasets` — the tiny/small KVS dataset shapes
  and YCSB-style mixes of section 5.6.
- :mod:`repro.workloads.sessions` — session-based open-loop traffic for
  cluster-scale runs (Zipf-skewed sessions, bursty/diurnal modulation).
"""

from repro.workloads.rpc_sizes import (
    SOCIAL_NETWORK_SIZES,
    MEDIA_SIZES,
    TierSizes,
    request_size_cdf,
    sample_sizes,
)
from repro.workloads.kv_datasets import DATASETS, KvDataset, WORKLOAD_MIXES
from repro.workloads.sessions import (
    BurstModulation,
    DiurnalModulation,
    MODULATIONS,
    SessionArrival,
    SessionWorkload,
    SteadyModulation,
    make_modulation,
    session_key,
)

__all__ = [
    "BurstModulation",
    "DiurnalModulation",
    "MODULATIONS",
    "SessionArrival",
    "SessionWorkload",
    "SteadyModulation",
    "make_modulation",
    "session_key",
    "SOCIAL_NETWORK_SIZES",
    "MEDIA_SIZES",
    "TierSizes",
    "request_size_cdf",
    "sample_sizes",
    "DATASETS",
    "KvDataset",
    "WORKLOAD_MIXES",
]
