"""RPC size distributions of the microservice tiers (Fig 4).

Section 3.2's measurements, encoded as per-tier empirical distributions:

- 75% of all RPC *requests* are smaller than 512 B;
- more than 90% of *responses* are smaller than 64 B;
- the Text tier's median request is ~580 B, while Media, User and UniqueID
  never exceed 64 B — the "one-size-fits-all is a poor fit" observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.sim.distributions import Empirical, RandomLike, make_rng


@dataclass(frozen=True)
class TierSizes:
    """Request/response size points (bytes, weight) for one tier."""

    tier: str
    request_points: Tuple[Tuple[int, float], ...]
    response_points: Tuple[Tuple[int, float], ...]

    def request_dist(self, rng: RandomLike = None) -> Empirical:
        return Empirical(self.request_points, rng=rng)

    def response_dist(self, rng: RandomLike = None) -> Empirical:
        return Empirical(self.response_points, rng=rng)

    def median_request(self) -> float:
        return _weighted_median(self.request_points)


def _weighted_median(points: Sequence[Tuple[int, float]]) -> float:
    total = sum(w for _, w in points)
    acc = 0.0
    for value, weight in sorted(points):
        acc += weight
        if acc >= total / 2:
            return float(value)
    return float(points[-1][0])


#: Fig 4 (right): per-tier request sizes for Social Network.
SOCIAL_NETWORK_SIZES: Dict[str, TierSizes] = {
    "media": TierSizes(
        "media",
        request_points=((32, 0.5), (48, 0.3), (64, 0.2)),
        response_points=((16, 0.7), (32, 0.3)),
    ),
    "user": TierSizes(
        "user",
        request_points=((24, 0.4), (40, 0.4), (64, 0.2)),
        response_points=((16, 0.6), (48, 0.4)),
    ),
    "unique_id": TierSizes(
        "unique_id",
        request_points=((16, 0.6), (32, 0.3), (64, 0.1)),
        response_points=((16, 0.9), (32, 0.1)),
    ),
    "text": TierSizes(
        "text",
        request_points=((128, 0.15), (320, 0.2), (580, 0.35),
                        (900, 0.2), (1400, 0.1)),
        response_points=((16, 0.6), (48, 0.35), (128, 0.05)),
    ),
    "user_mention": TierSizes(
        "user_mention",
        request_points=((48, 0.3), (96, 0.3), (180, 0.25), (320, 0.15)),
        response_points=((16, 0.7), (48, 0.3)),
    ),
    "url_shorten": TierSizes(
        "url_shorten",
        request_points=((64, 0.3), (120, 0.35), (240, 0.25), (480, 0.1)),
        response_points=((32, 0.8), (64, 0.2)),
    ),
    "home_timeline": TierSizes(
        "home_timeline",
        request_points=((24, 0.7), (48, 0.3)),
        response_points=((48, 0.45), (200, 0.3), (560, 0.25)),
    ),
    "post_storage": TierSizes(
        "post_storage",
        request_points=((320, 0.4), (640, 0.4), (1024, 0.2)),
        response_points=((16, 0.7), (64, 0.3)),
    ),
}

#: Media Serving (Fig 2) tiers have a similar footprint with a heavier
#: review-text tail.
MEDIA_SIZES: Dict[str, TierSizes] = {
    "movie_id": TierSizes(
        "movie_id",
        request_points=((24, 0.6), (48, 0.4)),
        response_points=((16, 0.8), (32, 0.2)),
    ),
    "rating": TierSizes(
        "rating",
        request_points=((24, 0.7), (40, 0.3)),
        response_points=((16, 0.9), (32, 0.1)),
    ),
    "review_text": TierSizes(
        "review_text",
        request_points=((256, 0.25), (512, 0.3), (768, 0.3), (1600, 0.15)),
        response_points=((16, 0.7), (48, 0.3)),
    ),
    "movie_review": TierSizes(
        "movie_review",
        request_points=((96, 0.4), (192, 0.4), (384, 0.2)),
        response_points=((32, 0.78), (128, 0.22)),
    ),
    "user_review": TierSizes(
        "user_review",
        request_points=((96, 0.45), (192, 0.35), (384, 0.2)),
        response_points=((32, 0.78), (128, 0.22)),
    ),
}


def sample_sizes(tiers: Dict[str, TierSizes], samples_per_tier: int = 1000,
                 rng: RandomLike = 23) -> Tuple[List[int], List[int]]:
    """Draw (requests, responses) samples across all tiers (Fig 4 left)."""
    generator = make_rng(rng)
    requests: List[int] = []
    responses: List[int] = []
    for sizes in tiers.values():
        request_dist = sizes.request_dist(generator)
        response_dist = sizes.response_dist(generator)
        for _ in range(samples_per_tier):
            requests.append(int(request_dist.sample()))
            responses.append(int(response_dist.sample()))
    return requests, responses


def request_size_cdf(samples: Sequence[int], at_bytes: int) -> float:
    """Fraction of samples <= at_bytes (a point on the Fig 4 CDF)."""
    if not samples:
        raise ValueError("empty sample set")
    return sum(1 for s in samples if s <= at_bytes) / len(samples)
