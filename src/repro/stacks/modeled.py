"""Calibrated models of baseline networking stacks.

The baselines of Table 3 (and the native transports of section 5.6) are
software or fixed-function systems the paper compares against using the
numbers *their* papers report. Re-implementing each of them gate-for-gate
is neither possible nor useful here; instead each baseline is a queueing
model with three calibrated knobs:

- per-request CPU TX/RX cost (sets the per-core throughput ceiling),
- a fixed one-way stack latency (sets the unloaded RTT),
- a per-byte wire cost (matters only for large RPCs).

Requests still flow through the same :class:`ToRSwitch` and the same RPC
runtime as Dagger, so queueing, load balancing across server threads, and
drops behave consistently across stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hw.calibration import Calibration
from repro.hw.nic.load_balancer import make_balancer
from repro.hw.switch import ToRSwitch
from repro.rpc.errors import ConnectionError_
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim.kernel import Simulator
from repro.sim.resources import Store
from repro.stacks.base import RpcStack, StackPort


@dataclass(frozen=True)
class ModeledStackParams:
    """Calibration of one baseline stack."""

    name: str
    cpu_tx_ns: int  # per-request CPU cost, transmit side
    cpu_rx_ns: int  # per-request CPU cost, receive side
    oneway_ns: int  # fixed stack+fabric latency, one direction
    per_byte_ns: float = 0.08  # wire + copy cost per payload byte
    rx_ring_entries: int = 256
    irq_cost_ns: int = 0  # kernel interrupt-side work per received packet
                          # (runs on IRQ threads when the stack has them)

    def __post_init__(self):
        for field_name in ("cpu_tx_ns", "cpu_rx_ns", "oneway_ns"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")


class ModeledPort(StackPort):
    """One channel endpoint of a modeled stack."""

    def __init__(self, stack: "ModeledStack", flow_id: int):
        self.stack = stack
        self.flow_id = flow_id
        self.address = stack.address
        self._rx_ring = Store(
            stack.sim,
            capacity=stack.params.rx_ring_entries,
            name=f"{stack.address}-rx{flow_id}",
            reject_when_full=True,
        )

    @property
    def rx_ring(self) -> Store:
        return self._rx_ring

    def send(self, packet: RpcPacket):
        # Returns the stack generator directly instead of delegating with
        # ``yield from`` — one less generator frame per packet sent.
        return self.stack.transmit(self.flow_id, packet)

    def cpu_tx_ns(self, packet: RpcPacket) -> int:
        return (self.stack.params.cpu_tx_ns
                + int(packet.payload_bytes * self.stack.params.per_byte_ns))

    def cpu_rx_ns(self, packet: RpcPacket) -> int:
        return (self.stack.params.cpu_rx_ns
                + int(packet.payload_bytes * self.stack.params.per_byte_ns))


class ModeledStack(RpcStack):
    """Machine-side instance of a calibrated baseline stack."""

    params: ModeledStackParams

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        switch: ToRSwitch,
        address: str,
        params: Optional[ModeledStackParams] = None,
        num_ports: int = 64,
        load_balancer: str = "round-robin",
    ):
        if params is not None:
            self.params = params
        if not hasattr(self, "params"):
            raise ValueError("ModeledStack requires params")
        self.sim = sim
        self.calibration = calibration
        self.switch = switch
        self.address = address
        self.name = self.params.name
        self._num_ports = num_ports
        self._ports: Dict[int, ModeledPort] = {}
        self._connections: Dict[int, str] = {}  # conn id -> remote address
        self._balancer = make_balancer(load_balancer)
        #: When set, requests are steered only across these port indices
        #: (the ports server threads actually poll).
        self.server_ports: List[int] = []
        #: Threads running the interrupt-side receive work (section 3.3's
        #: experiment binds these to a fixed set of cores). Empty -> IRQ
        #: work is skipped (the cost is folded into cpu_rx_ns).
        self.irq_threads: List = []
        self._next_irq = 0
        self.dropped = 0
        switch.register(address, self._ingress)

    # -- ports -----------------------------------------------------------------

    def port(self, index: int) -> ModeledPort:
        if not 0 <= index < self._num_ports:
            raise ValueError(
                f"port {index} out of range (num_ports={self._num_ports})"
            )
        if index not in self._ports:
            self._ports[index] = ModeledPort(self, index)
        return self._ports[index]

    @property
    def num_ports(self) -> int:
        return self._num_ports

    # -- connections ------------------------------------------------------------

    def register_connection(self, connection_id, local_flow, remote_address,
                            load_balancer=None) -> None:
        del local_flow, load_balancer
        self._connections[connection_id] = remote_address

    # -- data path ----------------------------------------------------------------

    def transmit(self, flow_id: int, packet: RpcPacket):
        """Send one packet: fixed latency + switch forwarding."""
        packet.src_address = self.address
        if packet.kind is RpcKind.REQUEST:
            packet.src_flow = flow_id
            remote = self._connections.get(packet.connection_id)
            if remote is None:
                raise ConnectionError_(
                    f"connection {packet.connection_id} not registered on "
                    f"{self.address}"
                )
            packet.dst_address = remote
        packet.stamp("sw_tx", self.sim.now)
        wire_ns = self.params.oneway_ns + int(
            packet.payload_bytes * self.params.per_byte_ns
        )
        sim = self.sim

        def _propagate():
            yield sim.timeout(wire_ns)
            self.switch.send(packet.dst_address, packet)

        sim.spawn(_propagate())
        yield sim.timeout(0)

    def _ingress(self, packet: RpcPacket) -> None:
        packet.stamp("nic_rx", self.sim.now)
        if self.irq_threads and self.params.irq_cost_ns > 0:
            thread = self.irq_threads[self._next_irq % len(self.irq_threads)]
            self._next_irq += 1

            def _softirq():
                yield from thread.exec(self.params.irq_cost_ns)
                self._deliver(packet)

            self.sim.spawn(_softirq())
            return
        self._deliver(packet)

    def _deliver(self, packet: RpcPacket) -> None:
        if packet.kind is RpcKind.RESPONSE:
            flow_id = packet.src_flow
        else:
            # Steer requests only across server ports (or, failing that,
            # ports software actually opened).
            port_ids = self.server_ports or sorted(self._ports) or [0]
            pick = self._balancer.pick_flow(packet, len(port_ids))
            flow_id = port_ids[pick]
        port = self.port(flow_id)
        packet.stamp("host_delivered", self.sim.now)
        if not port.rx_ring.try_put(packet):
            self.dropped += 1

    @property
    def drops(self) -> int:
        # self.dropped already counts every failed ring put; the ring's own
        # drop counter tracks the same events, so don't double count.
        return self.dropped
