"""User-space networking baselines: DPDK (MICA-native) and eRPC.

Two calibrations of the same model:

- :class:`DpdkStack` — MICA's original DPDK-based stack: kernel-bypass
  polling with heavy RX/TX burst batching; good per-core throughput but
  tens-of-microseconds access latency (the 4.4-5.2x gap of section 5.6).
- :class:`ERpcStack` — eRPC as reported in Table 3: 4.96 Mrps per core and
  2.3 us RTT for 32 B RPCs over a 0.3 us TOR.
"""

from __future__ import annotations

from repro.stacks.modeled import ModeledStack, ModeledStackParams

DPDK_PARAMS = ModeledStackParams(
    name="dpdk",
    cpu_tx_ns=300,  # mbuf alloc + TX burst amortized
    cpu_rx_ns=200,  # RX burst poll amortized
    oneway_ns=7200,  # burst-batching queueing delay
    per_byte_ns=0.1,
)

ERPC_PARAMS = ModeledStackParams(
    name="erpc",
    cpu_tx_ns=125,
    cpu_rx_ns=76,
    oneway_ns=649,
    per_byte_ns=0.08,
)


class DpdkStack(ModeledStack):
    """MICA's native DPDK transport."""

    params = DPDK_PARAMS
    name = DPDK_PARAMS.name


class ERpcStack(ModeledStack):
    """eRPC: raw-NIC-driver user-space RPCs (Kalia et al., NSDI'19)."""

    params = ERPC_PARAMS
    name = ERPC_PARAMS.name
