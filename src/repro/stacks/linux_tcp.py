"""Linux kernel TCP/IP stack model — memcached's native transport.

Calibrated so that memcached served over it shows the ~11.4x higher KVS
access latency the paper reports relative to memcached-over-Dagger
(section 5.6): syscall + kernel TCP/IP + interrupt costs on both CPU
paths, and a long in-kernel queueing/wakeup latency.
"""

from __future__ import annotations

from repro.stacks.modeled import ModeledStack, ModeledStackParams

LINUX_TCP_PARAMS = ModeledStackParams(
    name="linux-tcp",
    cpu_tx_ns=1600,  # send syscall, TCP/IP, skb management
    cpu_rx_ns=900,  # softirq + epoll wakeup + recv copy
    oneway_ns=15450,  # kernel queueing + interrupt latency
    per_byte_ns=0.25,  # copies in and out of kernel space
    irq_cost_ns=800,  # softirq receive work, when IRQ threads are attached
)


class LinuxTcpStack(ModeledStack):
    """Kernel networking + software RPC processing."""

    params = LINUX_TCP_PARAMS
    name = LINUX_TCP_PARAMS.name
