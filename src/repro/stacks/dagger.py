"""The Dagger stack: thin software shim over the hardware NIC.

This is the paper's design point: the host software only provides the RPC
API and zero-copy ring access; everything else happens on the NIC. The
port's CPU costs are therefore tiny — the calibrated ring-store /
completion-poll costs plus whatever the chosen CPU-NIC interface adds
(nothing for UPI, doorbells/MMIO stores for PCIe), plus the software
reassembly cost for RPCs larger than one cache line (section 4.7).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hw.interconnect.ccip import make_interface
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.nic.load_balancer import LoadBalancer
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcPacket
from repro.sim.resources import Store
from repro.stacks.base import RpcStack, StackPort


class DaggerPort(StackPort):
    """One NIC flow exposed as a stack port."""

    def __init__(self, stack: "DaggerStack", flow_id: int):
        self.stack = stack
        self.flow_id = flow_id
        self.address = stack.address

    @property
    def rx_ring(self) -> Store:
        return self.stack.nic.rx_ring(self.flow_id)

    def send(self, packet: RpcPacket):
        # Returns the NIC generator directly instead of delegating with
        # ``yield from`` — one less generator frame per packet sent.
        return self.stack.nic.send_from_host(self.flow_id, packet)

    def _reassembly_ns(self, packet: RpcPacket) -> int:
        if self.stack.nic.hard.hw_reassembly:
            # §4.7 extension: CAM-based on-chip reassembly; no CPU cost.
            return 0
        calibration = self.stack.calibration
        lines = packet.lines(calibration.cache_line_bytes)
        return (lines - 1) * calibration.cpu_reassembly_per_line_ns

    def cpu_tx_ns(self, packet: RpcPacket) -> int:
        calibration = self.stack.calibration
        return (calibration.cpu_tx_ns
                + self.stack.nic.tx_cpu_cost_ns(packet)
                + self._reassembly_ns(packet))

    def cpu_rx_ns(self, packet: RpcPacket) -> int:
        calibration = self.stack.calibration
        return calibration.cpu_rx_ns + self._reassembly_ns(packet)


class DaggerStack(RpcStack):
    """Machine-side Dagger stack owning one NIC instance."""

    name = "dagger"

    def __init__(
        self,
        machine: Machine,
        switch: ToRSwitch,
        address: str,
        hard: Optional[NicHardConfig] = None,
        soft: Optional[NicSoftConfig] = None,
        balancer: Optional[LoadBalancer] = None,
        nic: Optional[DaggerNic] = None,
    ):
        self.machine = machine
        self.calibration = machine.calibration
        self.address = address
        if nic is not None:
            self.nic = nic
        else:
            hard = hard or NicHardConfig()
            interface = make_interface(
                hard.interface, machine.sim, machine.calibration, machine.fpga
            )
            self.nic = DaggerNic(
                machine.sim,
                machine.calibration,
                interface,
                switch,
                address,
                hard=hard,
                soft=soft,
                balancer=balancer,
            )
            machine.fpga.attach_nic(self.nic)
        self._ports: Dict[int, DaggerPort] = {}

    @classmethod
    def from_nic(cls, machine: Machine, nic: DaggerNic) -> "DaggerStack":
        """Wrap an existing NIC (e.g. one built by VirtualizedFpga)."""
        stack = cls.__new__(cls)
        stack.machine = machine
        stack.calibration = machine.calibration
        stack.address = nic.address
        stack.nic = nic
        stack._ports = {}
        return stack

    def port(self, index: int) -> DaggerPort:
        if index not in self._ports:
            if not 0 <= index < self.nic.hard.num_flows:
                raise ValueError(
                    f"flow {index} out of range "
                    f"(num_flows={self.nic.hard.num_flows})"
                )
            self._ports[index] = DaggerPort(self, index)
        return self._ports[index]

    @property
    def num_ports(self) -> int:
        return self.nic.hard.num_flows

    def register_connection(self, connection_id, local_flow, remote_address,
                            load_balancer=None) -> None:
        self.nic.open_connection(
            connection_id, local_flow, remote_address, load_balancer
        )

    @property
    def drops(self) -> int:
        return self.nic.monitor.drops
