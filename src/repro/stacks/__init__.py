"""Pluggable end-host networking stacks.

Every stack exposes the same two-sided interface — *ports* with a ``send``
generator, an ``rx_ring`` to poll, and CPU cost accessors — so the RPC
runtime, the KVS applications, and the microservice graphs run unmodified
over any of them:

- :class:`~repro.stacks.dagger.DaggerStack` — the system under test: the
  full hardware-offloaded RPC stack over the simulated NIC (UPI or PCIe).
- :class:`~repro.stacks.linux_tcp.LinuxTcpStack` — kernel TCP/IP + software
  RPC (memcached's native transport).
- :class:`~repro.stacks.dpdk.DpdkStack` / ``ERpcStack`` — user-space
  networking: MICA's native DPDK transport and the eRPC baseline.
- :class:`~repro.stacks.rdma.FasstRdmaStack` — two-sided RDMA datagram RPCs.
- :class:`~repro.stacks.ix.IxStack` — the IX protected dataplane OS.
- :class:`~repro.stacks.netdimm.NetDimmStack` — the integrated in-DIMM NIC
  (message-level only, as in Table 3).
"""

from repro.stacks.base import RpcStack, StackPort, connect
from repro.stacks.dagger import DaggerStack
from repro.stacks.modeled import ModeledStack, ModeledStackParams
from repro.stacks.linux_tcp import LinuxTcpStack
from repro.stacks.dpdk import DpdkStack, ERpcStack
from repro.stacks.rdma import FasstRdmaStack
from repro.stacks.ix import IxStack
from repro.stacks.netdimm import NetDimmStack
from repro.stacks.registry import STACKS, make_stack

__all__ = [
    "RpcStack",
    "StackPort",
    "connect",
    "DaggerStack",
    "ModeledStack",
    "ModeledStackParams",
    "LinuxTcpStack",
    "DpdkStack",
    "ERpcStack",
    "FasstRdmaStack",
    "IxStack",
    "NetDimmStack",
    "STACKS",
    "make_stack",
]
