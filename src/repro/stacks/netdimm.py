"""NetDIMM baseline (Table 3): an ASIC NIC integrated into DIMM memory.

NetDIMM transfers raw 64 B *messages* (it "does not focus on RPC stacks"),
so Table 3 reports no RPC throughput for it; only the 2.2 us RTT row is
reproduced. CPU costs are tiny because delivery happens inside the memory
subsystem.
"""

from __future__ import annotations

from repro.stacks.modeled import ModeledStack, ModeledStackParams

NETDIMM_PARAMS = ModeledStackParams(
    name="netdimm",
    cpu_tx_ns=60,
    cpu_rx_ns=40,
    oneway_ns=700,
    per_byte_ns=0.05,
)


class NetDimmStack(ModeledStack):
    """In-DIMM integrated NIC (message-level only)."""

    params = NETDIMM_PARAMS
    name = NETDIMM_PARAMS.name
