"""IX dataplane-OS baseline (Table 3).

IX batches adaptively through its protected dataplane, which costs
latency: 11.4 us RTT and ~1.5 Mrps per core for 64 B messages.
"""

from __future__ import annotations

from repro.stacks.modeled import ModeledStack, ModeledStackParams

IX_PARAMS = ModeledStackParams(
    name="ix",
    cpu_tx_ns=420,  # dataplane TX half of the 666 ns/req budget
    cpu_rx_ns=246,
    oneway_ns=4734,  # adaptive batching delay
    per_byte_ns=0.1,
)


class IxStack(ModeledStack):
    """IX: protected dataplane OS."""

    params = IX_PARAMS
    name = IX_PARAMS.name
