"""Name -> stack factory registry.

The harness selects stacks by name ("dagger", "linux-tcp", ...). Dagger
needs a :class:`Machine` (it owns real NIC hardware); the modeled baselines
only need the simulator and a switch.
"""

from __future__ import annotations

from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.stacks.base import RpcStack
from repro.stacks.dagger import DaggerStack
from repro.stacks.dpdk import DpdkStack, ERpcStack
from repro.stacks.ix import IxStack
from repro.stacks.linux_tcp import LinuxTcpStack
from repro.stacks.netdimm import NetDimmStack
from repro.stacks.rdma import FasstRdmaStack

STACKS = {
    "dagger": DaggerStack,
    "linux-tcp": LinuxTcpStack,
    "dpdk": DpdkStack,
    "erpc": ERpcStack,
    "fasst-rdma": FasstRdmaStack,
    "ix": IxStack,
    "netdimm": NetDimmStack,
}


def make_stack(
    name: str,
    machine: Machine,
    switch: ToRSwitch,
    address: str,
    **kwargs,
) -> RpcStack:
    """Build a stack instance by name on the given machine."""
    try:
        cls = STACKS[name]
    except KeyError:
        raise ValueError(
            f"unknown stack {name!r}; choose from {sorted(STACKS)}"
        ) from None
    if cls is DaggerStack:
        return DaggerStack(machine, switch, address, **kwargs)
    return cls(machine.sim, machine.calibration, switch, address, **kwargs)
