"""FaSST-style two-sided RDMA datagram RPC baseline (Table 3).

RDMA offloads transport to the adapter but keeps RPC processing on the
host CPU, and the adapter sits across PCIe — both costs show up in the
calibration: 4.8 Mrps per core (208 ns CPU per RPC) and a 2.8 us RTT for
48 B RPCs.
"""

from __future__ import annotations

from repro.stacks.modeled import ModeledStack, ModeledStackParams

FASST_PARAMS = ModeledStackParams(
    name="fasst-rdma",
    cpu_tx_ns=130,  # WQE build + doorbell
    cpu_rx_ns=78,  # CQE poll + RPC layer
    oneway_ns=892,  # PCIe crossing + adapter processing
    per_byte_ns=0.08,
)


class FasstRdmaStack(ModeledStack):
    """Two-sided RDMA (UD send/recv) RPCs."""

    params = FASST_PARAMS
    name = FASST_PARAMS.name
