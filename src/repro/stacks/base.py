"""Stack interface: ports, stacks, and connection setup.

A :class:`StackPort` is one endpoint channel (for Dagger: a NIC flow and
its ring pair). The RPC runtime drives ports only through this interface,
which is what lets the paper's applications be "ported with minimal
changes" between stacks — here, with zero changes.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.rpc.messages import RpcPacket
from repro.sim.resources import Store


class StackPort:
    """One endpoint channel of a stack."""

    address: str = ""
    flow_id: int = 0

    @property
    def rx_ring(self) -> Store:
        """The ring software polls for incoming packets."""
        raise NotImplementedError

    def send(self, packet: RpcPacket) -> Generator:
        """Hand a packet to the stack (a generator; may block)."""
        raise NotImplementedError

    def cpu_tx_ns(self, packet: RpcPacket) -> int:
        """CPU cost of transmitting this packet through this stack."""
        raise NotImplementedError

    def cpu_rx_ns(self, packet: RpcPacket) -> int:
        """CPU cost of receiving this packet from this stack."""
        raise NotImplementedError


class RpcStack:
    """One machine-side instance of a networking stack."""

    name: str = "base"

    def port(self, index: int) -> StackPort:
        """The port for channel ``index`` (creating it if needed)."""
        raise NotImplementedError

    @property
    def num_ports(self) -> int:
        raise NotImplementedError

    def register_connection(
        self,
        connection_id: int,
        local_flow: int,
        remote_address: str,
        load_balancer: Optional[str] = None,
    ) -> None:
        """Record connection state on this side of the channel."""
        raise NotImplementedError

    @property
    def drops(self) -> int:
        """Packets this stack dropped (ring/FIFO overflow)."""
        return 0


def connect(
    client_stack: RpcStack,
    client_flow: int,
    server_stack: RpcStack,
    server_flow: int = 0,
    connection_id: Optional[int] = None,
    load_balancer: Optional[str] = None,
) -> int:
    """Open a connection between two stacks; returns the connection id.

    Registers the tuple on both sides, as the Connection Manager requires:
    the client side stores the server's address (for egress) and the client
    flow (for response steering); the server side stores the client's
    address and its preferred flow (for static load balancing).
    """
    from repro.hw.nic.dagger_nic import next_connection_id

    if connection_id is None:
        connection_id = next_connection_id()
    client_port = client_stack.port(client_flow)
    server_port = server_stack.port(server_flow)
    client_stack.register_connection(
        connection_id, client_flow, server_port.address, load_balancer
    )
    server_stack.register_connection(
        connection_id, server_flow, client_port.address, load_balancer
    )
    return connection_id
