"""Latency/throughput statistics helpers.

Experiments record per-request latencies in nanoseconds and report the same
aggregates the paper does: median, 90th and 99th percentiles, and sustained
throughput in requests per second of simulated time.

Two recording modes (ISSUE 8):

- ``"exact"`` (the default) keeps the raw per-request sample list, so
  percentiles are exact and signature-gated benches stay bit-identical.
- ``"sketch"`` streams every sample into a
  :class:`repro.obs.sketch.QuantileSketch` instead — O(1) memory per
  metric regardless of request count, quantiles within the sketch's
  relative-accuracy bound (1% by default), and shard merging without any
  retained samples. Million-request runs use this mode.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

#: Valid latency-recording modes, in documentation order.
RECORDING_MODES = ("exact", "sketch")


def _check_mode(mode: str) -> str:
    if mode not in RECORDING_MODES:
        raise ValueError(
            f"mode must be one of {RECORDING_MODES}, got {mode!r}"
        )
    return mode


def percentile(samples: Sequence[float], pct: float, *,
               presorted: bool = False) -> float:
    """Nearest-rank-with-interpolation percentile (numpy 'linear' method).

    ``pct`` is in [0, 100]. Raises ValueError on an empty sample set rather
    than returning a misleading 0. Callers that already hold sorted data
    (summaries computing several percentiles over one sample set) pass
    ``presorted=True`` to skip the O(n log n) re-sort.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    data = samples if presorted else sorted(samples)
    if len(data) == 1:
        return float(data[0])
    rank = (pct / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(data[low])
    frac = rank - low
    # a + frac*(b-a) is exact when a == b (a*(1-f)+b*f is not).
    return data[low] + frac * (data[high] - data[low])


@dataclass
class SummaryStats:
    """Aggregate view over a set of latency samples (nanoseconds)."""

    count: int
    mean_ns: float
    p50_ns: float
    p90_ns: float
    p99_ns: float
    min_ns: float
    max_ns: float

    # Retained sorted samples when built with ``keep_samples=True``; a plain
    # class attribute (NOT a dataclass field) so ``asdict``/``repr``/``==``
    # and every serialized signature that embeds a SummaryStats stay exactly
    # as before. Required by the exact path of :meth:`merge`.
    samples = None  # type: Optional[tuple]
    # Backing quantile sketch when built with :meth:`from_sketch`; same
    # non-field treatment as ``samples``. Lets :meth:`merge` combine
    # per-shard summaries without any retained samples.
    sketch = None  # type: Optional[object]

    @classmethod
    def from_samples(cls, samples: Sequence[float], *,
                     keep_samples: bool = False) -> "SummaryStats":
        if not samples:
            raise ValueError("no samples to summarize")
        data = sorted(samples)
        stats = cls(
            count=len(data),
            mean_ns=sum(data) / len(data),
            p50_ns=percentile(data, 50, presorted=True),
            p90_ns=percentile(data, 90, presorted=True),
            p99_ns=percentile(data, 99, presorted=True),
            min_ns=float(data[0]),
            max_ns=float(data[-1]),
        )
        if keep_samples:
            stats.samples = tuple(data)
        return stats

    @classmethod
    def from_sketch(cls, sketch) -> "SummaryStats":
        """Summary view over a :class:`repro.obs.sketch.QuantileSketch`.

        Count, mean, min, and max are exact (the sketch tracks them
        outside the buckets); the percentiles carry the sketch's
        relative-accuracy bound. The summary keeps a reference to the
        sketch, so :meth:`merge` can combine sketch-backed parts without
        any retained samples.
        """
        if sketch.count == 0:
            raise ValueError("no samples to summarize")
        stats = cls(
            count=sketch.count,
            mean_ns=sketch.mean,
            p50_ns=sketch.quantile(50),
            p90_ns=sketch.quantile(90),
            p99_ns=sketch.quantile(99),
            min_ns=float(sketch.min),
            max_ns=float(sketch.max),
        )
        stats.sketch = sketch
        return stats

    @classmethod
    def merge(cls, parts: Iterable["SummaryStats"]) -> "SummaryStats":
        """Combine per-shard summaries into one whole.

        Two paths, chosen by how the parts were built:

        - **Exact** — every part was built with ``keep_samples=True``: the
          merge k-way-merges the retained sorted sample runs and
          recomputes. The result is bit-identical to
          ``from_samples(concatenation_of_all_parts)`` — same sorted
          order, same left-to-right float summation — which is what lets
          the sharded harness report one summary that exactly matches a
          serial run's. The merged summary retains its samples, so merges
          compose.
        - **Sketch** — every part was built with :meth:`from_sketch`: the
          per-shard sketches merge losslessly (bucket counts add), so no
          samples need to have been retained anywhere. The merged summary
          keeps the merged sketch, so these merges compose too.

        Mixing the two kinds in one merge is an error — there is no way
        to combine a sketch with raw samples without silently downgrading
        the exact part's guarantee.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("no summaries to merge")
        sketch_parts = sum(1 for part in parts if part.sketch is not None)
        if sketch_parts:
            if sketch_parts != len(parts):
                raise ValueError(
                    "cannot merge sketch-backed and sample-backed "
                    "summaries together"
                )
            from repro.obs.sketch import QuantileSketch

            return cls.from_sketch(
                QuantileSketch.merged(part.sketch for part in parts)
            )
        for part in parts:
            if part.samples is None:
                raise ValueError(
                    "merge requires summaries built with keep_samples=True "
                    "or from_sketch"
                )
        data = list(heapq.merge(*(part.samples for part in parts)))
        stats = cls(
            count=len(data),
            mean_ns=sum(data) / len(data),
            p50_ns=percentile(data, 50, presorted=True),
            p90_ns=percentile(data, 90, presorted=True),
            p99_ns=percentile(data, 99, presorted=True),
            min_ns=float(data[0]),
            max_ns=float(data[-1]),
        )
        stats.samples = tuple(data)
        return stats

    @property
    def p50_us(self) -> float:
        return self.p50_ns / 1000.0

    @property
    def p90_us(self) -> float:
        return self.p90_ns / 1000.0

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1000.0


class LatencyRecorder:
    """Accumulates request latencies and start/finish times.

    ``warmup_ns`` lets experiments discard samples whose *finish* time falls
    inside the warmup window, so queue-filling transients do not skew tails.

    ``mode="sketch"`` streams latencies into a quantile sketch instead of
    the ``samples`` list: memory per recorder is bounded by the sketch's
    bucket count (O(1) in the request count), at the price of percentiles
    being approximate within ``sketch_accuracy`` relative error. The
    default ``"exact"`` mode is byte-for-byte the historical behaviour.
    """

    def __init__(self, name: str = "", warmup_ns: int = 0,
                 mode: str = "exact",
                 sketch_accuracy: Optional[float] = None):
        self.name = name
        self.warmup_ns = warmup_ns
        self.mode = _check_mode(mode)
        self.samples: List[int] = []
        self.sketch = None
        if mode == "sketch":
            from repro.obs.sketch import (
                DEFAULT_RELATIVE_ACCURACY,
                QuantileSketch,
            )

            self.sketch = QuantileSketch(
                sketch_accuracy if sketch_accuracy is not None
                else DEFAULT_RELATIVE_ACCURACY
            )
        elif sketch_accuracy is not None:
            raise ValueError("sketch_accuracy requires mode='sketch'")
        self.first_finish_ns: Optional[int] = None
        self.last_finish_ns: Optional[int] = None
        self.discarded = 0

    def record(self, start_ns: int, finish_ns: int) -> None:
        if finish_ns < start_ns:
            raise ValueError(f"finish {finish_ns} before start {start_ns}")
        if finish_ns < self.warmup_ns:
            self.discarded += 1
            return
        if self.first_finish_ns is None:
            self.first_finish_ns = finish_ns
        self.last_finish_ns = finish_ns
        if self.sketch is not None:
            self.sketch.add(finish_ns - start_ns)
        else:
            self.samples.append(finish_ns - start_ns)

    def extend(self, other: "LatencyRecorder") -> None:
        """Merge another recorder's samples (for per-thread recorders)."""
        if (self.sketch is None) != (other.sketch is None):
            raise ValueError(
                "cannot extend a recorder with one in a different mode"
            )
        if self.sketch is not None:
            self.sketch.merge(other.sketch)
        else:
            self.samples.extend(other.samples)
        self.discarded += other.discarded
        for attr in ("first_finish_ns", "last_finish_ns"):
            theirs = getattr(other, attr)
            if theirs is None:
                continue
            mine = getattr(self, attr)
            if mine is None:
                setattr(self, attr, theirs)
            elif attr == "first_finish_ns":
                setattr(self, attr, min(mine, theirs))
            else:
                setattr(self, attr, max(mine, theirs))

    @property
    def count(self) -> int:
        if self.sketch is not None:
            return self.sketch.count
        return len(self.samples)

    @property
    def tracked_samples(self) -> int:
        """Retained raw samples — the memory-guardrail observable.

        ``0`` in sketch mode no matter how many requests were recorded;
        equal to :attr:`count` in exact mode.
        """
        return len(self.samples)

    def summary(self, *, keep_samples: bool = False) -> SummaryStats:
        if self.sketch is not None:
            if keep_samples:
                raise ValueError(
                    "keep_samples is meaningless in sketch mode (merge "
                    "uses the sketch itself)"
                )
            return SummaryStats.from_sketch(self.sketch)
        return SummaryStats.from_samples(self.samples, keep_samples=keep_samples)

    def throughput_rps(self) -> float:
        """Sustained completion rate over the measured window, in req/s."""
        if self.count < 2 or self.first_finish_ns is None:
            raise ValueError("need at least two samples for throughput")
        window_ns = self.last_finish_ns - self.first_finish_ns
        if window_ns <= 0:
            raise ValueError("zero-length measurement window")
        return (self.count - 1) * 1e9 / window_ns

    def throughput_mrps(self) -> float:
        return self.throughput_rps() / 1e6


def merge_recorders(recorders: Iterable[LatencyRecorder], name: str = "") -> LatencyRecorder:
    """Combine several per-thread recorders into one aggregate view.

    The merged recorder adopts the first recorder's mode (and, in sketch
    mode, its accuracy), so sketch-backed recorders merge losslessly just
    like exact ones; mixing modes raises, as in :meth:`LatencyRecorder.extend`.
    """
    recorders = list(recorders)
    if recorders and recorders[0].sketch is not None:
        merged = LatencyRecorder(
            name=name, mode="sketch",
            sketch_accuracy=recorders[0].sketch.relative_accuracy)
    else:
        merged = LatencyRecorder(name=name)
    for recorder in recorders:
        merged.extend(recorder)
    return merged
