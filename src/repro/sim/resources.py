"""Shared resources: counted resources and FIFO stores.

These are the queueing building blocks of the hardware models: a
:class:`Resource` models a station with ``capacity`` parallel servers (a CPU
core, a bus with N outstanding slots, a DMA engine); a :class:`Store` models
a FIFO queue of items (a ring buffer, a flow FIFO, a completion queue).

Hot-path design (see docs/performance.md): grant/hand-off events are
single-shot and immediately yielded by every caller (``yield
resource.request()`` / ``yield store.get()``), so they are drawn from the
kernel's pooled-event free list instead of freshly allocated, and are
triggered with a single inlined heap push instead of the checked
:meth:`Event.succeed` path. The pooling contract this relies on: an event
returned by :meth:`Resource.request`, :meth:`Store.put` or :meth:`Store.get`
must be yielded before the process yields anything else, and must not be
kept after the yield resumes — the kernel recycles it as soon as its
callbacks have run.

Zero-yield fast paths: below saturation the dominant case is an *idle*
resource or a *non-empty* store, where the evented path above still pays a
pooled-event allocation, a now-queue append, and a full kernel dispatch
bounce per operation. :meth:`Resource.try_acquire`, :meth:`Store.try_get`
and :meth:`Store.try_put` resolve that case synchronously — no Event, no
now-queue entry, no kernel round-trip — and report failure so the caller
can fall back to the evented slow path::

    if not resource.try_acquire():
        yield resource.request()
    ...
    item = store.try_get()
    if item is None:
        item = yield store.get()
    ...
    if not store.try_put(item):
        yield store.put(item)          # only for non-rejecting stores

The fast paths never jump the FIFO queue (a Resource has waiters only at
capacity, where ``try_acquire`` fails; a Store has getters only when empty,
where ``try_get`` returns None and ``try_put`` hands off directly like
``put`` would), :meth:`Resource.release` pairs identically with both paths,
and :class:`Usage` integrals stay exact because every *mutating* fast path
advances the accounting exactly like its evented twin. The pooling rules
above are unchanged on the slow path. Note that a successful ``try_*``
resolves *before* events already queued at the current timestamp, so
converting a call site changes grant interleaving at equal timestamps —
such a conversion requires a determinism re-baseline (see
docs/performance.md §1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.kernel import _CONTROL_POOL, Event, SimulationError, Simulator


def _pooled_event(sim: Simulator) -> Event:
    """A recyclable event from the kernel pool (see module docstring)."""
    free = sim._control_free
    if free:
        return free.pop()
    event = Event(sim)
    event._recyclable = _CONTROL_POOL
    return event


def _trigger_now(sim: Simulator, event: Event, value: Any = None) -> None:
    """Trigger an untriggered event at the current time (hot-path inline)."""
    event.triggered = True
    event.value = value
    sim._nowq.append(event)


class QueueFullError(SimulationError):
    """Raised when putting into a bounded Store configured to reject."""


class Usage:
    """Exact busy-time / queue-length accounting for a Resource or Store.

    ``busy_ns`` is the integral of the occupancy value over simulated time
    (server·ns for a :class:`Resource`, item·ns for a :class:`Store`);
    ``queue_ns`` is the integral of the wait-queue length. Mutation sites
    call :meth:`advance` *before* each state transition, passing the value
    that held since the previous advance — so the integrals are exact
    accounting, not sampling. Disabled cost is one attribute load and a
    ``is not None`` check per mutation (the PR-1 tracer pattern).
    """

    __slots__ = ("start_ns", "last_ns", "busy_ns", "queue_ns", "peak",
                 "queue_peak")

    def __init__(self, now: int = 0):
        self.start_ns = now
        self.last_ns = now
        self.busy_ns = 0
        self.queue_ns = 0
        self.peak = 0
        self.queue_peak = 0

    def advance(self, now: int, value: int, queue: int = 0) -> None:
        """Integrate the interval [last_ns, now) at the *pre-mutation* state."""
        dt = now - self.last_ns
        if dt:
            self.busy_ns += dt * value
            self.queue_ns += dt * queue
            self.last_ns = now
        if value > self.peak:
            self.peak = value
        if queue > self.queue_peak:
            self.queue_peak = queue

    def busy_integral(self, now: int, value: int) -> int:
        """``busy_ns`` including the still-open interval at ``value``."""
        return self.busy_ns + (now - self.last_ns) * value

    def queue_integral(self, now: int, queue: int) -> int:
        """``queue_ns`` including the still-open interval at ``queue``."""
        return self.queue_ns + (now - self.last_ns) * queue

    def utilization(self, now: int, value: int, capacity: int = 1) -> float:
        """Mean occupancy fraction since accounting was enabled."""
        span = now - self.start_ns
        if span <= 0:
            return 0.0
        return self.busy_integral(now, value) / (span * capacity)


class Resource:
    """A resource with ``capacity`` servers and a FIFO wait queue.

    Usage inside a process::

        grant = yield resource.request()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_waiters", "usage")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: Optional :class:`Usage` accounting (None = zero-cost disabled).
        self.usage: Optional[Usage] = None

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def enable_usage(self) -> Usage:
        """Attach exact busy/queue-time accounting (idempotent)."""
        if self.usage is None:
            self.usage = Usage(self.sim.now)
        return self.usage

    def utilization(self, now: Optional[int] = None) -> float:
        """Mean busy fraction since :meth:`enable_usage` (0.0 if disabled)."""
        if self.usage is None:
            return 0.0
        if now is None:
            now = self.sim.now
        return self.usage.utilization(now, self._in_use, self.capacity)

    def request(self) -> Event:
        """Return an event that triggers when a server is granted.

        The event is pooled: yield it immediately, don't hold it.
        """
        sim = self.sim
        if self.usage is not None:
            self.usage.advance(sim.now, self._in_use, len(self._waiters))
        free = sim._control_free
        if free:
            event = free.pop()
        else:
            event = Event(sim)
            event._recyclable = _CONTROL_POOL
        if self._in_use < self.capacity:
            self._in_use += 1
            event.triggered = True
            sim._nowq.append(event)
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Zero-yield fast path: take a server now if one is idle.

        Returns True and occupies a server synchronously — no Event, no
        now-queue entry, no kernel dispatch — when ``in_use < capacity``;
        returns False otherwise (the caller then falls back to ``yield
        resource.request()``, queueing FIFO behind existing waiters).
        Never jumps the queue: waiters exist only while the resource is at
        capacity, where this fails. :meth:`release` pairs identically with
        both acquisition paths, and :class:`Usage` stays exact.
        """
        if self._in_use < self.capacity:
            if self.usage is not None:
                self.usage.advance(self.sim.now, self._in_use,
                                   len(self._waiters))
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Release one server; hands it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self.usage is not None:
            self.usage.advance(self.sim.now, self._in_use, len(self._waiters))
        if self._waiters:
            waiter = self._waiters.popleft()
            _trigger_now(self.sim, waiter)
        else:
            self._in_use -= 1

    def use(self, service_time: int):
        """Process helper: acquire, hold for ``service_time`` ns, release."""
        grant = yield self.request()
        del grant
        try:
            yield self.sim.timeout(service_time)
        finally:
            self.release()


class Store:
    """A FIFO store of items with optional capacity.

    ``put`` blocks when the store is full (unless ``reject_when_full``, in
    which case it fails the put event with :class:`QueueFullError` — used to
    model packet drops). ``get`` blocks when the store is empty.

    Events returned by ``put``/``get`` are pooled: yield them immediately,
    don't hold them (see module docstring).
    """

    __slots__ = ("sim", "capacity", "name", "reject_when_full", "_items",
                 "_getters", "_putters", "drops", "on_get", "usage")

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "",
        reject_when_full: bool = False,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.reject_when_full = reject_when_full
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying .value = item
        self.drops = 0
        #: Optional observer invoked with each item handed to a consumer
        #: (used e.g. by credit-based flow control to watch ring drains).
        self.on_get = None
        #: Optional :class:`Usage` accounting (None = zero-cost disabled).
        #: ``busy_ns`` integrates the queue depth, ``queue_ns`` the number
        #: of blocked putters (backpressure).
        self.usage: Optional[Usage] = None

    def __len__(self) -> int:
        return len(self._items)

    def enable_usage(self) -> Usage:
        """Attach exact depth/backpressure accounting (idempotent)."""
        if self.usage is None:
            self.usage = Usage(self.sim.now)
        return self.usage

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def can_accept(self) -> bool:
        """Would ``try_put`` succeed right now?

        True when a getter is parked (direct hand-off) or there is spare
        capacity. Lets callers make an accept/reject decision *before*
        committing side effects that a failed put could not roll back.
        """
        if self._getters:
            return True
        return self.capacity is None or len(self._items) < self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that triggers once the item is enqueued."""
        sim = self.sim
        if self.usage is not None:
            self.usage.advance(sim.now, len(self._items), len(self._putters))
        free = sim._control_free
        if free:
            event = free.pop()
        else:
            event = Event(sim)
            event._recyclable = _CONTROL_POOL
        capacity = self.capacity
        if self._getters:
            # Direct hand-off to the oldest waiting getter.
            getter = self._getters.popleft()
            _trigger_now(sim, getter, item)
            if self.on_get is not None:
                self.on_get(item)
            event.triggered = True
            sim._nowq.append(event)
        elif capacity is None or len(self._items) < capacity:
            self._items.append(item)
            event.triggered = True
            sim._nowq.append(event)
        elif self.reject_when_full:
            self.drops += 1
            event.fail(QueueFullError(f"store {self.name!r} full"))
        else:
            event.value = item
            self._putters.append(event)
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when full.

        Mirrors the evented :meth:`put` exactly short of the Event: a full
        ``reject_when_full`` store counts a drop (as ``put`` would when
        failing with :class:`QueueFullError`); a full *blocking* store
        counts nothing — the caller falls back to ``yield store.put(item)``
        and blocks, so nothing was dropped.
        """
        if self.usage is not None:
            self.usage.advance(self.sim.now, len(self._items),
                               len(self._putters))
        if self._getters:
            _trigger_now(self.sim, self._getters.popleft(), item)
            if self.on_get is not None:
                self.on_get(item)
            return True
        capacity = self.capacity
        if capacity is None or len(self._items) < capacity:
            self._items.append(item)
            return True
        if self.reject_when_full:
            self.drops += 1
        return False

    def get(self) -> Event:
        """Return an event that triggers with the oldest item."""
        sim = self.sim
        if self.usage is not None:
            self.usage.advance(sim.now, len(self._items), len(self._putters))
        free = sim._control_free
        if free:
            event = free.pop()
        else:
            event = Event(sim)
            event._recyclable = _CONTROL_POOL
        if self._items:
            item = self._items.popleft()
            event.triggered = True
            event.value = item
            sim._nowq.append(event)
            if self.on_get is not None:
                self.on_get(item)
            if self._putters and not self.is_full:
                putter = self._putters.popleft()
                self._items.append(putter.value)
                _trigger_now(sim, putter)
        elif self._putters:
            putter = self._putters.popleft()
            item = putter.value
            _trigger_now(sim, event, item)
            if self.on_get is not None:
                self.on_get(item)
            _trigger_now(sim, putter)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty.

        Zero-yield fast path of :meth:`get`: same FIFO order, same
        ``on_get`` notification, same blocked-putter admission — minus the
        Event and the kernel dispatch. Callers fall back to ``item = yield
        store.get()`` on None (which requires items to never be None; every
        in-tree store holds packets, slot ids, or credit tokens).
        """
        if self.usage is not None:
            self.usage.advance(self.sim.now, len(self._items),
                               len(self._putters))
        if self._items:
            item = self._items.popleft()
            if self.on_get is not None:
                self.on_get(item)
            if self._putters:
                capacity = self.capacity
                if capacity is None or len(self._items) < capacity:
                    putter = self._putters.popleft()
                    self._items.append(putter.value)
                    _trigger_now(self.sim, putter)
            return item
        return None

    def _notify_get(self, item: Any) -> None:
        if self.on_get is not None:
            self.on_get(item)

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            putter = self._putters.popleft()
            self._items.append(putter.value)
            _trigger_now(self.sim, putter)
