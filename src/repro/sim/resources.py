"""Shared resources: counted resources and FIFO stores.

These are the queueing building blocks of the hardware models: a
:class:`Resource` models a station with ``capacity`` parallel servers (a CPU
core, a bus with N outstanding slots, a DMA engine); a :class:`Store` models
a FIFO queue of items (a ring buffer, a flow FIFO, a completion queue).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.kernel import Event, SimulationError, Simulator


class QueueFullError(SimulationError):
    """Raised when putting into a bounded Store configured to reject."""


class Resource:
    """A resource with ``capacity`` servers and a FIFO wait queue.

    Usage inside a process::

        grant = yield resource.request()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that triggers when a server is granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one server; hands it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1

    def use(self, service_time: int):
        """Process helper: acquire, hold for ``service_time`` ns, release."""
        grant = yield self.request()
        del grant
        try:
            yield self.sim.timeout(service_time)
        finally:
            self.release()


class Store:
    """A FIFO store of items with optional capacity.

    ``put`` blocks when the store is full (unless ``reject_when_full``, in
    which case it fails the put event with :class:`QueueFullError` — used to
    model packet drops). ``get`` blocks when the store is empty.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "",
        reject_when_full: bool = False,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.reject_when_full = reject_when_full
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying .value = item
        self.drops = 0
        #: Optional observer invoked with each item handed to a consumer
        #: (used e.g. by credit-based flow control to watch ring drains).
        self.on_get = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that triggers once the item is enqueued."""
        event = Event(self.sim)
        if self._getters:
            # Direct hand-off to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            self._notify_get(item)
            event.succeed()
        elif not self.is_full:
            self._items.append(item)
            event.succeed()
        elif self.reject_when_full:
            self.drops += 1
            event.fail(QueueFullError(f"store {self.name!r} full"))
        else:
            event.value = item
            self._putters.append(event)
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (and counts a drop) when full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            self._notify_get(item)
            return True
        if not self.is_full:
            self._items.append(item)
            return True
        self.drops += 1
        return False

    def get(self) -> Event:
        """Return an event that triggers with the oldest item."""
        event = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            event.succeed(item)
            self._notify_get(item)
            self._admit_putter()
        elif self._putters:
            putter = self._putters.popleft()
            event.succeed(putter.value)
            self._notify_get(putter.value)
            putter.succeed()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if self._items:
            item = self._items.popleft()
            self._notify_get(item)
            self._admit_putter()
            return item
        return None

    def _notify_get(self, item: Any) -> None:
        if self.on_get is not None:
            self.on_get(item)

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            putter = self._putters.popleft()
            self._items.append(putter.value)
            putter.succeed()
