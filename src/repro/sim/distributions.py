"""Seeded random distributions used by workloads and service-time models.

Every distribution takes an explicit ``random.Random`` (or seed) so entire
experiments are reproducible. The Zipfian generator uses the standard
rejection-inversion-free CDF-table method, which is exact and fast enough for
the key-space sizes the paper uses (10M/200M keys are sampled through a
rank-compressed table).
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, Tuple, Union

RandomLike = Union[int, random.Random, None]


def make_rng(seed_or_rng: RandomLike) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


class Distribution:
    """Base class: a sampler of non-negative values."""

    def sample(self) -> float:
        raise NotImplementedError

    def sample_ns(self) -> int:
        """Sample rounded to integer nanoseconds, floored at 0."""
        return max(0, int(round(self.sample())))

    def mean(self) -> float:
        raise NotImplementedError


class Constant(Distribution):
    """Degenerate distribution: always ``value``."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError(f"negative constant {value}")
        self.value = value

    def sample(self) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value})"


class Exponential(Distribution):
    """Exponential with the given mean (used for Poisson arrivals)."""

    def __init__(self, mean: float, rng: RandomLike = None):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = mean
        self.rng = make_rng(rng)

    def sample(self) -> float:
        return self.rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean


class Uniform(Distribution):
    def __init__(self, low: float, high: float, rng: RandomLike = None):
        if low < 0 or high < low:
            raise ValueError(f"bad uniform range [{low}, {high}]")
        self.low = low
        self.high = high
        self.rng = make_rng(rng)

    def sample(self) -> float:
        return self.rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class LogNormal(Distribution):
    """Log-normal parameterised by its actual mean and sigma of log-space.

    Heavy-ish tails make this the default for microservice compute times.
    """

    def __init__(self, mean: float, sigma: float = 0.5, rng: RandomLike = None):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self._mean = mean
        self.sigma = sigma
        self.mu = math.log(mean) - sigma * sigma / 2.0
        self.rng = make_rng(rng)

    def sample(self) -> float:
        return self.rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return self._mean


class Empirical(Distribution):
    """Sample from weighted (value, weight) points — used for RPC sizes."""

    def __init__(self, points: Sequence[Tuple[float, float]], rng: RandomLike = None):
        if not points:
            raise ValueError("empirical distribution needs at least one point")
        self.values: List[float] = []
        self.cumulative: List[float] = []
        total = 0.0
        for value, weight in points:
            if weight < 0:
                raise ValueError(f"negative weight {weight}")
            total += weight
            self.values.append(value)
            self.cumulative.append(total)
        if total <= 0:
            raise ValueError("weights sum to zero")
        self.total = total
        self.rng = make_rng(rng)

    def sample(self) -> float:
        point = self.rng.random() * self.total
        index = bisect.bisect_left(self.cumulative, point)
        index = min(index, len(self.values) - 1)
        return self.values[index]

    def mean(self) -> float:
        previous = 0.0
        acc = 0.0
        for value, cum in zip(self.values, self.cumulative):
            acc += value * (cum - previous)
            previous = cum
        return acc / self.total


class Zipfian:
    """Zipf-distributed ranks over ``n`` items with skew ``theta``.

    Matches the YCSB/Atikoglu usage in the paper (theta = 0.99 and 0.9999).
    For large ``n`` the CDF table is rank-compressed: the first
    ``head_exact`` ranks are exact (they carry nearly all the mass at these
    skews) and the tail is bucketed geometrically, which keeps memory O(log n)
    while preserving the hit-rate behaviour that matters for cache studies.
    """

    HEAD_EXACT = 4096

    def __init__(self, n: int, theta: float = 0.99, rng: RandomLike = None):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        self.n = n
        self.theta = theta
        self.rng = make_rng(rng)
        head = min(n, self.HEAD_EXACT)
        weights: List[float] = [1.0 / (rank ** theta) for rank in range(1, head + 1)]
        # Geometric buckets over the tail; each bucket's mass is approximated
        # by the integral of x^-theta over the bucket.
        self._buckets: List[Tuple[int, int]] = [(rank, rank) for rank in range(1, head + 1)]
        low = head + 1
        while low <= n:
            high = min(n, low * 2 - 1)
            mass = self._integral_mass(low, high)
            weights.append(mass)
            self._buckets.append((low, high))
            low = high + 1
        self._cumulative: List[float] = []
        total = 0.0
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def _integral_mass(self, low: int, high: int) -> float:
        # integral of x^-theta from low-0.5 to high+0.5
        a, b = low - 0.5, high + 0.5
        if abs(self.theta - 1.0) < 1e-9:
            return math.log(b / a)
        exponent = 1.0 - self.theta
        return (b ** exponent - a ** exponent) / exponent

    def sample(self) -> int:
        """Return a 0-based item index (0 is the hottest)."""
        point = self.rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        index = min(index, len(self._buckets) - 1)
        low, high = self._buckets[index]
        if low == high:
            return low - 1
        return self.rng.randint(low, high) - 1

    def hot_fraction(self, top_k: int) -> float:
        """Approximate probability mass of the hottest ``top_k`` items."""
        if top_k < 1:
            return 0.0
        mass = 0.0
        for (low, high), cum in zip(self._buckets, self._cumulative):
            if high <= top_k:
                mass = cum
            else:
                break
        return mass / self._total
