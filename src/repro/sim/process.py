"""Generator-coroutine processes for the simulator.

A process wraps a generator. Each value the generator yields must be an
:class:`~repro.sim.kernel.Event` — or a non-negative ``int``, which is a
fast-path shorthand for ``sim.timeout(n)`` (same scheduling order, no
Timeout object). The process sleeps until
that event triggers, then resumes with the event's value (or the event's
exception thrown in). A process is itself an event that triggers when the
generator returns, so processes can wait on each other by yielding the
handle.

The resume path (``_resume`` -> ``generator.send``) runs once per simulated
event and is the hottest code in the repository. It is written as one flat
method: the generator's bound ``send``/``throw`` are cached at spawn, the
resume callback itself is cached (``_resume_bound``) so registering a
waiter allocates nothing, kernel-pooled control events carry the
start/wakeup/interrupt scheduling, and finish/schedule steps push straight
onto the heap instead of going through ``Simulator._schedule``.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator, Optional

from repro.sim.kernel import (
    _NO_POOL,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


class Process(Event):
    """Handle for a running process; also an event (triggers at exit)."""

    __slots__ = ("_generator", "_send", "_throw", "_resume_bound",
                 "_waiting_on", "name", "_defused", "_timer")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        try:
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you forget to call the process function?)"
            ) from None
        # Inlined Event.__init__ (a super() call per spawn is measurable on
        # fan-out-heavy models that spawn a process per packet).
        self.sim = sim
        self.callbacks = []
        self.triggered = False
        self.processed = False
        self.value = None
        self._exception = None
        self._recyclable = _NO_POOL
        self._generator = generator
        self._resume_bound = self._resume
        self._waiting_on: Optional[Event] = None
        self._defused = False
        # Lazily created reusable wakeup event for int-delay yields; its
        # value/_exception stay None forever and the run loop never resets
        # or recycles it (_recyclable == _NO_POOL).
        self._timer: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on a zero-delay event so creation order == start order.
        start = sim._control_event()
        start.callbacks.append(self._resume_bound)
        start.triggered = True
        sim._nowq.append(start)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def __repr__(self) -> str:
        state = "alive" if not self.triggered else (
            "failed" if self._exception is not None else "done")
        return f"<Process {self.name!r} {state}>"

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        sim = self.sim
        interrupt_event = sim._control_event()
        interrupt_event.callbacks.append(self._deliver_interrupt)
        interrupt_event.triggered = True
        # Carried as the event's exception so delivery is just _resume's
        # ordinary throw path; value mirrors it for introspection.
        interrupt_event.value = cause
        interrupt_event._exception = Interrupt(cause)
        sim._nowq.append(interrupt_event)

    def _deliver_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # finished between scheduling and delivery
        target = self._waiting_on
        if target is not None and self._resume_bound in target.callbacks:
            target.callbacks.remove(self._resume_bound)
            if target is self._timer:
                # The detached timer is still scheduled; it will fire as a
                # callback-less no-op. Drop it so a later int yield can't
                # re-arm the same object while that stale entry is pending.
                self._timer = None
        self._resume(event)  # throws event._exception (the Interrupt)

    def _resume(self, event: Event) -> None:
        """Advance the generator one step with the fired event's outcome."""
        # _waiting_on is deliberately NOT cleared here: it is rewritten at
        # every new wait below, and its only reader (_deliver_interrupt)
        # guards on ``triggered`` and on membership of our callback, so a
        # stale value between waits is never observed. Skipping the store
        # saves one write per resume on the hottest path in the repo.
        exception = event._exception
        try:
            if exception is None:
                target = self._send(event.value)
            else:
                target = self._throw(exception)
        except StopIteration as stop:
            self.triggered = True
            self.value = stop.value
            sim = self.sim
            sim._nowq.append(self)
            return
        except Exception as exc:  # includes Interrupt
            self.triggered = True
            self._exception = exc
            sim = self.sim
            sim._nowq.append(self)
            return
        if type(target) is int:
            # Timed-wait fast path: ``yield delay_ns`` is equivalent to
            # ``yield sim.timeout(delay_ns)`` but skips the Timeout object
            # entirely — the resume rides this process's reusable timer
            # event (no pool traffic, no state reset).
            if target < 0:
                self._finish_fail(
                    SimulationError(f"negative timeout delay: {target}")
                )
                return
            sim = self.sim
            timer = self._timer
            if timer is None:
                timer = self._timer = Event(sim)
                timer.triggered = True
            timer.callbacks.append(self._resume_bound)
            if target:
                heappush(sim._heap, (sim.now + target, sim._seq, timer))
                sim._seq += 1
            else:
                sim._nowq.append(timer)
            self._waiting_on = timer
            return
        if isinstance(target, Event):
            if not target.processed:
                self._waiting_on = target
                target.callbacks.append(self._resume_bound)
                return
            # Already fired: resume on a fresh zero-delay wakeup to preserve
            # run-to-completion semantics without recursion blowups.
            sim = self.sim
            wakeup = sim._control_event()
            wakeup.callbacks.append(self._resume_bound)
            wakeup.triggered = True
            if target._exception is not None:
                wakeup._exception = target._exception
            else:
                wakeup.value = target.value
            sim._nowq.append(wakeup)
            self._waiting_on = wakeup
            return
        if type(target) is float and target >= 0:
            # Slow-path parity with sim.timeout(float): rare, but models
            # with uncalibrated float latencies should keep working.
            sim = self.sim
            wakeup = sim._control_event()
            wakeup.callbacks.append(self._resume_bound)
            wakeup.triggered = True
            if target:
                heappush(sim._heap, (sim.now + target, sim._seq, wakeup))
                sim._seq += 1
            else:
                sim._nowq.append(wakeup)
            self._waiting_on = wakeup
            return
        self._finish_fail(
            SimulationError(
                f"process {self.name} yielded {target!r}; processes must "
                "yield Event instances or numeric delays"
            )
        )

    def _finish_fail(self, exc: BaseException) -> None:
        self.triggered = True
        self._exception = exc
        sim = self.sim
        sim._nowq.append(self)

    def defuse(self) -> None:
        """Mark this process's failure as observed (it won't re-raise)."""
        self._defused = True

    def _run_callbacks(self) -> None:
        self.processed = True
        callbacks = self.callbacks
        if callbacks:
            snapshot = tuple(callbacks)
            callbacks.clear()
            for callback in snapshot:
                callback(self)
        elif self._exception is not None and not self._defused:
            # Nobody is waiting on this process: surface the failure rather
            # than letting it pass silently.
            raise self._exception
