"""Generator-coroutine processes for the simulator.

A process wraps a generator. Each value the generator yields must be an
:class:`~repro.sim.kernel.Event`; the process sleeps until that event
triggers, then resumes with the event's value (or the event's exception
thrown in). A process is itself an event that triggers when the generator
returns, so processes can wait on each other by yielding the handle.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.kernel import Event, Interrupt, SimulationError, Simulator


class Process(Event):
    """Handle for a running process; also an event (triggers at exit)."""

    __slots__ = ("_generator", "_waiting_on", "name", "_defused")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you forget to call the process function?)"
            )
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._defused = False
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on a zero-delay event so creation order == start order.
        start = Event(sim)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        interrupt_event = Event(self.sim)
        interrupt_event.callbacks.append(self._deliver_interrupt)
        interrupt_event.value = cause
        interrupt_event.succeed(cause)

    def _deliver_interrupt(self, event: Event) -> None:
        if self._triggered:
            return  # finished between scheduling and delivery
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        self._step(Interrupt(event.value), throw=True)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exception is not None:
            self._step(event._exception, throw=True)
        else:
            self._step(event.value, throw=False)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except Interrupt as exc:
            self._finish_fail(exc)
            return
        except Exception as exc:
            self._finish_fail(exc)
            return
        if not isinstance(target, Event):
            self._finish_fail(
                SimulationError(
                    f"process {self.name} yielded {target!r}; processes must "
                    "yield Event instances"
                )
            )
            return
        self._waiting_on = target
        if target._processed:
            # Already fired: resume on a fresh zero-delay wakeup to preserve
            # run-to-completion semantics without recursion blowups.
            wakeup = Event(self.sim)
            wakeup.callbacks.append(self._resume)
            if target._exception is not None:
                wakeup.fail(target._exception)
            else:
                wakeup.succeed(target.value)
            self._waiting_on = wakeup
        else:
            target.callbacks.append(self._resume)

    def _finish_ok(self, value: Any) -> None:
        self._triggered = True
        self.value = value
        self.sim._schedule(self, 0)

    def _finish_fail(self, exc: BaseException) -> None:
        self._triggered = True
        self._exception = exc
        self.sim._schedule(self, 0)

    def defuse(self) -> None:
        """Mark this process's failure as observed (it won't re-raise)."""
        self._defused = True

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not callbacks and not self._defused:
            # Nobody is waiting on this process: surface the failure rather
            # than letting it pass silently.
            raise self._exception
