"""Discrete-event simulation kernel.

A small, fast, from-scratch DES library in the style of SimPy: generator
coroutines are *processes*, they yield *events* (timeouts, resource grants,
store gets/puts, other processes) and are resumed when those events trigger.
Simulated time is integer nanoseconds throughout the repository.
"""

from repro.sim.kernel import Simulator, Event, Timeout, Interrupt, SimulationError
from repro.sim.process import Process
from repro.sim.resources import Resource, Store, QueueFullError, Usage
from repro.sim.sharded import ShardedResult, run_sharded
from repro.sim.stats import LatencyRecorder, SummaryStats, percentile
from repro.sim.distributions import (
    Distribution,
    Constant,
    Exponential,
    LogNormal,
    Uniform,
    Empirical,
    Zipfian,
)

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Store",
    "QueueFullError",
    "Usage",
    "LatencyRecorder",
    "SummaryStats",
    "percentile",
    "ShardedResult",
    "run_sharded",
    "Distribution",
    "Constant",
    "Exponential",
    "LogNormal",
    "Uniform",
    "Empirical",
    "Zipfian",
]
