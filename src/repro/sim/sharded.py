"""Conservative-window parallel simulation: one event loop per host.

The single-core kernel plateaus around ~1.4M events/s (see
``BENCH_kernel.json``); the next order of magnitude comes from the physics
already in the model. Every cross-host packet must traverse the ToR switch,
which charges at least ``tor_delay_ns`` (0.3 us, Table 3 of the Dagger
paper) of wire time — so a host's events in the next ``tor_delay_ns`` of
simulated time can never be affected by what *other* hosts do during that
same span. That bound is the classic *lookahead* of conservative parallel
discrete-event simulation, and this module exploits it:

- every host owns a private :class:`~repro.sim.kernel.Simulator` plus a
  :class:`~repro.hw.switch.ShardBoundary` that captures cross-host egress
  instead of scheduling it;
- hosts are partitioned across *shards* (worker processes) with
  :func:`repro.hw.cluster.partition_hosts`;
- a coordinator repeatedly grants every host a horizon, each host runs
  :meth:`~repro.sim.kernel.Simulator.run_horizon` (strictly-before-``H``
  semantics), and captured egress is exchanged at the barrier.

**Fixed windows** grant the minimal safe horizon ``H = T_min + lookahead``
(``T_min`` = earliest pending event or undelivered boundary packet
anywhere). Why this is safe: any packet sent during a window starts at some
``t >= T_min`` and arrives at ``t + delay >= T_min + lookahead = H``, i.e.
never inside the window that produced it.

**Adaptive windows** (the default, ``window_mode="adaptive"``) grant the
*largest provably-safe* horizon instead. Alongside ``peek()``, each host
reports a conservative *earliest next egress* bound ``B_h`` (see
:meth:`repro.hw.switch.ShardBoundary.egress_bound`): assuming no further
injections, host ``h`` captures no cross-host send before ``B_h``. Each
undelivered boundary packet contributes ``arrival + floor(dst_address)``,
where the host-declared *ingress floor* bounds how quickly an arrival at
that address can cause a new cross-host send (e.g. a server's minimum
service time). The first cross-host send anywhere in the window is then no
earlier than::

    S = min( min_h B_h , min_pending (arrival + floor) )

(any causal chain's first cross-host hop is either injection-free — covered
by some ``B_h`` — or caused by a pending arrival — covered by its floor
term; later hops add at least one more ToR crossing). So every arrival the
window produces lands at ``>= S + lookahead``, and

    ``H = max(T_min, S) + lookahead``

is safe. When ``S`` is unbounded (every host proves it can never egress
again and nothing is in flight) the coordinator grants a *drain* window
(``run_horizon(None)``) that runs the remaining purely-local work to
completion in one round. Estimates are verified, not trusted: the
coordinator raises :class:`~repro.sim.kernel.SimulationError` for any
captured arrival that lands inside the window that produced it, so an
unsound ``egress_bound`` is fail-stop — it can never silently break
bit-identity. Hosts that report no estimate degrade to fixed-window
behavior exactly.

**Bit-identity** to serial is structural, not statistical: ``shards=1``
runs the *identical* windowed per-host algorithm in-process. Cross-shard
packets are injected with a canonical heap key derived from
``(arrival_ns, src_host, seq)`` (see ``Simulator.inject(seq_key=...)``), so
each host's event order is a pure function of the delivered packet set —
independent of window structure, shard layout, and injection batching.
That is what makes fixed and adaptive runs (and every shard count within a
mode) byte-identical: per-host results are shipped as canonical JSON (same
``sort_keys``/``separators`` contract as :mod:`repro.harness.sweep`), and
the mesh benchmarks gate on byte equality of those signatures.

**Boundary exchange** is batched: each worker pickles one buffer per
(window, destination shard) pair — live packets, one ``dumps`` — and the
coordinator relays the buffers without unpickling them (routing runs on a
small metadata list). The in-process ``shards=1`` runtime skips pickling
altogether and exchanges raw record lists. Shards whose hosts have nothing
to do before the horizon and no pending injections skip the pipe
round-trip entirely.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import pickle
import traceback
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import SimulationError

#: In-memory boundary record layout: ``(arrival_ns, src_host, seq,
#: dst_address, packet)``. ``(arrival_ns, src_host, seq)`` is the canonical
#: total order in which same-window arrivals commit; records travel between
#: shards inside one pickled buffer per (window, destination shard) pair.
BoundaryEvent = Tuple[int, int, int, str, Any]

#: ``egress_bound()`` sentinel: the host can prove it will never capture
#: another cross-host send unless a new boundary packet is injected.
EGRESS_NEVER = 1 << 62

#: Injected events tie-break below every locally-scheduled event (local
#: sequence numbers are >= 0) with a key that is a pure function of the
#: canonical (src_host, seq) identity — injection *batching* can then never
#: influence per-host event order.
_INJECT_BASE = -(1 << 62)
_SEQ_BITS = 40

_PROTO = pickle.HIGHEST_PROTOCOL


def _resolve(path: str) -> Callable[..., Any]:
    """Resolve a ``"module:attr"`` dotted path (sweep's convention)."""
    module_name, sep, attr = path.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"builder path must look like 'pkg.module:fn', got {path!r}"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise AttributeError(f"{module_name!r} has no attribute {attr!r}") from None


def canonical_json(value: Any) -> str:
    """Canonical JSON: same bytes for the same data on every path.

    Mirrors the sweep cache's normalization (``sort_keys`` + compact
    separators) so sharded result signatures compose with the rest of the
    determinism machinery.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _inject_key(src_host: int, seq: int) -> int:
    return _INJECT_BASE + (src_host << _SEQ_BITS) + seq


@dataclass
class ShardedResult:
    """Outcome of a sharded run, identical for every shard count.

    The simulation payload (``per_host``, ``events_per_host``,
    ``boundary_log``) is additionally identical across *window modes*; the
    window accounting (``windows``, ``stretched_windows``,
    ``skipped_shard_rounds``, ``boundary_*``) describes how the engine got
    there and legitimately differs between fixed and adaptive runs.
    """

    hosts: int
    shards: int
    lookahead_ns: int
    windows: int
    events_per_host: List[int]
    per_host: List[Any]
    #: Committed cross-shard deliveries as (arrival_ns, src_host, seq,
    #: dst_host) in commit order; only populated with record_boundary_log.
    boundary_log: Optional[List[Tuple[int, int, int, int]]] = field(default=None)
    #: "fixed" | "adaptive" — which horizon-granting policy ran.
    window_mode: str = "adaptive"
    #: Windows whose horizon was stretched past ``T_min + lookahead``
    #: (drain windows included).
    stretched_windows: int = 0
    #: Per-shard pipe round-trips elided because the shard provably had
    #: nothing to do before the horizon.
    skipped_shard_rounds: int = 0
    #: Cross-shard packets exchanged through the coordinator.
    boundary_packets: int = 0
    #: Bytes of pickled boundary buffers relayed through the coordinator.
    boundary_bytes: int = 0

    @property
    def events_total(self) -> int:
        return sum(self.events_per_host)


class _ShardRuntime:
    """Builds and drives the host simulators owned by one shard.

    Used verbatim by both execution modes — called directly in-process for
    ``shards=1``, or inside a worker process behind a pipe for
    ``shards>1`` — so the per-host work is the same code path either way.
    """

    def __init__(self, builder_path: str, host_ids: List[int],
                 params: Dict[str, Any], lookahead_ns: int,
                 local: bool = False):
        builder = _resolve(builder_path)
        self.hosts = {hid: builder(host_id=hid, **params) for hid in host_ids}
        self._address_to_host: Dict[str, int] = {}
        self._host_to_shard: List[int] = []
        #: In-process runtimes skip the pickle round-trip: buffers stay raw
        #: record lists (commit order and heap keys are unchanged either
        #: way, so the bytes-vs-list choice cannot affect results).
        self._local = local
        for hid, host in self.hosts.items():
            delay = host.boundary.delay_ns
            if delay < lookahead_ns:
                raise SimulationError(
                    f"host {hid} boundary delay {delay} ns is below the "
                    f"engine lookahead {lookahead_ns} ns — the conservative "
                    "window would miss its arrivals"
                )

    def hello(self):
        """Per-host addresses, peeks, egress bounds, and ingress floors."""
        addresses = {hid: host.boundary.addresses()
                     for hid, host in self.hosts.items()}
        peeks = {hid: host.sim.peek() for hid, host in self.hosts.items()}
        bounds = {hid: host.boundary.egress_bound()
                  for hid, host in self.hosts.items()}
        floors = {hid: dict(getattr(host.boundary, "ingress_floors", {}))
                  for hid, host in self.hosts.items()}
        return addresses, peeks, bounds, floors

    def set_peers(self, all_addresses, address_to_host, host_to_shard) -> None:
        for host in self.hosts.values():
            host.boundary.set_remote_addresses(all_addresses)
        self._address_to_host = dict(address_to_host)
        self._host_to_shard = list(host_to_shard)

    def window(self, horizon: Optional[int], blobs: List[bytes]):
        """Inject boundary arrivals, run one window, capture egress.

        ``blobs`` are pickled record buffers (one per source shard) whose
        records all target this shard's hosts. Returns
        ``(per_host, meta, out_blobs)`` where ``per_host`` maps host id to
        ``(next_event_time, egress_bound, events_dispatched)``, ``meta``
        lists captured egress as ``(arrival, src, seq, dst_host,
        dst_address)``, and ``out_blobs`` maps destination shard to one
        pickled buffer of captured records.
        """
        by_host: Dict[int, List[BoundaryEvent]] = {}
        for blob in blobs:
            records = blob if isinstance(blob, list) else pickle.loads(blob)
            for record in records:
                by_host.setdefault(
                    self._address_to_host[record[3]], []
                ).append(record)
        per_host = {}
        captured: List[BoundaryEvent] = []
        for hid in sorted(self.hosts):
            host = self.hosts[hid]
            sim = host.sim
            boundary = host.boundary
            batch = by_host.get(hid)
            if batch:
                # Canonical commit order, then a canonical heap key per
                # record: the destination's event order cannot depend on
                # which window delivered the batch.
                batch.sort(key=lambda record: record[:3])
                for arrival, src, seq, dst, packet in batch:
                    sim.inject(arrival, partial(boundary.deliver, dst, packet),
                               seq_key=_inject_key(src, seq))
            events = sim.run_horizon(horizon)
            captured.extend(boundary.drain_egress())
            per_host[hid] = (sim.peek(), boundary.egress_bound(), events)
        meta = []
        groups: Dict[int, List[BoundaryEvent]] = {}
        a2h = self._address_to_host
        for record in captured:
            try:
                dst_host = a2h[record[3]]
            except KeyError:
                raise SimulationError(
                    f"boundary packet for unknown address {record[3]!r} "
                    f"from host {record[1]}"
                ) from None
            meta.append((record[0], record[1], record[2], dst_host, record[3]))
            groups.setdefault(self._host_to_shard[dst_host], []).append(record)
        if self._local:
            out_blobs: Dict[int, Any] = groups
        else:
            out_blobs = {shard: pickle.dumps(records, protocol=_PROTO)
                         for shard, records in groups.items()}
        return per_host, meta, out_blobs

    def finish(self) -> Dict[int, str]:
        """Per-host results as canonical JSON strings.

        Hosts return plain JSON-able data from ``finish()``; shipping the
        canonical encoding (rather than live objects) guarantees the
        coordinator sees byte-identical payloads whether the host ran
        in-process or in a worker.
        """
        return {hid: canonical_json(host.finish())
                for hid, host in self.hosts.items()}


def _shard_worker(conn, builder_path: str, host_ids: List[int],
                  params: Dict[str, Any], lookahead_ns: int) -> None:
    """Worker process main loop: lockstep request/reply over one pipe."""
    try:
        runtime = _ShardRuntime(builder_path, host_ids, params, lookahead_ns)
        conn.send(("hello",) + runtime.hello())
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "peers":
                runtime.set_peers(message[1], message[2], message[3])
                conn.send(("ok",))
            elif kind == "window":
                conn.send(("window",) + runtime.window(message[1], message[2]))
            elif kind == "finish":
                conn.send(("finish", runtime.finish()))
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown message {kind!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class _LocalShards:
    """In-process execution of every host (``shards=1``)."""

    def __init__(self, builder_path, host_ids, params, lookahead_ns):
        self.runtime = _ShardRuntime(builder_path, host_ids, params,
                                     lookahead_ns, local=True)
        self._reply = None

    def hello(self):
        return self.runtime.hello()

    def set_peers(self, all_addresses, address_to_host, host_to_shard):
        self.runtime.set_peers(all_addresses, address_to_host, host_to_shard)

    def send_window(self, horizon, blobs):
        self._reply = self.runtime.window(horizon, blobs)

    def recv_window(self):
        reply, self._reply = self._reply, None
        return reply

    def finish(self):
        return self.runtime.finish()

    def close_conn(self):
        pass

    def reap(self):
        pass

    def close(self):
        pass


class _RemoteShard:
    """A worker process driven over a duplex pipe."""

    def __init__(self, ctx, builder_path, host_ids, params, lookahead_ns):
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_worker,
            args=(child, builder_path, host_ids, params, lookahead_ns),
            daemon=True,
        )
        self.process.start()
        child.close()

    def _recv(self, expected: str):
        try:
            message = self.conn.recv()
        except EOFError:
            raise SimulationError(
                "shard worker died without reporting an error"
            ) from None
        if message[0] == "error":
            raise SimulationError(f"shard worker failed:\n{message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol misuse
            raise SimulationError(
                f"expected {expected!r} reply, got {message[0]!r}"
            )
        return message[1:]

    def hello(self):
        return self._recv("hello")

    def set_peers(self, all_addresses, address_to_host, host_to_shard):
        self.conn.send(("peers", all_addresses, address_to_host,
                        host_to_shard))
        self._recv("ok")

    def send_window(self, horizon, blobs):
        self.conn.send(("window", horizon, blobs))

    def recv_window(self):
        return self._recv("window")

    def finish(self):
        self.conn.send(("finish",))
        return self._recv("finish")[0]

    def close_conn(self):
        """Phase 1 of teardown: EOF the pipe so the worker unblocks."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    def reap(self):
        """Phase 2 of teardown: join, escalating to terminate/kill."""
        self.process.join(timeout=2)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.terminate()
            self.process.join(timeout=2)
        if self.process.is_alive():  # pragma: no cover - unkillable worker
            kill = getattr(self.process, "kill", self.process.terminate)
            kill()
            self.process.join(timeout=2)

    def close(self):
        self.close_conn()
        self.reap()


def _close_handles(handles: List[Any]) -> None:
    """Tear every shard down, errors-path safe.

    Closing all pipes *first* delivers EOF to every worker at once (a
    worker blocked in ``recv`` exits immediately), then the joins run —
    so teardown latency is one worker's exit time, not the sum, and no
    daemon outlives the run even when the coordinator raised mid-window.
    """
    for handle in handles:
        handle.close_conn()
    for handle in handles:
        handle.reap()


def run_sharded(
    builder: str,
    hosts: int,
    params: Optional[Dict[str, Any]] = None,
    shards: int = 1,
    *,
    lookahead_ns: int,
    window_mode: str = "adaptive",
    record_boundary_log: bool = False,
    max_windows: Optional[int] = None,
) -> ShardedResult:
    """Run ``hosts`` per-host simulators to completion across ``shards``.

    ``builder`` is a ``"module:fn"`` path (the sweep executor's dotted-path
    convention, so workers can re-resolve it); it is called as
    ``builder(host_id=i, **params)`` and must return an object exposing
    ``sim`` (a :class:`~repro.sim.kernel.Simulator`), ``boundary`` (a
    :class:`~repro.hw.switch.ShardBoundary` or duck-type equivalent whose
    ``delay_ns`` is at least ``lookahead_ns``), and ``finish()`` returning
    plain JSON-able data.

    ``window_mode`` selects the horizon policy: ``"fixed"`` grants the
    minimal ``T_min + lookahead`` every round; ``"adaptive"`` (default)
    stretches to the largest provably-safe horizon using the hosts'
    ``egress_bound()`` estimates and ingress floors (see module docstring).
    Simulation results are bit-identical across modes *and* shard counts;
    only the window accounting differs.

    The run terminates when no host has pending events and no boundary
    packet is in flight.
    """
    # Imported lazily: repro.sim is the bottom layer and must stay
    # importable without pulling in the hardware models; only the engine
    # entry point needs the topology partitioner.
    from repro.hw.cluster import partition_hosts

    if window_mode not in ("fixed", "adaptive"):
        raise ValueError(
            f"window_mode must be 'fixed' or 'adaptive', got {window_mode!r}"
        )
    adaptive = window_mode == "adaptive"
    params = dict(params or {})
    assignment = partition_hosts(hosts, shards)
    host_to_shard = [0] * hosts
    for shard_index, host_ids in enumerate(assignment):
        for hid in host_ids:
            host_to_shard[hid] = shard_index
    handles: List[Any] = []
    try:
        if shards == 1:
            handles.append(
                _LocalShards(builder, assignment[0], params, lookahead_ns)
            )
        else:
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            for host_ids in assignment:
                handles.append(
                    _RemoteShard(ctx, builder, host_ids, params, lookahead_ns)
                )

        address_to_host: Dict[str, int] = {}
        next_times: Dict[int, Optional[int]] = {}
        bounds: Dict[int, Optional[int]] = {}
        floor_by_address: Dict[str, int] = {}
        all_addresses: List[str] = []
        for handle, host_ids in zip(handles, assignment):
            addresses, peeks, host_bounds, floors = handle.hello()
            for hid in host_ids:
                next_times[hid] = peeks[hid]
                bounds[hid] = host_bounds[hid]
                for address in addresses[hid]:
                    if address in address_to_host:
                        raise SimulationError(
                            f"address {address!r} registered on hosts "
                            f"{address_to_host[address]} and {hid}"
                        )
                    address_to_host[address] = hid
                    all_addresses.append(address)
                for address, floor in floors[hid].items():
                    floor_by_address[address] = floor
        for handle in handles:
            handle.set_peers(sorted(all_addresses), address_to_host,
                             host_to_shard)

        # Undelivered boundary traffic, grouped by destination shard:
        # routing metadata (arrival, src, seq, dst_host, dst_address) next
        # to the opaque pickled buffers the coordinator relays untouched.
        pending_meta: Dict[int, List[Tuple[int, int, int, int, str]]] = {
            index: [] for index in range(len(handles))
        }
        pending_blobs: Dict[int, List[bytes]] = {
            index: [] for index in range(len(handles))
        }
        events_per_host = {hid: 0 for hid in range(hosts)}
        windows = 0
        stretched_windows = 0
        skipped_shard_rounds = 0
        boundary_packets = 0
        boundary_bytes = 0
        boundary_log: Optional[List[Tuple[int, int, int, int]]] = (
            [] if record_boundary_log else None
        )
        while True:
            candidates = [t for t in next_times.values() if t is not None]
            for records in pending_meta.values():
                candidates.extend(record[0] for record in records)
            if not candidates:
                break
            if max_windows is not None and windows >= max_windows:
                raise SimulationError(
                    f"exceeded max_windows={max_windows} (windows={windows}, "
                    f"pending={sum(map(len, pending_meta.values()))})"
                )
            t_min = min(candidates)
            base_horizon = t_min + lookahead_ns
            horizon: Optional[int] = base_horizon
            if adaptive:
                # Earliest provably-possible cross-host send anywhere: the
                # hosts' injection-free bounds, floored at peek() when a
                # host makes no claim, plus one floor term per in-flight
                # arrival. See the module docstring for the safety proof.
                earliest_send = EGRESS_NEVER
                for hid in range(hosts):
                    bound = bounds[hid]
                    if bound is None:
                        bound = next_times[hid]
                        if bound is None:
                            continue  # no events, no claim: ingress-only
                    if bound < earliest_send:
                        earliest_send = bound
                for records in pending_meta.values():
                    for record in records:
                        term = record[0] + floor_by_address.get(record[4], 0)
                        if term < earliest_send:
                            earliest_send = term
                if earliest_send >= EGRESS_NEVER:
                    horizon = None  # drain: no host can ever egress again
                    stretched_windows += 1
                elif earliest_send > t_min:
                    horizon = earliest_send + lookahead_ns
                    stretched_windows += 1

            active: List[Tuple[int, Any, List[int]]] = []
            for shard_index, (handle, host_ids) in enumerate(
                    zip(handles, assignment)):
                shard_min: Optional[int] = None
                for hid in host_ids:
                    peek = next_times[hid]
                    if peek is not None and (shard_min is None
                                             or peek < shard_min):
                        shard_min = peek
                for record in pending_meta[shard_index]:
                    if shard_min is None or record[0] < shard_min:
                        shard_min = record[0]
                if shard_min is None or (horizon is not None
                                         and shard_min >= horizon):
                    # Nothing this shard could do before the horizon and no
                    # injections due: elide the round-trip. Its pending
                    # buffers (all at >= horizon) stay queued.
                    skipped_shard_rounds += 1
                    continue
                blobs = pending_blobs[shard_index]
                boundary_packets += len(pending_meta[shard_index])
                # In-process buffers are raw record lists (no pickle pass),
                # so only real byte buffers count toward bytes-exchanged.
                boundary_bytes += sum(len(blob) for blob in blobs
                                      if isinstance(blob, bytes))
                pending_meta[shard_index] = []
                pending_blobs[shard_index] = []
                handle.send_window(horizon, blobs)
                active.append((shard_index, handle, host_ids))
            committed: List[Tuple[int, int, int, int]] = []
            for shard_index, handle, host_ids in active:
                per_host, meta, out_blobs = handle.recv_window()
                for hid, (next_time, bound, events) in per_host.items():
                    next_times[hid] = next_time
                    bounds[hid] = bound
                    events_per_host[hid] += events
                for record in meta:
                    if horizon is None or record[0] < horizon:
                        raise SimulationError(
                            f"host {record[1]} violated its egress bound: "
                            f"captured arrival {record[0]} inside the "
                            f"granted window (horizon="
                            f"{'drain' if horizon is None else horizon})"
                        )
                    dst_shard = host_to_shard[record[3]]
                    pending_meta[dst_shard].append(record)
                    if boundary_log is not None:
                        committed.append(record[:4])
                for dst_shard, blob in out_blobs.items():
                    pending_blobs[dst_shard].append(blob)
            if boundary_log is not None and committed:
                boundary_log.extend(sorted(committed))
            windows += 1

        results: Dict[int, str] = {}
        for handle in handles:
            results.update(handle.finish())
        per_host = [json.loads(results[hid]) for hid in range(hosts)]
    finally:
        _close_handles(handles)
    return ShardedResult(
        hosts=hosts,
        shards=shards,
        lookahead_ns=lookahead_ns,
        windows=windows,
        events_per_host=[events_per_host[hid] for hid in range(hosts)],
        per_host=per_host,
        boundary_log=boundary_log,
        window_mode=window_mode,
        stretched_windows=stretched_windows,
        skipped_shard_rounds=skipped_shard_rounds,
        boundary_packets=boundary_packets,
        boundary_bytes=boundary_bytes,
    )
