"""Conservative-window parallel simulation: one event loop per host.

The single-core kernel plateaus around ~1.4M events/s (see
``BENCH_kernel.json``); the next order of magnitude comes from the physics
already in the model. Every cross-host packet must traverse the ToR switch,
which charges at least ``tor_delay_ns`` (0.3 us, Table 3 of the Dagger
paper) of wire time — so a host's events in the next ``tor_delay_ns`` of
simulated time can never be affected by what *other* hosts do during that
same span. That bound is the classic *lookahead* of conservative parallel
discrete-event simulation, and this module exploits it:

- every host owns a private :class:`~repro.sim.kernel.Simulator` plus a
  :class:`~repro.hw.switch.ShardBoundary` that captures cross-host egress
  instead of scheduling it;
- hosts are partitioned across *shards* (worker processes) with
  :func:`repro.hw.cluster.partition_hosts`;
- a coordinator repeatedly grants every host the same horizon
  ``H = T_min + lookahead`` (``T_min`` = earliest pending event or
  undelivered boundary packet anywhere), each host runs
  :meth:`~repro.sim.kernel.Simulator.run_horizon` (strictly-before-``H``
  semantics), and captured egress is exchanged at the barrier.

Why this is safe: any packet sent during a window starts at some
``t >= T_min`` and arrives at ``t + delay >= T_min + lookahead = H``, i.e.
never inside the window that produced it. Arrivals are injected *before*
the next window in the canonical total order ``(arrival_ns, src_host,
seq)``, so the destination heap sees them at deterministic positions.

Bit-identity to serial is structural, not statistical: ``shards=1`` runs
the *identical* windowed per-host algorithm in-process (no worker
processes, no pickling differences in event order — boundary packets are
pickle-round-tripped in both modes so a packet object is never aliased
across hosts). The only thing that changes with ``shards`` is which OS
process executes a host's window; the event sequence each host processes
is the same. Per-host results are shipped as canonical JSON (same
``sort_keys``/``separators`` contract as :mod:`repro.harness.sweep`), and
the mesh benchmarks gate on byte equality of those signatures.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import pickle
import traceback
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import SimulationError

#: Boundary record layout: (arrival_ns, src_host, seq, dst_address, blob).
#: ``blob`` is the pickled packet; (arrival_ns, src_host, seq) is the
#: canonical total order in which same-window arrivals commit.
BoundaryEvent = Tuple[int, int, int, str, bytes]


def _resolve(path: str) -> Callable[..., Any]:
    """Resolve a ``"module:attr"`` dotted path (sweep's convention)."""
    module_name, sep, attr = path.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"builder path must look like 'pkg.module:fn', got {path!r}"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise AttributeError(f"{module_name!r} has no attribute {attr!r}") from None


def canonical_json(value: Any) -> str:
    """Canonical JSON: same bytes for the same data on every path.

    Mirrors the sweep cache's normalization (``sort_keys`` + compact
    separators) so sharded result signatures compose with the rest of the
    determinism machinery.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass
class ShardedResult:
    """Outcome of a sharded run, identical for every shard count."""

    hosts: int
    shards: int
    lookahead_ns: int
    windows: int
    events_per_host: List[int]
    per_host: List[Any]
    #: Committed cross-shard deliveries as (arrival_ns, src_host, seq,
    #: dst_host) in commit order; only populated with record_boundary_log.
    boundary_log: Optional[List[Tuple[int, int, int, int]]] = field(default=None)

    @property
    def events_total(self) -> int:
        return sum(self.events_per_host)


class _ShardRuntime:
    """Builds and drives the host simulators owned by one shard.

    Used verbatim by both execution modes — called directly in-process for
    ``shards=1``, or inside a worker process behind a pipe for
    ``shards>1`` — so the per-host work is the same code path either way.
    """

    def __init__(self, builder_path: str, host_ids: List[int],
                 params: Dict[str, Any], lookahead_ns: int):
        builder = _resolve(builder_path)
        self.hosts = {hid: builder(host_id=hid, **params) for hid in host_ids}
        for hid, host in self.hosts.items():
            delay = host.boundary.delay_ns
            if delay < lookahead_ns:
                raise SimulationError(
                    f"host {hid} boundary delay {delay} ns is below the "
                    f"engine lookahead {lookahead_ns} ns — the conservative "
                    "window would miss its arrivals"
                )

    def hello(self):
        """(host -> local addresses, host -> first pending event time)."""
        addresses = {hid: host.boundary.addresses()
                     for hid, host in self.hosts.items()}
        peeks = {hid: host.sim.peek() for hid, host in self.hosts.items()}
        return addresses, peeks

    def set_peers(self, all_addresses) -> None:
        for host in self.hosts.values():
            host.boundary.set_remote_addresses(all_addresses)

    def window(self, horizon: int, injections: Dict[int, List[BoundaryEvent]]):
        """Inject boundary arrivals, run one window, capture egress.

        Returns ``{host_id: (egress, next_event_time, events_dispatched)}``.
        Hosts run in ascending id order; injections for a host MUST already
        be in canonical (arrival, src, seq) order — the engine sorts them.
        """
        out = {}
        for hid in sorted(self.hosts):
            host = self.hosts[hid]
            sim = host.sim
            boundary = host.boundary
            for arrival, _src, _seq, dst, blob in injections.get(hid, ()):
                packet = pickle.loads(blob)
                sim.inject(arrival, partial(boundary.deliver, dst, packet))
            events = sim.run_horizon(horizon)
            egress = [
                (arrival, src, seq, dst,
                 pickle.dumps(packet, protocol=pickle.HIGHEST_PROTOCOL))
                for arrival, src, seq, dst, packet in boundary.drain_egress()
            ]
            out[hid] = (egress, sim.peek(), events)
        return out

    def finish(self) -> Dict[int, str]:
        """Per-host results as canonical JSON strings.

        Hosts return plain JSON-able data from ``finish()``; shipping the
        canonical encoding (rather than live objects) guarantees the
        coordinator sees byte-identical payloads whether the host ran
        in-process or in a worker.
        """
        return {hid: canonical_json(host.finish())
                for hid, host in self.hosts.items()}


def _shard_worker(conn, builder_path: str, host_ids: List[int],
                  params: Dict[str, Any], lookahead_ns: int) -> None:
    """Worker process main loop: lockstep request/reply over one pipe."""
    try:
        runtime = _ShardRuntime(builder_path, host_ids, params, lookahead_ns)
        conn.send(("hello",) + runtime.hello())
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "peers":
                runtime.set_peers(message[1])
                conn.send(("ok",))
            elif kind == "window":
                conn.send(("window", runtime.window(message[1], message[2])))
            elif kind == "finish":
                conn.send(("finish", runtime.finish()))
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown message {kind!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class _LocalShards:
    """In-process execution of every host (``shards=1``)."""

    def __init__(self, builder_path, host_ids, params, lookahead_ns):
        self.runtime = _ShardRuntime(builder_path, host_ids, params,
                                     lookahead_ns)
        self._reply = None

    def hello(self):
        return self.runtime.hello()

    def set_peers(self, all_addresses):
        self.runtime.set_peers(all_addresses)

    def send_window(self, horizon, injections):
        self._reply = self.runtime.window(horizon, injections)

    def recv_window(self):
        reply, self._reply = self._reply, None
        return reply

    def finish(self):
        return self.runtime.finish()

    def close(self):
        pass


class _RemoteShard:
    """A worker process driven over a duplex pipe."""

    def __init__(self, ctx, builder_path, host_ids, params, lookahead_ns):
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_worker,
            args=(child, builder_path, host_ids, params, lookahead_ns),
            daemon=True,
        )
        self.process.start()
        child.close()

    def _recv(self, expected: str):
        try:
            message = self.conn.recv()
        except EOFError:
            raise SimulationError(
                "shard worker died without reporting an error"
            ) from None
        if message[0] == "error":
            raise SimulationError(f"shard worker failed:\n{message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol misuse
            raise SimulationError(
                f"expected {expected!r} reply, got {message[0]!r}"
            )
        return message[1:]

    def hello(self):
        addresses, peeks = self._recv("hello")
        return addresses, peeks

    def set_peers(self, all_addresses):
        self.conn.send(("peers", all_addresses))
        self._recv("ok")

    def send_window(self, horizon, injections):
        self.conn.send(("window", horizon, injections))

    def recv_window(self):
        return self._recv("window")[0]

    def finish(self):
        self.conn.send(("finish",))
        return self._recv("finish")[0]

    def close(self):
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.terminate()
            self.process.join(timeout=5)


def run_sharded(
    builder: str,
    hosts: int,
    params: Optional[Dict[str, Any]] = None,
    shards: int = 1,
    *,
    lookahead_ns: int,
    record_boundary_log: bool = False,
    max_windows: Optional[int] = None,
) -> ShardedResult:
    """Run ``hosts`` per-host simulators to completion across ``shards``.

    ``builder`` is a ``"module:fn"`` path (the sweep executor's dotted-path
    convention, so workers can re-resolve it); it is called as
    ``builder(host_id=i, **params)`` and must return an object exposing
    ``sim`` (a :class:`~repro.sim.kernel.Simulator`), ``boundary`` (a
    :class:`~repro.hw.switch.ShardBoundary` or duck-type equivalent whose
    ``delay_ns`` is at least ``lookahead_ns``), and ``finish()`` returning
    plain JSON-able data.

    The run terminates when no host has pending events and no boundary
    packet is in flight. Results, window count, and per-host event counts
    are identical for every valid ``shards`` value — that is the contract
    the parity gates enforce.
    """
    # Imported lazily: repro.sim is the bottom layer and must stay
    # importable without pulling in the hardware models; only the engine
    # entry point needs the topology partitioner.
    from repro.hw.cluster import partition_hosts

    params = dict(params or {})
    assignment = partition_hosts(hosts, shards)
    if shards == 1:
        handles: List[Any] = [
            _LocalShards(builder, assignment[0], params, lookahead_ns)
        ]
    else:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        handles = [
            _RemoteShard(ctx, builder, host_ids, params, lookahead_ns)
            for host_ids in assignment
        ]
    try:
        address_to_host: Dict[str, int] = {}
        host_to_handle: Dict[int, Any] = {}
        next_times: Dict[int, Optional[int]] = {}
        all_addresses: List[str] = []
        for handle, host_ids in zip(handles, assignment):
            addresses, peeks = handle.hello()
            for hid in host_ids:
                host_to_handle[hid] = handle
                next_times[hid] = peeks[hid]
                for address in addresses[hid]:
                    if address in address_to_host:
                        raise SimulationError(
                            f"address {address!r} registered on hosts "
                            f"{address_to_host[address]} and {hid}"
                        )
                    address_to_host[address] = hid
                    all_addresses.append(address)
        for handle in handles:
            handle.set_peers(sorted(all_addresses))

        pending: List[Tuple[int, BoundaryEvent]] = []  # (dst_host, record)
        events_per_host = {hid: 0 for hid in range(hosts)}
        windows = 0
        boundary_log: Optional[List[Tuple[int, int, int, int]]] = (
            [] if record_boundary_log else None
        )
        while True:
            candidates = [t for t in next_times.values() if t is not None]
            candidates.extend(record[0] for _dst, record in pending)
            if not candidates:
                break
            if max_windows is not None and windows >= max_windows:
                raise SimulationError(
                    f"exceeded max_windows={max_windows} "
                    f"(windows={windows}, pending={len(pending)})"
                )
            horizon = min(candidates) + lookahead_ns
            injections: Dict[int, List[BoundaryEvent]] = {}
            for dst_host, record in pending:
                injections.setdefault(dst_host, []).append(record)
            for batch in injections.values():
                batch.sort(key=lambda record: record[:3])
            if boundary_log is not None:
                committed = sorted(
                    (record[0], record[1], record[2], dst_host)
                    for dst_host, record in pending
                )
                boundary_log.extend(committed)
            pending = []
            for handle, host_ids in zip(handles, assignment):
                handle.send_window(
                    horizon,
                    {hid: injections[hid] for hid in host_ids
                     if hid in injections},
                )
            for handle in handles:
                for hid, (egress, next_time, events) in handle.recv_window().items():
                    next_times[hid] = next_time
                    events_per_host[hid] += events
                    for record in egress:
                        dst_address = record[3]
                        try:
                            dst_host = address_to_host[dst_address]
                        except KeyError:
                            raise SimulationError(
                                f"boundary packet for unknown address "
                                f"{dst_address!r} from host {record[1]}"
                            ) from None
                        pending.append((dst_host, record))
            windows += 1

        results: Dict[int, str] = {}
        for handle in handles:
            results.update(handle.finish())
        per_host = [json.loads(results[hid]) for hid in range(hosts)]
    finally:
        for handle in handles:
            handle.close()
    return ShardedResult(
        hosts=hosts,
        shards=shards,
        lookahead_ns=lookahead_ns,
        windows=windows,
        events_per_host=[events_per_host[hid] for hid in range(hosts)],
        per_host=per_host,
        boundary_log=boundary_log,
    )
