"""Event loop and primitive events for the discrete-event simulator.

The kernel keeps a binary heap of ``(time, sequence, event)`` triples. Each
:class:`Event` carries a list of callbacks; triggering an event schedules it
on the heap, and when the loop pops it the callbacks run at that simulated
time. Processes (see :mod:`repro.sim.process`) are generator coroutines that
suspend by yielding events and are resumed by a callback installed on the
yielded event.

Time is an integer number of nanoseconds. Determinism is guaranteed: events
scheduled for the same timestamp fire in scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. re-triggering)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (which schedules it on the event loop), and is
    *processed* once its callbacks have run. Processes yield events to wait
    for them; the value passed to :meth:`succeed` becomes the result of the
    ``yield`` expression.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_processed", "value", "_exception")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._processed = False
        self.value: Any = None
        self._exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self._triggered and self._exception is None

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully ``delay`` ns from now."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self.value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._schedule(self, delay)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that triggers itself ``delay`` ns after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._triggered = True
        self.value = value
        sim._schedule(self, delay)


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        def proc(sim):
            yield sim.timeout(10)
            return 42
        handle = sim.spawn(proc(sim))
        sim.run()
        assert handle.value == 42
    """

    def __init__(self):
        self.now: int = 0
        self._heap: list = []
        self._seq: int = 0
        self._active_processes: int = 0

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that triggers ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator) -> "Process":
        """Start a new process from a generator coroutine."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`SimulationError` when nothing is scheduled, like the
        kernel's other misuse paths (rather than leaking a bare
        ``IndexError`` from the heap).
        """
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _, event = heapq.heappop(self._heap)
        self.now = when
        event._run_callbacks()

    def peek(self) -> Optional[int]:
        """Timestamp of the next event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: Optional[int] = None) -> None:
        """Run until the heap drains or simulated time passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` and
        any events scheduled later stay on the heap (the simulator can be
        resumed with another ``run`` call).
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        heap = self._heap
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                self.now = until
                return
            _, _, event = heapq.heappop(heap)
            self.now = when
            event._run_callbacks()
        if until is not None:
            self.now = until

    def run_until_done(self, process: "Process") -> Any:
        """Run until a given process finishes; return its value.

        Raises the process's exception if it failed.
        """
        while not process.triggered:
            if not self._heap:
                raise SimulationError(
                    "event heap drained before process completed (deadlock?)"
                )
            self.step()
        if process._exception is not None:
            process.defuse()
            raise process._exception
        return process.value
