"""Event loop and primitive events for the discrete-event simulator.

The kernel keeps a binary heap of ``(time, sequence, event)`` triples. Each
:class:`Event` carries a list of callbacks; triggering an event schedules it
on the heap, and when the loop pops it the callbacks run at that simulated
time. Processes (see :mod:`repro.sim.process`) are generator coroutines that
suspend by yielding events and are resumed by a callback installed on the
yielded event.

Time is an integer number of nanoseconds. Determinism is guaranteed: events
scheduled for the same timestamp fire in scheduling order.

Hot-path design (see docs/performance.md): a simulated RPC is dominated by
the timeout/resume cycle, so the kernel avoids per-event overhead there.
``triggered``/``processed`` are plain slot attributes (no property
indirection), scheduling is inlined into the trigger paths (one ``heappush``
instead of a ``_schedule`` call), the run loops cache heap/bound-method
lookups in locals, and short-lived kernel-owned events are recycled through
free lists instead of being reallocated:

- :class:`Timeout` objects created via :meth:`Simulator.timeout` are
  returned to a pool once the run loop has fired their callbacks. This is
  safe because a timeout is single-shot and kernel-owned: every in-tree use
  is ``yield sim.timeout(...)``, which drops the reference on resume.
- Internal process-control events (spawn kick-off, post-processed wakeups,
  interrupt carriers) are pooled the same way via
  :meth:`Simulator._control_event`.

Events created with :meth:`Simulator.event` are *never* pooled — callers
hold those handles and may inspect ``triggered``/``value`` long after the
callbacks ran (e.g. completion gates).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional

#: Upper bound on each free list; beyond this, recycled events are simply
#: dropped for the garbage collector (prevents pathological workloads from
#: pinning unbounded memory in the pools).
_POOL_CAP = 4096

#: ``Event._recyclable`` values: not pooled / Timeout pool / control pool.
_NO_POOL, _TIMEOUT_POOL, _CONTROL_POOL = 0, 1, 2

#: Lazily bound Process class (avoids a circular import; resolved once by
#: the first ``spawn`` instead of re-importing per call).
_Process = None


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. re-triggering)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (which schedules it on the event loop), and is
    *processed* once its callbacks have run. Processes yield events to wait
    for them; the value passed to :meth:`succeed` becomes the result of the
    ``yield`` expression.

    ``triggered`` and ``processed`` are plain attributes, written only by
    the kernel; treat them as read-only flags.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "triggered",
        "processed",
        "value",
        "_exception",
        "_recyclable",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.processed = False
        self.value: Any = None
        self._exception: Optional[BaseException] = None
        self._recyclable = _NO_POOL

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self.triggered and self._exception is None

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully ``delay`` ns from now."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.triggered = True
        self.value = value
        sim = self.sim
        if delay:
            heappush(sim._heap, (sim.now + delay, sim._seq, self))
            sim._seq += 1
        else:
            sim._nowq.append(self)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.triggered = True
        self._exception = exception
        sim = self.sim
        if delay:
            heappush(sim._heap, (sim.now + delay, sim._seq, self))
            sim._seq += 1
        else:
            sim._nowq.append(self)
        return self

    def _run_callbacks(self) -> None:
        self.processed = True
        callbacks = self.callbacks
        if len(callbacks) == 1:
            # The dominant case: exactly one waiter (a process resume).
            # Dispatch it directly instead of snapshotting the list.
            callback = callbacks[0]
            callbacks.clear()
            callback(self)
        elif callbacks:
            snapshot = tuple(callbacks)
            callbacks.clear()
            for callback in snapshot:
                callback(self)


class Timeout(Event):
    """An event that triggers itself ``delay`` ns after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + succeed(): a timeout is born triggered
        # and scheduled, so skip the pending state entirely.
        self.sim = sim
        self.callbacks = []
        self.triggered = True
        self.processed = False
        self.value = value
        self._exception = None
        self._recyclable = _TIMEOUT_POOL
        if delay:
            heappush(sim._heap, (sim.now + delay, sim._seq, self))
            sim._seq += 1
        else:
            sim._nowq.append(self)


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        def proc(sim):
            yield sim.timeout(10)
            return 42
        handle = sim.spawn(proc(sim))
        sim.run()
        assert handle.value == 42
    """

    __slots__ = ("now", "_heap", "_nowq", "_seq", "_timeout_free",
                 "_control_free")

    def __init__(self):
        self.now: int = 0
        self._heap: list = []
        # Zero-delay events (grants, hand-offs, process control — the
        # majority) bypass the heap through this FIFO: a deque append/
        # popleft is much cheaper than a heap siftdown/siftup, and the
        # smaller heap makes the remaining timed pushes cheaper too.
        # Firing order stays exact: time only advances when this queue
        # is empty, so every heap entry due at the current time was
        # scheduled before everything queued here and fires first (see
        # the pop logic in run()); within the queue, FIFO == scheduling
        # order. Heap entries keep a seq tie-break for equal times.
        self._nowq: deque = deque()
        self._seq: int = 0
        self._timeout_free: list = []
        self._control_free: list = []

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if delay:
            heappush(self._heap, (self.now + delay, self._seq, event))
            self._seq += 1
        else:
            self._nowq.append(event)

    def event(self) -> Event:
        """Create a new pending event (never pooled; safe to hold)."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that triggers ``delay`` ns from now."""
        free = self._timeout_free
        if free:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            timeout = free.pop()
            timeout.triggered = True
            timeout.value = value
            if delay:
                heappush(self._heap, (self.now + delay, self._seq, timeout))
                self._seq += 1
            else:
                self._nowq.append(timeout)
            return timeout
        return Timeout(self, delay, value)

    def _control_event(self) -> Event:
        """A pooled kernel-internal event (process start/wakeup/interrupt).

        The caller must fully configure it (callbacks, trigger state) and
        must not expose it outside the kernel: it is recycled as soon as the
        run loop has fired its callbacks.
        """
        free = self._control_free
        if free:
            return free.pop()
        event = Event(self)
        event._recyclable = _CONTROL_POOL
        return event

    def spawn(self, generator: Generator, name: str = "") -> "Process":
        """Start a new process from a generator coroutine."""
        global _Process
        if _Process is None:
            from repro.sim.process import Process as _Process  # noqa: F811
        return _Process(self, generator, name)

    # -- execution ----------------------------------------------------------

    def _pop_next(self) -> Event:
        """Pop the next event in exact (time, seq) order, advancing ``now``.

        Zero-delay events live in ``_nowq`` (all scheduled at the current
        time, FIFO); timed events live in the heap. A heap entry due at the
        current time always predates the queued events (time only advances
        when the queue is empty), so it fires first.
        """
        nowq = self._nowq
        if nowq:
            heap = self._heap
            if heap and heap[0][0] <= self.now:
                when, _, event = heappop(heap)
                self.now = when
                return event
            return nowq.popleft()
        when, _, event = heappop(self._heap)
        self.now = when
        return event

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`SimulationError` when nothing is scheduled, like the
        kernel's other misuse paths (rather than leaking a bare
        ``IndexError`` from the heap). Events fired through ``step`` are
        not recycled — only the batch run loops feed the pools.
        """
        if not self._heap and not self._nowq:
            raise SimulationError("no scheduled events")
        self._pop_next()._run_callbacks()

    def peek(self) -> Optional[int]:
        """Timestamp of the next event, or None if nothing is scheduled."""
        if self._nowq:
            return self.now
        return self._heap[0][0] if self._heap else None

    def has_pending(self) -> bool:
        """True when any event is scheduled (the run loop would continue).

        Used by self-terminating background processes (e.g. the telemetry
        sampler) to avoid keeping an otherwise-finished simulation alive.
        """
        return bool(self._nowq or self._heap)

    def run(self, until: Optional[int] = None) -> None:
        """Run until the heap drains or simulated time passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` and
        any events scheduled later stay on the heap (the simulator can be
        resumed with another ``run`` call).
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        # The loop body inlines the dual-queue pop of _pop_next, the
        # single-callback dispatch of Event._run_callbacks, and the pool
        # recycling: at one pooled event per timeout/resume cycle, the
        # method-call overhead of the factored versions is the single
        # largest kernel cost.
        heap = self._heap
        nowq = self._nowq
        pop = heappop
        popleft = nowq.popleft
        tfree = self._timeout_free
        cfree = self._control_free
        now = self.now
        while True:
            if nowq:
                if heap and heap[0][0] <= now:
                    head = pop(heap)
                    now = self.now = head[0]
                    event = head[2]
                else:
                    event = popleft()
            elif heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return
                event = pop(heap)[2]
                now = self.now = when
            else:
                break
            callbacks = event.callbacks
            recyclable = event._recyclable
            if recyclable:
                # Pooled single-shot event: dispatch without touching the
                # ``processed`` flag (it is reset here anyway) and refile.
                try:
                    [callback] = callbacks
                except ValueError:
                    event._run_callbacks()
                    event.processed = False
                else:
                    callbacks.clear()
                    callback(event)
                    if callbacks:
                        callbacks.clear()
                event.triggered = False
                event.value = None
                event._exception = None
                free = tfree if recyclable == _TIMEOUT_POOL else cfree
                if len(free) < _POOL_CAP:
                    free.append(event)
            else:
                try:
                    [callback] = callbacks
                except ValueError:
                    event._run_callbacks()
                else:
                    event.processed = True
                    callbacks.clear()
                    callback(event)
        if until is not None:
            self.now = until

    def inject(self, when: int, action: Callable[[], None],
               seq_key: Optional[int] = None) -> None:
        """Schedule ``action()`` at absolute simulated time ``when``.

        Entry point for externally produced event batches (the sharded
        engine delivers cross-shard packets through this). By default the
        callback is interleaved with locally scheduled events in exact
        ``(time, seq)`` order: an injected event at time ``t`` fires after
        same-``t`` events that were already scheduled and before same-``t``
        events scheduled later — an order that depends on *when* the
        injection happened relative to local scheduling.

        ``seq_key`` decouples that: when given, it replaces the local
        sequence number as the heap tie-break, so the position of the
        injected event among same-timestamp events is a pure function of
        the key — independent of how the caller batches its injections.
        Negative keys fire before every locally scheduled event at the
        same timestamp (local sequence numbers start at 0). Callers must
        guarantee keys are unique per ``(when, seq_key)`` pair; the sharded
        engine derives them from the canonical ``(src_host, seq)`` commit
        identity. ``when`` must not lie in this simulator's past.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot inject at {when}: simulator clock is at {self.now}"
            )
        event = Event(self)
        event.triggered = True
        event.callbacks.append(lambda _event: action())
        if when == self.now and seq_key is None:
            self._nowq.append(event)
        elif seq_key is not None:
            heappush(self._heap, (when, seq_key, event))
        else:
            heappush(self._heap, (when, self._seq, event))
            self._seq += 1

    def run_horizon(self, horizon: Optional[int]) -> int:
        """Process every event strictly before ``horizon``; count them.

        The conservative-window entry point for sharded simulation: unlike
        :meth:`run`, the boundary is *exclusive* (an event at exactly
        ``horizon`` stays pending — it may still race with a cross-shard
        arrival at the same timestamp) and the clock is left at the last
        processed event rather than fast-forwarded, so a later
        :meth:`inject` at any ``t >= horizon`` keeps exact ordering against
        the events that remain on the heap.

        ``horizon=None`` is the *drain* grant: no boundary at all — run
        until the heap is empty. The adaptive sharded coordinator issues it
        when every host has proven it cannot produce another cross-shard
        packet, collapsing the run-out into a single window.

        Returns the number of events dispatched in this window.
        """
        if horizon is None:
            horizon = float("inf")
        if self._nowq and self.now >= horizon:
            raise SimulationError(
                f"horizon {horizon} is not ahead of pending work at {self.now}"
            )
        # Same inlined pop/dispatch/recycle loop as run(); see the comment
        # there. The only structural difference is the strict `< horizon`
        # stop condition and the dispatched-event counter.
        heap = self._heap
        nowq = self._nowq
        pop = heappop
        popleft = nowq.popleft
        tfree = self._timeout_free
        cfree = self._control_free
        now = self.now
        count = 0
        while True:
            if nowq:
                if heap and heap[0][0] <= now:
                    head = pop(heap)
                    now = self.now = head[0]
                    event = head[2]
                else:
                    event = popleft()
            elif heap:
                when = heap[0][0]
                if when >= horizon:
                    break
                event = pop(heap)[2]
                now = self.now = when
            else:
                break
            count += 1
            callbacks = event.callbacks
            recyclable = event._recyclable
            if recyclable:
                # Pooled single-shot event: dispatch without touching the
                # ``processed`` flag (it is reset here anyway) and refile.
                try:
                    [callback] = callbacks
                except ValueError:
                    event._run_callbacks()
                    event.processed = False
                else:
                    callbacks.clear()
                    callback(event)
                    if callbacks:
                        callbacks.clear()
                event.triggered = False
                event.value = None
                event._exception = None
                free = tfree if recyclable == _TIMEOUT_POOL else cfree
                if len(free) < _POOL_CAP:
                    free.append(event)
            else:
                try:
                    [callback] = callbacks
                except ValueError:
                    event._run_callbacks()
                else:
                    event.processed = True
                    callbacks.clear()
                    callback(event)
        return count

    def run_until_done(self, process: "Process") -> Any:
        """Run until a given process finishes; return its value.

        Raises the process's exception if it failed. Uses the same inlined
        pop/dispatch/recycle loop as :meth:`run` (not per-event ``step()``
        calls), keeping the deadlock :class:`SimulationError` behavior.
        """
        heap = self._heap
        nowq = self._nowq
        pop = heappop
        popleft = nowq.popleft
        tfree = self._timeout_free
        cfree = self._control_free
        now = self.now
        while not process.triggered:
            if nowq:
                if heap and heap[0][0] <= now:
                    head = pop(heap)
                    now = self.now = head[0]
                    event = head[2]
                else:
                    event = popleft()
            elif heap:
                head = pop(heap)
                now = self.now = head[0]
                event = head[2]
            else:
                raise SimulationError(
                    "event heap drained before process completed (deadlock?)"
                )
            callbacks = event.callbacks
            recyclable = event._recyclable
            if recyclable:
                # Pooled single-shot event: dispatch without touching the
                # ``processed`` flag (it is reset here anyway) and refile.
                try:
                    [callback] = callbacks
                except ValueError:
                    event._run_callbacks()
                    event.processed = False
                else:
                    callbacks.clear()
                    callback(event)
                    if callbacks:
                        callbacks.clear()
                event.triggered = False
                event.value = None
                event._exception = None
                free = tfree if recyclable == _TIMEOUT_POOL else cfree
                if len(free) < _POOL_CAP:
                    free.append(event)
            else:
                try:
                    [callback] = callbacks
                except ValueError:
                    event._run_callbacks()
                else:
                    event.processed = True
                    callbacks.clear()
                    callback(event)
        if process._exception is not None:
            process.defuse()
            raise process._exception
        return process.value
