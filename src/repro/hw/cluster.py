"""Multi-machine clusters with physically distributed FPGAs.

The paper runs every experiment on one machine (client and server NICs
share one FPGA) because its vLab cluster had a single FPGA-enabled host,
and names "deploy Dagger to a cluster environment with physically
distributed FPGAs" as future work — specifically to measure MICA's
multi-core throughput without client/server LLC contention.

A :class:`Cluster` builds N independent machines (own cores, own FPGA, own
CCI-P endpoints) connected through one ToR switch at the real 300 ns
switch delay. Cross-machine traffic shares nothing but the wire, so
endpoint caps and CPU contention are strictly per-machine.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.platform import Machine, MachineConfig
from repro.hw.switch import ToRSwitch
from repro.sim.kernel import Simulator


def partition_hosts(num_hosts: int, shards: int) -> List[List[int]]:
    """Deterministic contiguous shard assignment for a multi-host topology.

    Returns ``shards`` lists of host ids covering ``range(num_hosts)`` in
    order; the first ``num_hosts % shards`` shards take one extra host. The
    sharded engine (see :mod:`repro.sim.sharded`) relies on this being a
    pure function of ``(num_hosts, shards)``: placement must never depend
    on runtime state, or worker-count changes could reorder work.
    """
    if num_hosts < 1:
        raise ValueError(f"need at least one host, got {num_hosts}")
    if not 1 <= shards <= num_hosts:
        raise ValueError(
            f"shards must be in [1, {num_hosts}], got {shards}"
        )
    base, extra = divmod(num_hosts, shards)
    assignment: List[List[int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        assignment.append(list(range(start, start + size)))
        start += size
    return assignment


class Cluster:
    """N machines behind one ToR switch."""

    def __init__(
        self,
        sim: Simulator,
        num_machines: int,
        calibration: Calibration = DEFAULT_CALIBRATION,
        machine_config: Optional[MachineConfig] = None,
        tor_delay_ns: Optional[int] = None,
        seed: int = 0,
    ):
        if num_machines < 1:
            raise ValueError(
                f"cluster needs at least one machine, got {num_machines}"
            )
        self.sim = sim
        self.calibration = calibration
        self.switch = ToRSwitch(sim, calibration, loopback=False,
                                delay_ns=tor_delay_ns)
        self.machines: List[Machine] = [
            Machine(sim, machine_config or MachineConfig(), calibration,
                    seed=(seed << 4) + i)
            for i in range(num_machines)
        ]

    def __len__(self) -> int:
        return len(self.machines)

    def machine(self, index: int) -> Machine:
        if not 0 <= index < len(self.machines):
            raise IndexError(
                f"machine {index} out of range (cluster has "
                f"{len(self.machines)})"
            )
        return self.machines[index]
