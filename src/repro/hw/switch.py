"""ToR switch model with a static switching table (Fig 14).

The paper connects NIC instances through a simple model of a top-of-rack
switch with pre-defined static L2 switching. Here each NIC registers its
address with an ingress callback; ``send`` forwards a packet after the
configured ToR delay (0.3 us by default, as assumed in Table 3) or the
loopback delay when source and destination share the FPGA.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.hw.calibration import Calibration
from repro.sim.kernel import Simulator


class UnknownDestinationError(KeyError):
    """Raised when a packet targets an address missing from the table."""


class ToRSwitch:
    """Static-table L2 switch."""

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        loopback: bool = False,
        delay_ns: Optional[int] = None,
    ):
        self.sim = sim
        self.calibration = calibration
        if delay_ns is not None:
            self.delay_ns = delay_ns
        elif loopback:
            self.delay_ns = calibration.loopback_delay_ns
        else:
            self.delay_ns = calibration.tor_delay_ns
        self._table: Dict[str, Callable[[Any], None]] = {}
        self.packets_forwarded = 0
        #: Optional wire-fault injector (see :mod:`repro.chaos`): an object
        #: whose ``on_wire(dst_address, packet)`` returns the deliveries a
        #: crossing produces as ``[(packet, extra_delay_ns), ...]`` — empty
        #: for a loss, two entries for a duplication. None = perfect wire.
        self.wire_faults = None
        self.packets_dropped = 0

    def register(self, address: str, ingress: Callable[[Any], None]) -> None:
        """Add a static table entry: address -> NIC ingress function."""
        if address in self._table:
            raise ValueError(f"address {address!r} already registered")
        self._table[address] = ingress

    def addresses(self):
        return sorted(self._table)

    def send(self, dst_address: str, packet: Any) -> None:
        """Forward ``packet`` to ``dst_address`` after the switch delay."""
        try:
            ingress = self._table[dst_address]
        except KeyError:
            raise UnknownDestinationError(dst_address) from None
        self.packets_forwarded += 1
        if self.wire_faults is not None:
            deliveries = self.wire_faults.on_wire(dst_address, packet)
            if not deliveries:
                self.packets_dropped += 1
                return
            for copy, extra_ns in deliveries:
                self._schedule(ingress, copy, self.delay_ns + extra_ns)
            return

        def _deliver():
            yield self.delay_ns
            ingress(packet)

        self.sim.spawn(_deliver())

    def _schedule(self, ingress: Callable[[Any], None], packet: Any,
                  delay_ns: int) -> None:
        def _deliver():
            yield delay_ns
            ingress(packet)

        self.sim.spawn(_deliver())
