"""ToR switch model with a static switching table (Fig 14).

The paper connects NIC instances through a simple model of a top-of-rack
switch with pre-defined static L2 switching. Here each NIC registers its
address with an ingress callback; ``send`` forwards a packet after the
configured ToR delay (0.3 us by default, as assumed in Table 3) or the
loopback delay when source and destination share the FPGA.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.hw.calibration import Calibration
from repro.sim.kernel import Simulator


class UnknownDestinationError(KeyError):
    """Raised when a packet targets an address missing from the table."""


class ToRSwitch:
    """Static-table L2 switch."""

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        loopback: bool = False,
        delay_ns: Optional[int] = None,
    ):
        self.sim = sim
        self.calibration = calibration
        if delay_ns is not None:
            self.delay_ns = delay_ns
        elif loopback:
            self.delay_ns = calibration.loopback_delay_ns
        else:
            self.delay_ns = calibration.tor_delay_ns
        self._table: Dict[str, Callable[[Any], None]] = {}
        self.packets_forwarded = 0

    def register(self, address: str, ingress: Callable[[Any], None]) -> None:
        """Add a static table entry: address -> NIC ingress function."""
        if address in self._table:
            raise ValueError(f"address {address!r} already registered")
        self._table[address] = ingress

    def addresses(self):
        return sorted(self._table)

    def send(self, dst_address: str, packet: Any) -> None:
        """Forward ``packet`` to ``dst_address`` after the switch delay."""
        try:
            ingress = self._table[dst_address]
        except KeyError:
            raise UnknownDestinationError(dst_address) from None
        self.packets_forwarded += 1

        def _deliver():
            yield self.delay_ns
            ingress(packet)

        self.sim.spawn(_deliver())
