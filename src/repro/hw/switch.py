"""ToR switch model with a static switching table (Fig 14).

The paper connects NIC instances through a simple model of a top-of-rack
switch with pre-defined static L2 switching. Here each NIC registers its
address with an ingress callback; ``send`` forwards a packet after the
configured ToR delay (0.3 us by default, as assumed in Table 3) or the
loopback delay when source and destination share the FPGA.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.hw.calibration import Calibration
from repro.sim.kernel import Simulator


class UnknownDestinationError(KeyError):
    """Raised when a packet targets an address missing from the table."""


class ToRSwitch:
    """Static-table L2 switch."""

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        loopback: bool = False,
        delay_ns: Optional[int] = None,
    ):
        self.sim = sim
        self.calibration = calibration
        if delay_ns is not None:
            self.delay_ns = delay_ns
        elif loopback:
            self.delay_ns = calibration.loopback_delay_ns
        else:
            self.delay_ns = calibration.tor_delay_ns
        self._table: Dict[str, Callable[[Any], None]] = {}
        self.packets_forwarded = 0
        #: Optional wire-fault injector (see :mod:`repro.chaos`): an object
        #: whose ``on_wire(dst_address, packet)`` returns the deliveries a
        #: crossing produces as ``[(packet, extra_delay_ns), ...]`` — empty
        #: for a loss, two entries for a duplication. None = perfect wire.
        self.wire_faults = None
        self.packets_dropped = 0

    def register(self, address: str, ingress: Callable[[Any], None]) -> None:
        """Add a static table entry: address -> NIC ingress function."""
        if address in self._table:
            raise ValueError(f"address {address!r} already registered")
        self._table[address] = ingress

    def addresses(self):
        return sorted(self._table)

    def send(self, dst_address: str, packet: Any) -> None:
        """Forward ``packet`` to ``dst_address`` after the switch delay.

        Both the perfect-wire path and the fault-injection path route
        through :meth:`_schedule`, so the per-destination delay arithmetic
        lives in exactly one place and the two paths cannot drift. Chaos
        verdict accounting (``packets_dropped`` on a loss verdict, one
        scheduled delivery per surviving copy) is unchanged.
        """
        try:
            ingress = self._table[dst_address]
        except KeyError:
            raise UnknownDestinationError(dst_address) from None
        self.packets_forwarded += 1
        if self.wire_faults is not None:
            deliveries = self.wire_faults.on_wire(dst_address, packet)
            if not deliveries:
                self.packets_dropped += 1
                return
            for copy, extra_ns in deliveries:
                self._schedule(ingress, copy, self.delay_ns + extra_ns)
            return
        self._schedule(ingress, packet, self.delay_ns)

    def _schedule(self, ingress: Callable[[Any], None], packet: Any,
                  delay_ns: int) -> None:
        def _deliver():
            yield delay_ns
            ingress(packet)

        self.sim.spawn(_deliver())


class ShardBoundary(ToRSwitch):
    """A host's view of the ToR at a shard boundary (sharded simulation).

    In :mod:`repro.sim.sharded` every host owns a private
    :class:`~repro.sim.kernel.Simulator`, so the rack's single ToR object is
    replaced by one ``ShardBoundary`` per host: local destinations (same
    host) are delivered through the ordinary :meth:`ToRSwitch._schedule`
    path, while packets for remote hosts are *captured* as timestamped
    egress records instead of being scheduled directly. The sharded engine
    drains the captures at each conservative-window barrier and injects them
    into the destination host's simulator in the canonical
    ``(arrival_ns, src_host, seq)`` order.

    The capture stamps ``arrival = now + delay_ns`` — the full ToR crossing
    is charged at the source, which is exactly what makes ``delay_ns`` the
    engine's lookahead. Cross-shard wire faults are not supported (the chaos
    injector's RNG is single-stream and would break shard independence);
    ``wire_faults`` may only be used for host-local traffic.
    """

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        host_id: int = 0,
        delay_ns: Optional[int] = None,
    ):
        super().__init__(sim, calibration, delay_ns=delay_ns)
        self.host_id = host_id
        self._remote: set = set()
        self._egress: list = []
        self._egress_seq = 0

    def set_remote_addresses(self, addresses) -> None:
        """Install the set of addresses served by other shards."""
        self._remote = set(addresses) - set(self._table)

    def send(self, dst_address: str, packet: Any) -> None:
        if dst_address in self._table:
            super().send(dst_address, packet)
            return
        if dst_address not in self._remote:
            raise UnknownDestinationError(dst_address)
        self.packets_forwarded += 1
        self._egress.append(
            (self.sim.now + self.delay_ns, self.host_id, self._egress_seq,
             dst_address, packet)
        )
        self._egress_seq += 1

    def drain_egress(self) -> list:
        """Take the captured ``(arrival, src_host, seq, dst, packet)`` records."""
        egress, self._egress = self._egress, []
        return egress

    def deliver(self, dst_address: str, packet: Any) -> None:
        """Hand an injected cross-shard packet to the local ingress (at ``now``)."""
        self._table[dst_address](packet)
