"""ToR switch model with a static switching table (Fig 14).

The paper connects NIC instances through a simple model of a top-of-rack
switch with pre-defined static L2 switching. Here each NIC registers its
address with an ingress callback; ``send`` forwards a packet after the
configured ToR delay (0.3 us by default, as assumed in Table 3) or the
loopback delay when source and destination share the FPGA.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.hw.calibration import Calibration
from repro.sim.kernel import Simulator


class UnknownDestinationError(KeyError):
    """Raised when a packet targets an address missing from the table."""


class ToRSwitch:
    """Static-table L2 switch."""

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        loopback: bool = False,
        delay_ns: Optional[int] = None,
    ):
        self.sim = sim
        self.calibration = calibration
        if delay_ns is not None:
            self.delay_ns = delay_ns
        elif loopback:
            self.delay_ns = calibration.loopback_delay_ns
        else:
            self.delay_ns = calibration.tor_delay_ns
        self._table: Dict[str, Callable[[Any], None]] = {}
        self.packets_forwarded = 0
        #: Optional wire-fault injector (see :mod:`repro.chaos`): an object
        #: whose ``on_wire(dst_address, packet)`` returns the deliveries a
        #: crossing produces as ``[(packet, extra_delay_ns), ...]`` — empty
        #: for a loss, two entries for a duplication. None = perfect wire.
        self.wire_faults = None
        self.packets_dropped = 0

    def register(self, address: str, ingress: Callable[[Any], None]) -> None:
        """Add a static table entry: address -> NIC ingress function."""
        if address in self._table:
            raise ValueError(f"address {address!r} already registered")
        self._table[address] = ingress

    def addresses(self):
        return sorted(self._table)

    def send(self, dst_address: str, packet: Any) -> None:
        """Forward ``packet`` to ``dst_address`` after the switch delay.

        Both the perfect-wire path and the fault-injection path route
        through :meth:`_schedule`, so the per-destination delay arithmetic
        lives in exactly one place and the two paths cannot drift. Chaos
        verdict accounting (``packets_dropped`` on a loss verdict, one
        scheduled delivery per surviving copy) is unchanged.
        """
        try:
            ingress = self._table[dst_address]
        except KeyError:
            raise UnknownDestinationError(dst_address) from None
        self.packets_forwarded += 1
        if self.wire_faults is not None:
            deliveries = self.wire_faults.on_wire(dst_address, packet)
            if not deliveries:
                self.packets_dropped += 1
                return
            for copy, extra_ns in deliveries:
                self._schedule(ingress, copy, self.delay_ns + extra_ns)
            return
        self._schedule(ingress, packet, self.delay_ns)

    def _schedule(self, ingress: Callable[[Any], None], packet: Any,
                  delay_ns: int) -> None:
        def _deliver():
            yield delay_ns
            ingress(packet)

        self.sim.spawn(_deliver())


class ShardBoundary(ToRSwitch):
    """A host's view of the ToR at a shard boundary (sharded simulation).

    In :mod:`repro.sim.sharded` every host owns a private
    :class:`~repro.sim.kernel.Simulator`, so the rack's single ToR object is
    replaced by one ``ShardBoundary`` per host: local destinations (same
    host) are delivered through the ordinary :meth:`ToRSwitch._schedule`
    path, while packets for remote hosts are *captured* as timestamped
    egress records instead of being scheduled directly. The sharded engine
    drains the captures at each conservative-window barrier and injects them
    into the destination host's simulator in the canonical
    ``(arrival_ns, src_host, seq)`` order.

    The capture stamps ``arrival = now + delay_ns`` — the full ToR crossing
    is charged at the source, which is exactly what makes ``delay_ns`` the
    engine's lookahead. Cross-shard wire faults are not supported (the chaos
    injector's RNG is single-stream and would break shard independence);
    ``wire_faults`` may only be used for host-local traffic.

    Adaptive-horizon support (see :mod:`repro.sim.sharded`): the boundary
    keeps per-address send/delivery counters and, when
    ``track_delivery_times`` is set, the timestamps of injected arrivals —
    the raw material a host model needs to compute a *conservative earliest
    next egress* bound. The host plugs its estimator into
    ``egress_bound_fn``; :meth:`egress_bound` is what the engine polls
    alongside ``peek()``. ``ingress_floors`` declares, per local address, a
    lower bound on the delay between an injected arrival at that address
    and any cross-host send it can cause (e.g. a server's minimum service
    time) — the coordinator uses it to stretch horizons past in-flight
    arrivals. All of it is opt-in: with no estimator and no floors the
    engine behaves exactly like the fixed-window protocol.
    """

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        host_id: int = 0,
        delay_ns: Optional[int] = None,
    ):
        super().__init__(sim, calibration, delay_ns=delay_ns)
        self.host_id = host_id
        self._remote: set = set()
        self._egress: list = []
        self._egress_seq = 0
        #: Captured cross-host sends per destination address (wire-level
        #: truth: incremented only when the packet is actually captured).
        self.sent_by_address: Dict[str, int] = {}
        #: Injected cross-shard arrivals per local address.
        self.delivered_by_address: Dict[str, int] = {}
        #: When True, :meth:`deliver` appends ``sim.now`` per address to
        #: :attr:`delivery_times` (host estimators may trim the lists).
        self.track_delivery_times = False
        self.delivery_times: Dict[str, list] = {}
        #: Host-declared conservative estimator; returns an absolute ns
        #: lower bound on the next cross-host send assuming no further
        #: injections, or None to make no claim.
        self.egress_bound_fn: Optional[Callable[[], Optional[int]]] = None
        #: Optional ``(dst_address, packet)`` callback fired for every
        #: injected arrival before it reaches the local ingress. Host
        #: models that need more than per-address counts (e.g. per-flow
        #: delivery order keyed on a connection id) hang their tracking
        #: here instead of wrapping the ingress table.
        self.delivery_hook: Optional[Callable[[str, Any], None]] = None
        #: Per-local-address ingress-to-egress floors (ns), see class doc.
        self.ingress_floors: Dict[str, int] = {}
        self.packets_delivered = 0

    def set_remote_addresses(self, addresses) -> None:
        """Install the set of addresses served by other shards."""
        self._remote = set(addresses) - set(self._table)

    def send(self, dst_address: str, packet: Any) -> None:
        if dst_address in self._table:
            super().send(dst_address, packet)
            return
        if dst_address not in self._remote:
            raise UnknownDestinationError(dst_address)
        self.packets_forwarded += 1
        self.sent_by_address[dst_address] = (
            self.sent_by_address.get(dst_address, 0) + 1
        )
        self._egress.append(
            (self.sim.now + self.delay_ns, self.host_id, self._egress_seq,
             dst_address, packet)
        )
        self._egress_seq += 1

    def drain_egress(self) -> list:
        """Take the captured ``(arrival, src_host, seq, dst, packet)`` records."""
        egress, self._egress = self._egress, []
        return egress

    def deliver(self, dst_address: str, packet: Any) -> None:
        """Hand an injected cross-shard packet to the local ingress (at ``now``)."""
        self.packets_delivered += 1
        self.delivered_by_address[dst_address] = (
            self.delivered_by_address.get(dst_address, 0) + 1
        )
        if self.track_delivery_times:
            self.delivery_times.setdefault(dst_address, []).append(self.sim.now)
        if self.delivery_hook is not None:
            self.delivery_hook(dst_address, packet)
        self._table[dst_address](packet)

    def egress_bound(self) -> Optional[int]:
        """Conservative earliest-next-egress estimate, or None for no claim.

        The contract the adaptive coordinator relies on: *assuming no
        further cross-shard injections*, this host will not capture another
        cross-host send strictly before ``max(bound, sim.now)``. Hosts that
        cannot egress at all without new ingress return
        :data:`repro.sim.sharded.EGRESS_NEVER`. Unsound estimates are
        fail-stop, not silent: the coordinator raises ``SimulationError``
        on any captured arrival that lands inside the granted window.
        """
        if self.egress_bound_fn is None:
            return None
        return self.egress_bound_fn()

    def timeline_probes(self):
        """Boundary counters for timeline collectors (probe protocol)."""
        return [
            ("packets_forwarded", "counter", lambda: self.packets_forwarded),
            ("packets_delivered", "counter", lambda: self.packets_delivered),
            ("egress_captured", "counter", lambda: self._egress_seq),
        ]
