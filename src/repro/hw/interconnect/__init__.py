"""CPU <-> NIC interconnect models.

The paper's central claim is that a coherent NUMA interconnect (UPI, reached
through CCI-P) is a better NIC I/O than PCIe for small RPCs. This package
models the four CPU-NIC interface schemes of section 4.4.1 at the
transaction level:

- :class:`~repro.hw.interconnect.pcie.PcieMmioInterface` — WQE-by-MMIO: the
  CPU writes the whole RPC into FPGA BAR space with AVX MMIO stores.
- :class:`~repro.hw.interconnect.pcie.PcieDoorbellInterface` — classic
  doorbell: MMIO doorbell + DMA fetch, optionally with doorbell batching.
- :class:`~repro.hw.interconnect.upi.UpiInterface` — the Dagger interface:
  the CPU only stores to a shared buffer; the NIC's per-flow FSM pulls
  cache lines over the coherent bus.
- raw reads (:meth:`~repro.hw.interconnect.upi.UpiInterface.raw_read`) for
  the Fig 11 endpoint-saturation microbenchmark.
"""

from repro.hw.interconnect.base import CpuNicInterface, TransferMode
from repro.hw.interconnect.pcie import PcieDoorbellInterface, PcieMmioInterface
from repro.hw.interconnect.upi import UpiInterface
from repro.hw.interconnect.ccip import CcipMux, make_interface

__all__ = [
    "CpuNicInterface",
    "TransferMode",
    "PcieMmioInterface",
    "PcieDoorbellInterface",
    "UpiInterface",
    "CcipMux",
    "make_interface",
]
