"""CCI-P: the protocol stack multiplexing UPI and PCIe links to the FPGA.

CCI-P wraps one UPI link and two PCIe links behind a single interface
(section 4.1). For experiments that instantiate several NIC instances on
the same FPGA (Fig 14), :class:`CcipMux` hands each NIC an interface bound
to the shared endpoints, so fair FIFO arbitration between tenants emerges
at the endpoint resources.
"""

from __future__ import annotations

from repro.hw.calibration import Calibration
from repro.hw.interconnect.base import CpuNicInterface
from repro.hw.interconnect.pcie import PcieDoorbellInterface, PcieMmioInterface
from repro.hw.interconnect.upi import UpiInterface
from repro.hw.platform import Fpga
from repro.sim.kernel import Simulator

_INTERFACES = {
    "upi": UpiInterface,
    "pcie-mmio": PcieMmioInterface,
    "pcie-doorbell": PcieDoorbellInterface,
}


def make_interface(
    kind: str, sim: Simulator, calibration: Calibration, fpga: Fpga
) -> CpuNicInterface:
    """Build a CPU-NIC interface bound to the FPGA's shared endpoints."""
    try:
        cls = _INTERFACES[kind]
    except KeyError:
        raise ValueError(
            f"unknown interface {kind!r}; choose from {sorted(_INTERFACES)}"
        ) from None
    if kind == "upi":
        return cls(sim, calibration, fpga.upi_endpoint,
                   write_endpoint=fpga.upi_write_endpoint)
    return cls(sim, calibration, fpga.pcie_endpoint,
               write_endpoint=fpga.pcie_write_endpoint)


class CcipMux:
    """Per-FPGA interface factory with shared-endpoint arbitration."""

    def __init__(self, sim: Simulator, calibration: Calibration, fpga: Fpga):
        self.sim = sim
        self.calibration = calibration
        self.fpga = fpga
        self.issued = []

    def interface(self, kind: str) -> CpuNicInterface:
        iface = make_interface(kind, self.sim, self.calibration, self.fpga)
        self.issued.append(iface)
        return iface

    @property
    def total_lines(self) -> int:
        return sum(iface.lines_transferred for iface in self.issued)
