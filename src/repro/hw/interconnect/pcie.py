"""PCIe-based CPU-NIC interfaces: WQE-by-MMIO and (batched) doorbells.

These are the baselines of Fig 10. Their costs follow Kalia et al.'s design
guidelines as cited by the paper (section 4.4.1):

- MMIO transfer: the CPU writes each 64 B chunk of the RPC with two AVX-256
  stores into non-cacheable BAR space. One PCIe transaction per request,
  lowest PCIe latency, but the CPU pays for every byte -> ~4.2 Mrps/core.
- Doorbell: the CPU stores the request into a DMA-visible ring, then issues
  one MMIO doorbell; the NIC DMA-reads descriptor + payload. Doorbell
  batching amortizes the MMIO over B requests.
"""

from __future__ import annotations

from typing import Generator

from repro.hw.interconnect.base import CpuNicInterface, TransferMode


class PcieMmioInterface(CpuNicInterface):
    """WQE-by-MMIO: payloads pushed by the CPU over MMIO writes."""

    name = "pcie-mmio"
    mode = TransferMode.PUSH

    def tx_cpu_cost_ns(self, lines: int, batch: int) -> int:
        # Two 32 B AVX MMIO stores per cache line; batching does not help
        # because every byte still crosses as CPU-issued MMIO.
        del batch
        return 2 * self.calibration.mmio_store32_ns * lines

    def issue_occupancy_ns(self, lines: int) -> int:
        del lines
        return 0  # push mode: the NIC does not fetch

    def host_to_nic(self, lines: int) -> Generator:
        """Propagation of the MMIO write through the PCIe fabric."""
        self._account(lines)
        per_line = max(1, int(self.calibration.cache_line_bytes
                              / self.calibration.eth_bytes_per_ns))
        yield from self._use_endpoint(per_line * lines)
        yield self.calibration.pcie_mmio_deliver_ns

    def nic_to_host(self, lines: int) -> Generator:
        self._account(lines, to_nic=False)
        per_line = max(1, int(self.calibration.cache_line_bytes
                              / self.calibration.eth_bytes_per_ns))
        yield from self._use_write_endpoint(per_line * lines)
        yield self.calibration.pcie_nic_to_host_ns


class PcieDoorbellInterface(CpuNicInterface):
    """Classic doorbell DMA, optionally with doorbell batching.

    ``batch`` at the call sites is the number of requests rung per doorbell
    (B in Fig 10); the MMIO cost is divided across the batch.
    """

    name = "pcie-doorbell"
    mode = TransferMode.FETCH

    def tx_cpu_cost_ns(self, lines: int, batch: int) -> int:
        del lines
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        # One doorbell MMIO per batch (amortized) + per-request descriptor
        # bookkeeping in the DMA-visible ring.
        return (self.calibration.doorbell_ring_ns
                + -(-self.calibration.mmio_doorbell_ns // batch))

    def issue_occupancy_ns(self, lines: int) -> int:
        # The DMA engine issues descriptor+payload reads; modelled as a
        # short per-transaction issue slot (DMA engines pipeline well; the
        # CPU-side doorbell is the real bottleneck for this interface).
        return 40 + 4 * lines

    def host_to_nic(self, lines: int) -> Generator:
        self._account(lines)
        per_line = max(1, int(self.calibration.cache_line_bytes
                              / self.calibration.eth_bytes_per_ns))
        yield from self._use_endpoint(per_line * lines)
        yield self.calibration.pcie_doorbell_fetch_ns

    def nic_to_host(self, lines: int) -> Generator:
        self._account(lines, to_nic=False)
        per_line = max(1, int(self.calibration.cache_line_bytes
                              / self.calibration.eth_bytes_per_ns))
        yield from self._use_write_endpoint(per_line * lines)
        yield self.calibration.pcie_nic_to_host_ns

    def raw_read(self) -> Generator:
        """One raw PCIe DMA read of a shared-memory line (§5.3: ~450 ns)."""
        self._account(1)
        yield from self._use_endpoint(4)
        yield self.calibration.pcie_dma_oneway_ns
