"""Common interface for CPU-NIC interconnect models.

Each interface answers four questions for the NIC and the software stack:

1. How much *extra CPU time* does transmitting one request cost, beyond the
   baseline ring store? (MMIO doorbells and MMIO payload writes are CPU
   work; coherent-bus stores are not.)
2. How long is the NIC's per-flow fetch engine *occupied* issuing the read
   for a batch? This serial pacing is the per-flow throughput bound (123 ns
   per UPI read transaction at batch 1 -> 8.1 Mrps, Fig 10).
3. How long until the data actually *arrives* at the NIC (latency), and how
   much shared endpoint bandwidth does it consume?
4. Same, for the NIC-to-host direction.

``TransferMode.FETCH`` interfaces (doorbell, UPI) have the NIC pull data out
of software rings; ``TransferMode.PUSH`` (MMIO) has the CPU write payloads
straight into the device, so there is no fetch step at all.
"""

from __future__ import annotations

import enum
from typing import Generator, Optional

from repro.hw.calibration import Calibration
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource


class TransferMode(enum.Enum):
    FETCH = "fetch"  # NIC pulls requests from host rings
    PUSH = "push"  # CPU pushes requests into the NIC over MMIO


class CpuNicInterface:
    """Base class for CPU-NIC interface models."""

    name: str = "base"
    mode: TransferMode = TransferMode.FETCH
    #: Optional repro.obs.SpanTracer; transfers are bulk events (a CCI-P
    #: read moves a whole batch), so they are aggregated per component.
    tracer = None

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        endpoint: Resource,
        write_endpoint: Optional[Resource] = None,
    ):
        self.sim = sim
        self.calibration = calibration
        self.endpoint = endpoint
        # Reads (host->NIC fetch) and writes (NIC->host delivery) go through
        # separate engines in the blue-region IP; sharing one would halve
        # the end-to-end cap relative to the raw-read cap, which is not what
        # Fig 11 (right) shows (~80 Mrps raw vs ~84 Mmsg/s end-to-end).
        self.write_endpoint = write_endpoint or endpoint
        self.lines_transferred = 0
        self.transactions = 0
        # Per-direction split of lines_transferred (host->NIC fetches vs
        # NIC->host deliveries) for the timeline probes.
        self.lines_to_nic = 0
        self.lines_to_host = 0

    # -- CPU-side costs ------------------------------------------------------

    def tx_cpu_cost_ns(self, lines: int, batch: int) -> int:
        """Extra CPU ns per request for this interface (beyond ring store)."""
        raise NotImplementedError

    # -- NIC-side fetch (host -> NIC) -----------------------------------------

    def issue_occupancy_ns(self, lines: int) -> int:
        """Serial occupancy of a flow's fetch FSM to issue one batched read."""
        raise NotImplementedError

    def host_to_nic(self, lines: int) -> Generator:
        """Transfer ``lines`` cache lines to the NIC; yields until arrival."""
        raise NotImplementedError

    # -- NIC-side delivery (NIC -> host) --------------------------------------

    def nic_to_host(self, lines: int) -> Generator:
        """Write ``lines`` cache lines into a host RX buffer."""
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------------

    def _use_endpoint(self, occupancy_ns: int) -> Generator:
        """Consume shared read-engine bandwidth (FIFO, pipelined)."""
        endpoint = self.endpoint
        if not endpoint.try_acquire():
            yield endpoint.request()
        try:
            yield occupancy_ns
        finally:
            endpoint.release()

    def _use_write_endpoint(self, occupancy_ns: int) -> Generator:
        """Consume shared write-engine bandwidth (FIFO, pipelined)."""
        endpoint = self.write_endpoint
        if not endpoint.try_acquire():
            yield endpoint.request()
        try:
            yield occupancy_ns
        finally:
            endpoint.release()

    def _account(self, lines: int, to_nic: bool = True) -> None:
        self.lines_transferred += lines
        self.transactions += 1
        if to_nic:
            self.lines_to_nic += lines
        else:
            self.lines_to_host += lines
        if self.tracer is not None:
            self.tracer.record_transfer(self.name, lines, self.sim.now)

    # -- telemetry -----------------------------------------------------------

    def enable_usage(self) -> None:
        """Exact endpoint-occupancy accounting on both engines (idempotent)."""
        self.endpoint.enable_usage()
        if self.write_endpoint is not self.endpoint:
            self.write_endpoint.enable_usage()

    def timeline_probes(self):
        """Timeline probe set: per-direction line counters + exact endpoint
        busy integrals (capacity-normalized, so the windowed derivative is
        the endpoint utilization)."""
        self.enable_usage()
        sim = self.sim
        probes = [
            ("lines_to_nic", "counter", lambda: self.lines_to_nic),
            ("lines_to_host", "counter", lambda: self.lines_to_host),
        ]
        engines = [("read_endpoint", self.endpoint)]
        if self.write_endpoint is not self.endpoint:
            engines.append(("write_endpoint", self.write_endpoint))
        for label, engine in engines:
            probes.append((
                f"{label}_busy_ns", "counter",
                lambda e=engine: e.usage.busy_integral(
                    sim.now, e._in_use) / e.capacity,
            ))
            probes.append((f"{label}_queue", "gauge",
                           lambda e=engine: len(e._waiters)))
        return probes
