"""UPI coherent-interconnect CPU-NIC interface — the Dagger design.

The CPU's only per-RPC work is storing the ready-to-use RPC object into a
shared ring (two AVX-256 stores for 64 B); the coherence protocol moves the
data. The NIC's per-flow RX FSM polls its Host Coherent Cache and, on
invalidation, pulls the lines from the host LLC (section 4.4.1).

Model:

- per-flow read-transaction issue occupancy ``upi_flow_read_ns`` (+
  ``upi_read_line_ns`` per extra line in a CCI-P batch) — this serial
  pacing is the 8.1 Mrps bound at batch 1;
- shared blue-region endpoint occupancy ``upi_endpoint_line_ns`` per line —
  the ~80 Mrps aggregate cap of Fig 11 (right);
- one-way data latency ``upi_oneway_ns`` (400 ns, section 4.4), pipelined
  across up to 128 outstanding transactions.
"""

from __future__ import annotations

from typing import Generator

from repro.hw.interconnect.base import CpuNicInterface, TransferMode


class UpiInterface(CpuNicInterface):
    """Coherent-memory interface over Intel UPI via CCI-P."""

    name = "upi"
    mode = TransferMode.FETCH

    def tx_cpu_cost_ns(self, lines: int, batch: int) -> int:
        # The whole point of the design: no doorbells, no MMIO. The ring
        # store itself is already accounted as the baseline CPU tx cost.
        del lines, batch
        return 0

    def issue_occupancy_ns(self, lines: int) -> int:
        if lines < 1:
            raise ValueError(f"lines must be >= 1, got {lines}")
        return (self.calibration.upi_flow_read_ns
                + (lines - 1) * self.calibration.upi_read_line_ns)

    def host_to_nic(self, lines: int) -> Generator:
        # _account + _use_endpoint inlined: one transfer per batch per RPC,
        # and the delegated helper generator is pure overhead on this path.
        self.lines_transferred += lines
        self.transactions += 1
        self.lines_to_nic += lines
        if self.tracer is not None:
            self.tracer.record_transfer(self.name, lines, self.sim.now)
        calibration = self.calibration
        endpoint = self.endpoint
        if not endpoint.try_acquire():
            yield endpoint.request()
        try:
            yield calibration.upi_endpoint_line_ns * lines
        finally:
            endpoint.release()
        yield calibration.upi_oneway_ns

    def nic_to_host(self, lines: int) -> Generator:
        self.lines_transferred += lines
        self.transactions += 1
        self.lines_to_host += lines
        if self.tracer is not None:
            self.tracer.record_transfer(self.name, lines, self.sim.now)
        calibration = self.calibration
        endpoint = self.write_endpoint
        if not endpoint.try_acquire():
            yield endpoint.request()
        try:
            yield calibration.upi_endpoint_line_ns * lines
        finally:
            endpoint.release()
        yield calibration.upi_nic_to_host_ns

    def raw_read(self) -> Generator:
        """One raw coherent read of a shared line (§5.3: ~400 ns)."""
        self._account(1)
        yield from self._use_endpoint(self.calibration.upi_endpoint_line_ns)
        yield self.calibration.upi_oneway_ns
