"""Software RX/TX rings, provisioned per NIC flow (Fig 8).

Each NIC flow is 1-to-1 mapped to an RX/TX ring pair in software:

- the **TX ring** holds outgoing RPCs until the NIC's RX FSM fetches them
  (software blocks when the ring is full — "flow blocking", section 4.4);
- the **RX ring** receives incoming RPCs written by the NIC's TX FSM; when
  software does not drain it fast enough the NIC drops packets (counted by
  the packet monitor, kept <1% in the paper's experiments).

Free-buffer bookkeeping is implicit in the Store capacity: a put is the
paper's "write to a free entry", a get is "bookkeeping releases the entry".

Both rings are driven through the zero-yield ``try_*`` fast paths on their
uncontended sides (see :mod:`repro.sim.resources`): software enqueues into
a non-full TX ring and the fetch FSM/dispatch pollers drain non-empty
rings without a kernel round-trip; the NIC's RX-ring writes stay
``try_put`` (overflow counts a drop, ``reject_when_full``), and only a
full TX ring falls back to the evented blocking put — that is exactly the
paper's "flow blocking".
"""

from __future__ import annotations

from repro.sim.kernel import Simulator
from repro.sim.resources import Store


class FlowRings:
    """The ring pair backing one NIC flow."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        tx_entries: int,
        rx_entries: int,
    ):
        self.flow_id = flow_id
        # Outgoing: software -> NIC. Blocking put models flow blocking.
        self.tx_ring = Store(sim, capacity=tx_entries, name=f"tx-ring{flow_id}")
        # Incoming: NIC -> software. Non-blocking NIC writes; overflow drops.
        self.rx_ring = Store(
            sim,
            capacity=rx_entries,
            name=f"rx-ring{flow_id}",
            reject_when_full=True,
        )

    @property
    def tx_occupancy(self) -> int:
        return len(self.tx_ring)

    @property
    def rx_occupancy(self) -> int:
        return len(self.rx_ring)

    def enable_usage(self) -> None:
        """Exact depth/backpressure accounting on both rings (idempotent)."""
        self.tx_ring.enable_usage()
        self.rx_ring.enable_usage()

    def timeline_probes(self):
        """Timeline probe set: instantaneous ring depths + drop counter."""
        return [
            ("tx_depth", "gauge", lambda: len(self.tx_ring)),
            ("rx_depth", "gauge", lambda: len(self.rx_ring)),
            ("rx_drops", "counter", lambda: self.rx_ring.drops),
        ]
