"""NIC TX path: delivering received RPCs into software RX rings (Fig 9).

Architecture (Fig 9B): incoming RPCs are written into a *request table*
(lookup table indexed by slot_id, sized B x N_flows); the *free-slot FIFO*
tracks empty entries; per-flow *flow FIFOs* carry only slot references; the
*flow scheduler* picks a flow FIFO with enough entries to form a
transmission batch and instructs the *CCI-P transmitter* to write the batch
into the corresponding software RX ring.

When the free-slot FIFO is empty the packet is dropped (on-NIC buffering is
finite); when a software RX ring is full the delivery drops there instead.
Both drop classes are visible in the packet monitor.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.rpc.messages import RpcPacket
from repro.sim.resources import Store


class RequestTable:
    """Slot-indexed packet storage + free-slot FIFO (Fig 9B, green table)."""

    def __init__(self, sim, num_slots: int):
        if num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {num_slots}")
        self.num_slots = num_slots
        self._slots: Dict[int, RpcPacket] = {}
        self.free_slots = Store(sim, capacity=num_slots, name="free-slot-fifo")
        for slot_id in range(num_slots):
            assert self.free_slots.try_put(slot_id)

    def acquire(self, packet: RpcPacket) -> Optional[int]:
        """Store a packet in a free slot; None when the table is full."""
        slot_id = self.free_slots.try_get()
        if slot_id is None:
            return None
        self._slots[slot_id] = packet
        return slot_id

    def read_and_release(self, slot_id: int) -> RpcPacket:
        packet = self._slots.pop(slot_id)
        assert self.free_slots.try_put(slot_id)
        return packet

    @property
    def occupancy(self) -> int:
        return len(self._slots)


class TxPath:
    """Steering + per-flow delivery schedulers of one NIC."""

    def __init__(self, nic):
        self.nic = nic
        hard = nic.hard
        self.request_table = RequestTable(
            nic.sim, hard.max_batch * hard.num_flows
        )
        self.flow_fifos: List[Store] = [
            Store(
                nic.sim,
                capacity=hard.flow_fifo_entries,
                name=f"flow-fifo{i}",
                reject_when_full=True,
            )
            for i in range(hard.num_flows)
        ]
        # Exact serial busy time of the flow schedulers' CCI-P issue slots
        # (summed across flows; one int add per delivered batch).
        self.issue_busy_ns = 0

    def timeline_probes(self):
        """Timeline probe set: exact flow-scheduler occupancy + queue depths.

        ``sched_busy_ns`` is the summed issue-slot busy integral normalized
        by the flow count, so its windowed derivative is the mean flow
        scheduler occupancy — the §4.4 serial pacing bound.
        """
        num_flows = max(1, len(self.flow_fifos))
        return [
            ("sched_busy_ns", "counter",
             lambda: self.issue_busy_ns / num_flows),
            ("flow_fifo_depth", "gauge",
             lambda: sum(len(f) for f in self.flow_fifos)),
            ("request_table", "gauge",
             lambda: self.request_table.occupancy),
        ]

    def start(self) -> None:
        for flow_id in range(self.nic.hard.num_flows):
            self.nic.sim.spawn(self._flow_scheduler(flow_id))

    # -- steering (fed by the ingress pipeline) ------------------------------

    def enqueue(self, packet: RpcPacket, flow_id: int) -> None:
        """Place a packet into a flow FIFO via the request table."""
        nic = self.nic
        if not 0 <= flow_id < nic.hard.num_flows:
            raise ValueError(
                f"flow {flow_id} out of range (num_flows={nic.hard.num_flows})"
            )
        slot_id = self.request_table.acquire(packet)
        if slot_id is None:
            nic.monitor.dropped_flow_fifo += 1
            self._notify_drop(packet)
            return
        if not self.flow_fifos[flow_id].try_put(slot_id):
            self.request_table.read_and_release(slot_id)
            nic.monitor.dropped_flow_fifo += 1
            self._notify_drop(packet)

    def _notify_drop(self, packet: RpcPacket) -> None:
        if self.nic.transport is not None:
            self.nic.transport.on_receiver_drop(packet)

    # -- delivery -------------------------------------------------------------

    def _flow_scheduler(self, flow_id: int) -> Generator:
        # Delivery always batches greedily: take whatever already queued, up
        # to the configured batch width (the RX rings "accumulate a batch of
        # requests before sending them to the completion queue", §4.4). The
        # batch collection is written inline — a delegated generator per
        # batch is measurable on this path.
        nic = self.nic
        fifo = self.flow_fifos[flow_id]
        get = fifo.get
        try_get = fifo.try_get
        read_and_release = self.request_table.read_and_release
        line_bytes = nic.calibration.cache_line_bytes
        issue_occupancy_ns = nic.interface.issue_occupancy_ns
        spawn = nic.sim.spawn
        while True:
            # Zero-yield fast path: a non-empty FIFO hands the batch head
            # over synchronously; only an empty FIFO parks the scheduler.
            first = try_get()
            if first is None:
                first = yield get()
            slot_ids = [first]
            soft = nic.soft
            target = (nic.hard.max_batch if soft.auto_batch
                      else soft.batch_size)
            while len(slot_ids) < target:
                more = try_get()
                if more is None:
                    break
                slot_ids.append(more)
            batch = [read_and_release(s) for s in slot_ids]
            lines = sum(pkt.lines(line_bytes) for pkt in batch)
            # The CCI-P write pipelines like the fetch path: the delivery is
            # issued immediately, the scheduler is paced by the issue slot.
            spawn(self._complete_delivery(flow_id, batch, lines))
            occupancy = issue_occupancy_ns(lines)
            self.issue_busy_ns += occupancy
            yield occupancy

    def _complete_delivery(self, flow_id: int, batch: List[RpcPacket],
                           lines: int) -> Generator:
        nic = self.nic
        rings = nic.flow_rings[flow_id]
        yield from nic.interface.nic_to_host(lines)
        tracer = nic.tracer
        transport = nic.transport
        if transport is None:
            for pkt in batch:
                pkt.stamp("host_delivered", nic.sim.now)
                if rings.rx_ring.try_put(pkt):
                    nic.monitor.delivered_rpcs += 1
                    if tracer is not None:
                        tracer.record_packet(pkt, "host_delivered",
                                             nic.sim.now)
                else:
                    nic.monitor.dropped_rx_ring += 1
            return
        rx_ring = rings.rx_ring
        for pkt in batch:
            # Ring-full is checked *before* committing delivery to the
            # transport, and duplicates are suppressed *before* the ring:
            # the host must never execute one RPC twice, and the receiver
            # state must never record a packet the ring then rejects.
            if not rx_ring.can_accept:
                nic.monitor.dropped_rx_ring += 1
                self._notify_drop(pkt)
                continue
            if not transport.on_delivered(pkt):
                continue  # duplicate: counted in TransportStats
            pkt.stamp("host_delivered", nic.sim.now)
            assert rx_ring.try_put(pkt)
            nic.monitor.delivered_rpcs += 1
            if tracer is not None:
                tracer.record_packet(pkt, "host_delivered", nic.sim.now)
