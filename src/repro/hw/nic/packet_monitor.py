"""Packet Monitor: the NIC's statistics block (Fig 6).

Plain counters, readable at any time by experiments (the paper reads them
through soft registers). Drop accounting is what the KVS experiments use to
keep server-side drops below 1%.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PacketMonitor:
    """Networking statistics for one NIC instance."""

    tx_rpcs: int = 0  # RPCs sent to the network
    rx_rpcs: int = 0  # RPCs received from the network
    fetched_rpcs: int = 0  # RPCs pulled from host TX rings
    delivered_rpcs: int = 0  # RPCs written into host RX rings
    dropped_rx_ring: int = 0  # host RX ring was full
    dropped_flow_fifo: int = 0  # on-NIC flow FIFO was full
    batches: int = 0
    batched_rpcs: int = 0  # sum of batch sizes (for mean occupancy)
    connection_misses: int = 0

    @property
    def drops(self) -> int:
        return self.dropped_rx_ring + self.dropped_flow_fifo

    @property
    def drop_rate(self) -> float:
        """Fraction of received RPCs that were dropped before delivery."""
        if not self.rx_rpcs:
            return 0.0
        return self.drops / self.rx_rpcs

    @property
    def mean_batch(self) -> float:
        return self.batched_rpcs / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        """A plain-dict snapshot (what a soft-register read would return)."""
        return {
            "tx_rpcs": self.tx_rpcs,
            "rx_rpcs": self.rx_rpcs,
            "fetched_rpcs": self.fetched_rpcs,
            "delivered_rpcs": self.delivered_rpcs,
            "drops": self.drops,
            "drop_rate": self.drop_rate,
            "mean_batch": self.mean_batch,
        }
