"""The Dagger NIC (the FPGA green-region design of Figs 6, 8 and 9).

One Python module per RTL block:

- :mod:`config` — hard configuration (SystemVerilog parameters: flow count,
  ring sizes, connection-cache entries) vs soft configuration (runtime soft
  register file: batch size, load balancer, active flows).
- :mod:`rings` — the software RX/TX rings + free-buffer bookkeeping (Fig 8).
- :mod:`rx_path` — the RX FSM fetching RPCs from host TX rings.
- :mod:`tx_path` — request table, free-slot FIFO, flow FIFOs, flow
  scheduler, CCI-P transmitter (Fig 9).
- :mod:`load_balancer` — round-robin / static / object-level balancers.
- :mod:`connection_manager` — the 1W3R direct-mapped connection cache.
- :mod:`packet_monitor` — networking statistics counters.
- :mod:`dagger_nic` — the top level wiring everything together.
- :mod:`resources` — Table 1's FPGA LUT/BRAM/register estimator.
- :mod:`virtualization` — multi-NIC instancing on one FPGA (Fig 14).
"""

from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.connection_manager import ConnectionManager, ConnectionTuple
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.nic.load_balancer import (
    LoadBalancer,
    ObjectLevelBalancer,
    RoundRobinBalancer,
    StaticBalancer,
    make_balancer,
)
from repro.hw.nic.packet_monitor import PacketMonitor
from repro.hw.nic.resources import FpgaResources, estimate_resources
from repro.hw.nic.virtualization import VirtualizedFpga

__all__ = [
    "NicHardConfig",
    "NicSoftConfig",
    "ConnectionManager",
    "ConnectionTuple",
    "DaggerNic",
    "LoadBalancer",
    "RoundRobinBalancer",
    "StaticBalancer",
    "ObjectLevelBalancer",
    "make_balancer",
    "PacketMonitor",
    "FpgaResources",
    "estimate_resources",
    "VirtualizedFpga",
]
