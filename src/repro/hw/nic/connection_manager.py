"""Connection Manager: the 1W3R direct-mapped connection cache (section 4.2).

The connection table maps connection IDs onto ``<src_flow, dest_addr,
load_balancer>`` tuples. The RTL breaks the tuple into three tables indexed
by the low bits of the connection ID so that the outgoing flow, the
incoming flow, and the CM itself can read concurrently (1W3R); here the
banked organisation is modelled as a single direct-mapped cache with no
port contention, which matches the RTL's stall-free behaviour.

Misses fall back to a DRAM-backed table (the paper's planned extension,
implemented here) at ``nic_connection_miss_ns`` — or raise when DRAM
backing is hard-configured off, modelling the paper's current prototype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.hw.cache import DirectMappedCache
from repro.hw.calibration import Calibration
from repro.rpc.errors import ConnectionError_
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class ConnectionTuple:
    """One connection-table entry."""

    connection_id: int
    src_flow: int
    dest_address: str
    load_balancer: Optional[str] = None  # None -> NIC-wide default scheme

    def __post_init__(self):
        if self.connection_id < 0:
            raise ValueError(f"negative connection id {self.connection_id}")
        if self.src_flow < 0:
            raise ValueError(f"negative flow {self.src_flow}")
        if not self.dest_address:
            raise ValueError("empty destination address")


class ConnectionManager:
    """Functional + timing model of the CM block."""

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        num_entries: int,
        dram_backed: bool = True,
    ):
        self.sim = sim
        self.calibration = calibration
        self.cache = DirectMappedCache(num_entries, name="connection-cache")
        self.dram_backed = dram_backed
        self._dram: Dict[int, ConnectionTuple] = {}
        # Constant per-lookup latency, precomputed off the hot path.
        self._hit_ns = (calibration.nic_connection_lookup_cycles
                        * calibration.nic_cycle_ns)

    # -- control path (software, via soft reconfiguration unit) -------------

    def open_connection(self, entry: ConnectionTuple) -> None:
        if entry.connection_id in self._dram:
            raise ConnectionError_(
                f"connection {entry.connection_id} already open"
            )
        self._dram[entry.connection_id] = entry
        self.cache.insert(entry.connection_id, entry)

    def close_connection(self, connection_id: int) -> None:
        if connection_id not in self._dram:
            raise ConnectionError_(f"connection {connection_id} not open")
        del self._dram[connection_id]
        self.cache.invalidate(connection_id)

    @property
    def open_count(self) -> int:
        return len(self._dram)

    # -- data path (NIC pipeline) --------------------------------------------

    def lookup(self, connection_id: int) -> Generator:
        """Pipeline lookup; yields timing, returns the ConnectionTuple.

        Hot callers inline the cache-hit half of this (``cache.lookup`` +
        ``yield _hit_ns``) and only delegate to :meth:`lookup_miss` on a
        miss, skipping a generator per packet on the common path — the
        same fast-path-or-fall-back shape as the ``try_* or yield`` idiom
        on :class:`~repro.sim.resources.Resource`/``Store`` (the hit
        latency itself is still paid as an int-yield; unlike an idle
        resource grant, it is simulated time, not kernel overhead).
        """
        hit, entry = self.cache.lookup(connection_id)
        if hit:
            yield self._hit_ns
            return entry
        entry = yield from self.lookup_miss(connection_id)
        return entry

    def lookup_miss(self, connection_id: int) -> Generator:
        """DRAM fallback after a recorded cache miss (see :meth:`lookup`)."""
        backing = self._dram.get(connection_id)
        if backing is None:
            raise ConnectionError_(f"connection {connection_id} not open")
        if not self.dram_backed:
            # The prototype without DRAM backing cannot recover the state of
            # a conflict-evicted connection.
            raise ConnectionError_(
                f"connection {connection_id} evicted from the connection "
                "cache and DRAM backing is disabled"
            )
        yield self.calibration.nic_connection_miss_ns
        self.cache.insert(connection_id, backing)
        return backing
