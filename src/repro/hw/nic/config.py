"""NIC hard and soft configuration (section 4.1).

*Hard configuration* mirrors SystemVerilog parameters chosen at synthesis
time: number of flows, ring and FIFO depths, connection-cache size, the
CPU-NIC interface scheme. Changing it means "re-synthesizing" — in the
model, building a new NIC.

*Soft configuration* mirrors the soft register file reachable over MMIO at
runtime: CCI-P batch size, auto-batching, the load-balancing scheme, and
the number of active flows. It is mutable on a live NIC, which is exactly
what the Fig 11 auto-batching experiment exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Table 1: the connection cache tops out at ~153K connections given the
#: available green-region BRAM.
MAX_CONNECTION_CACHE_ENTRIES = 153_000
#: Table 1: max number of NIC flows under the 50% utilization constraint.
MAX_FLOWS = 512

LOAD_BALANCER_SCHEMES = ("round-robin", "static", "object-level")


@dataclass(frozen=True)
class NicHardConfig:
    """Synthesis-time parameters of one NIC instance."""

    num_flows: int = 4
    tx_ring_entries: int = 128  # per-flow software TX ring (requests)
    rx_ring_entries: int = 128  # per-flow software RX ring (deliveries)
    flow_fifo_entries: int = 64  # on-NIC per-flow ingress FIFO
    connection_cache_entries: int = 1024
    dram_backed_connections: bool = True  # §4.2 "future work", implemented
    max_batch: int = 16  # largest CCI-P batch the FSMs support
    interface: str = "upi"  # upi | pcie-doorbell | pcie-mmio
    reliable_transport: bool = False  # §4.5 "future work": Protocol unit
                                      # runs NACK/ACK reliability in HW
    flow_control: bool = False  # §4.5 "future work": receiver-driven
                                # credit-based congestion control in HW
    flow_control_credits: int = 32  # per-connection sender window
    credit_batch: int = 8  # credits returned per CREDIT grant
    hw_reassembly: bool = False  # §4.7 "future work": CAM-based on-chip
                                 # reassembly (no SW reassembly CPU cost)
    inline_crypto: bool = False  # §4.5: optional encryption logic in the
                                 # RPC unit (AES-GCM-style line pipeline)

    def __post_init__(self):
        if not 1 <= self.num_flows <= MAX_FLOWS:
            raise ValueError(
                f"num_flows must be in [1, {MAX_FLOWS}], got {self.num_flows}"
            )
        if not 1 <= self.connection_cache_entries <= MAX_CONNECTION_CACHE_ENTRIES:
            raise ValueError(
                "connection_cache_entries must be in "
                f"[1, {MAX_CONNECTION_CACHE_ENTRIES}], "
                f"got {self.connection_cache_entries}"
            )
        for name in ("tx_ring_entries", "rx_ring_entries", "flow_fifo_entries",
                     "max_batch", "flow_control_credits", "credit_batch"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.flow_control and self.flow_control_credits > self.rx_ring_entries:
            raise ValueError(
                "flow_control_credits must not exceed rx_ring_entries "
                f"({self.flow_control_credits} > {self.rx_ring_entries}): "
                "the credit window is what makes ring overflow impossible"
            )
        if self.interface not in ("upi", "pcie-doorbell", "pcie-mmio"):
            raise ValueError(f"unknown interface {self.interface!r}")


@dataclass
class NicSoftConfig:
    """Runtime-tunable soft register file."""

    batch_size: int = 1
    auto_batch: bool = False
    batch_timeout_ns: int = 3000  # fixed-B mode sends a partial batch after
                                  # this long (what makes low-load latency
                                  # "relatively high" but bounded, Fig 11)
    load_balancer: str = "round-robin"
    active_flows: int = 0  # 0 means "all hard-configured flows"

    def validate(self, hard: NicHardConfig) -> None:
        if not 1 <= self.batch_size <= hard.max_batch:
            raise ValueError(
                f"batch_size must be in [1, {hard.max_batch}], "
                f"got {self.batch_size}"
            )
        if self.batch_timeout_ns < 0:
            raise ValueError(
                f"batch_timeout_ns must be >= 0, got {self.batch_timeout_ns}"
            )
        if self.load_balancer not in LOAD_BALANCER_SCHEMES:
            raise ValueError(
                f"unknown load balancer {self.load_balancer!r}; "
                f"choose from {LOAD_BALANCER_SCHEMES}"
            )
        if not 0 <= self.active_flows <= hard.num_flows:
            raise ValueError(
                f"active_flows must be in [0, {hard.num_flows}], "
                f"got {self.active_flows}"
            )

    def effective_flows(self, hard: NicHardConfig) -> int:
        return self.active_flows or hard.num_flows
