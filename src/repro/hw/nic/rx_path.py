"""NIC RX path: fetching RPCs from software TX rings (Fig 8, left half).

One FSM per flow. For *fetch*-mode interfaces (UPI, PCIe doorbell) the FSM
collects a CCI-P batch from the flow's TX ring, pays the serial issue
occupancy (the per-flow throughput bound), and hands the in-flight transfer
to an asynchronous completion process so reads pipeline across the bus's
outstanding-request window, exactly like the RTL keeps 128 CCI-P requests
in flight while bookkeeping is pending.

Batching semantics mirror the soft-config modes of Fig 11 (left):

- fixed batch B: the FSM *waits* for B requests (low-load latency suffers);
- auto batch: the FSM takes what is already in the ring, up to the
  hard-config maximum (low latency at low load, full batches at high load).
"""

from __future__ import annotations

from typing import Generator, List

from repro.hw.interconnect.base import TransferMode
from repro.rpc.messages import RpcPacket


class RxPath:
    """All per-flow fetch FSMs of one NIC."""

    def __init__(self, nic):
        self.nic = nic
        # Exact serial busy time of the fetch FSMs' issue slots (summed
        # across flows; one int add per fetched batch). At batch 1 on UPI
        # this is *the* per-flow throughput bound (123 ns -> 8.1 Mrps), so
        # its utilization names the bottleneck of Fig 11's knee.
        self.issue_busy_ns = 0

    def timeline_probes(self):
        """Timeline probe set: exact fetch-FSM occupancy (see above)."""
        num_flows = max(1, self.nic.hard.num_flows)
        return [
            ("fetch_busy_ns", "counter",
             lambda: self.issue_busy_ns / num_flows),
        ]

    def start(self) -> None:
        if self.nic.interface.mode is not TransferMode.FETCH:
            return  # push-mode interfaces have no fetch FSMs
        for flow_id in range(self.nic.hard.num_flows):
            self.nic.sim.spawn(self._flow_fsm(flow_id))

    _POLL_NS = 100  # fixed-B mode polls the ring at this granularity

    def _collect_batch(self, flow_id: int) -> Generator:
        """Wait for the first request, then fill the batch per soft config."""
        ring = self.nic.flow_rings[flow_id].tx_ring
        sim = self.nic.sim
        # Zero-yield fast path: a non-empty ring yields the batch head
        # synchronously; only an empty ring parks the FSM on the evented get.
        first = ring.try_get()
        if first is None:
            first = yield ring.get()
        batch: List[RpcPacket] = [first]
        soft = self.nic.soft
        if soft.auto_batch:
            target = self.nic.hard.max_batch
            while len(batch) < target:
                more = ring.try_get()
                if more is None:
                    break
                batch.append(more)
        else:
            # Fixed B: wait for a full batch, but give up after the soft
            # batch timeout so a trickle of requests still makes progress.
            deadline = sim.now + soft.batch_timeout_ns
            while len(batch) < soft.batch_size:
                more = ring.try_get()
                if more is not None:
                    batch.append(more)
                    continue
                if sim.now >= deadline:
                    break
                yield min(self._POLL_NS, deadline - sim.now)
        return batch

    def _flow_fsm(self, flow_id: int) -> Generator:
        nic = self.nic
        while True:
            batch = yield from self._collect_batch(flow_id)
            lines = sum(pkt.lines(nic.calibration.cache_line_bytes)
                        for pkt in batch)
            nic.monitor.batches += 1
            nic.monitor.batched_rpcs += len(batch)
            # The transfer completes asynchronously (CCI-P keeps up to 128
            # requests in flight), so the read is issued immediately...
            nic.sim.spawn(self._complete_fetch(flow_id, batch, lines))
            # ...but the FSM cannot issue the *next* read until this one's
            # issue slot drains (123 ns + 20 ns/extra line on UPI): serial
            # pacing bounds per-flow throughput without inflating the
            # latency of an idle flow.
            occupancy = nic.interface.issue_occupancy_ns(lines)
            self.issue_busy_ns += occupancy
            yield nic.sim.timeout(occupancy)

    def _complete_fetch(self, flow_id: int, batch: List[RpcPacket],
                        lines: int) -> Generator:
        nic = self.nic
        yield from nic.interface.host_to_nic(lines)
        tracer = nic.tracer
        for pkt in batch:
            nic.monitor.fetched_rpcs += 1
            pkt.stamp("nic_fetched", nic.sim.now)
            if tracer is not None:
                tracer.record_packet(pkt, "nic_fetched", nic.sim.now)
            nic.enqueue_egress(flow_id, pkt)
