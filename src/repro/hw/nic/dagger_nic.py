"""Top-level Dagger NIC (Fig 6).

Wires the per-RTL-block models together:

- egress: software TX ring -> RX FSM (fetch over the interconnect) -> RPC
  unit (serializer) -> connection lookup -> transport -> Ethernet -> switch;
- ingress: switch -> RPC unit (de-serializer) -> connection lookup + load
  balancer -> flow FIFOs -> flow scheduler -> interconnect -> software RX
  ring.

The green-region pipeline runs at 200 MHz and processes one RPC per cycle
once full, modelled by a serial 5 ns pipeline resource (the "NIC itself is
capable of processing up to 200 Mrps", section 5.5).
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from repro.hw.calibration import Calibration
from repro.hw.ethernet import (
    ETHERNET_OVERHEAD_BYTES,
    MIN_FRAME_BYTES,
    EthernetPort,
)
from repro.hw.interconnect.base import CpuNicInterface, TransferMode
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.connection_manager import ConnectionManager, ConnectionTuple
from repro.hw.nic.load_balancer import LoadBalancer, make_balancer
from repro.hw.nic.packet_monitor import PacketMonitor
from repro.hw.nic.rings import FlowRings
from repro.hw.nic.rx_path import RxPath
from repro.hw.nic.tx_path import TxPath
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import HEADER_BYTES, RpcKind, RpcPacket
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource, Store

_connection_ids = itertools.count(1)


def next_connection_id() -> int:
    """Process-wide unique connection ids (as the CM would hand out)."""
    return next(_connection_ids)


class DaggerNic:
    """One NIC instance (one tenant's "virtual but physical" NIC, Fig 14)."""

    #: Optional repro.obs.SpanTracer; None keeps the data paths hook-free.
    tracer = None

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        interface: CpuNicInterface,
        switch: ToRSwitch,
        address: str,
        hard: Optional[NicHardConfig] = None,
        soft: Optional[NicSoftConfig] = None,
        balancer: Optional[LoadBalancer] = None,
    ):
        self.sim = sim
        self.calibration = calibration
        self.interface = interface
        self.switch = switch
        self.address = address
        self.hard = hard or NicHardConfig()
        self.soft = soft or NicSoftConfig()
        self.soft.validate(self.hard)

        self.monitor = PacketMonitor()
        self.connection_manager = ConnectionManager(
            sim,
            calibration,
            self.hard.connection_cache_entries,
            dram_backed=self.hard.dram_backed_connections,
        )
        # Custom application-specific balancers (e.g. MICA's object-level
        # hash) can be injected; otherwise built from the soft config.
        self.balancer = balancer or make_balancer(self.soft.load_balancer)
        self._conn_balancers = {}  # per-connection balancer overrides
        self.flow_rings = [
            FlowRings(
                sim, i, self.hard.tx_ring_entries, self.hard.rx_ring_entries
            )
            for i in range(self.hard.num_flows)
        ]
        self.pipeline = Resource(sim, capacity=1, name=f"{address}-pipeline")
        # Constant per-stage latencies, precomputed off the per-packet path.
        self._cycle_ns = calibration.nic_cycle_ns
        self._rpc_unit_ns = (calibration.nic_rpc_unit_cycles
                             * calibration.nic_cycle_ns)
        self._transport_ns = (calibration.nic_transport_cycles
                              * calibration.nic_cycle_ns)
        self._lb_ns = calibration.nic_lb_cycles * calibration.nic_cycle_ns
        self.eth = EthernetPort(sim, calibration, name=f"{address}-eth")
        self._ingress_queue = Store(sim, name=f"{address}-ingress")
        # Per-flow egress sequencers: fetched RPCs enter here in issue order
        # and are pushed through the RPC pipeline strictly FIFO per flow
        # (a connection-cache miss stalls the flow, it does not reorder it).
        self._egress_queues = [
            Store(sim, name=f"{address}-egress{i}")
            for i in range(self.hard.num_flows)
        ]
        for flow_id in range(self.hard.num_flows):
            sim.spawn(self._egress_sequencer(flow_id))
        # Control packets (ACK/NACK/CREDIT) use their own sequencer so a
        # data flow parked on credits can never block the protocol itself.
        self._control_queue = Store(sim, name=f"{address}-control")
        sim.spawn(self._control_sequencer())

        # §4.5 extensions: a hardware reliable transport and/or a
        # credit-based flow-control engine in the Protocol unit (both None
        # when the NIC runs the paper's idle/UDP-like protocol).
        self.transport = None
        if self.hard.reliable_transport:
            from repro.rpc.transport import ReliableTransport

            self.transport = ReliableTransport(self)
        self.flow_control = None
        if self.hard.flow_control:
            from repro.rpc.congestion import CreditFlowControl

            self.flow_control = CreditFlowControl(
                self, self.hard.flow_control_credits, self.hard.credit_batch
            )
            for rings in self.flow_rings:
                rings.rx_ring.on_get = self.flow_control.on_host_dequeue

        self.rx_path = RxPath(self)
        self.tx_path = TxPath(self)
        self.rx_path.start()
        self.tx_path.start()
        sim.spawn(self._ingress_unit())
        switch.register(address, self.ingress)

    # -- telemetry -------------------------------------------------------------

    def enable_usage(self) -> None:
        """Exact occupancy accounting on every queueing station (idempotent)."""
        self.pipeline.enable_usage()
        self.eth.enable_usage()
        self.interface.enable_usage()
        for rings in self.flow_rings:
            rings.enable_usage()

    def timeline_probes(self):
        """Aggregate timeline probe set for this NIC.

        Covers the green-region pipeline (exact busy integral), the
        ethernet port, the fetch FSM and flow scheduler occupancies, ring
        depths, the connection cache, the packet monitor counters and —
        when the §4.5 units are enabled — the transport in-flight window.
        Register with ``collector.add_source("nic.<role>", nic)``.
        """
        sim = self.sim
        pipeline = self.pipeline
        usage = pipeline.enable_usage()
        monitor = self.monitor
        cache = self.connection_manager.cache
        probes = [
            ("pipeline_busy_ns", "counter",
             lambda: usage.busy_integral(sim.now, pipeline._in_use)),
            ("tx_ring_depth", "gauge",
             lambda: sum(len(r.tx_ring) for r in self.flow_rings)),
            ("rx_ring_depth", "gauge",
             lambda: sum(len(r.rx_ring) for r in self.flow_rings)),
            ("rx_ring_drops", "counter",
             lambda: sum(r.rx_ring.drops for r in self.flow_rings)),
            ("conn_cache_hit_rate", "gauge", lambda: cache.hit_rate),
            ("conn_cache_misses", "counter", lambda: cache.misses),
            ("tx_rpcs", "counter", lambda: monitor.tx_rpcs),
            ("rx_rpcs", "counter", lambda: monitor.rx_rpcs),
            ("delivered_rpcs", "counter", lambda: monitor.delivered_rpcs),
        ]
        probes.extend(self.rx_path.timeline_probes())
        probes.extend(self.tx_path.timeline_probes())
        for name, mode, fn in self.eth.timeline_probes():
            probes.append((f"eth_{name}", mode, fn))
        if self.transport is not None:
            for name, mode, fn in self.transport.timeline_probes():
                probes.append((f"transport_{name}", mode, fn))
        if self.flow_control is not None:
            stats = self.flow_control.stats
            probes.append(("fc_stalls", "counter", lambda: stats.stalls))
        return probes

    # -- software-facing API ---------------------------------------------------

    def open_connection(
        self,
        connection_id: int,
        src_flow: int,
        dest_address: str,
        load_balancer: Optional[str] = None,
    ) -> ConnectionTuple:
        """Register a connection in the NIC's connection manager."""
        if not 0 <= src_flow < self.hard.num_flows:
            raise ValueError(
                f"flow {src_flow} out of range (num_flows={self.hard.num_flows})"
            )
        entry = ConnectionTuple(
            connection_id=connection_id,
            src_flow=src_flow,
            dest_address=dest_address,
            load_balancer=load_balancer,
        )
        self.connection_manager.open_connection(entry)
        return entry

    def close_connection(self, connection_id: int) -> None:
        self.connection_manager.close_connection(connection_id)

    def soft_reconfigure(self, thread, **changes) -> Generator:
        """Runtime soft reconfiguration (§4.1's Soft-Reconfiguration Unit).

        Writes the NIC's soft register file over PCIe MMIO from the given
        software thread — one MMIO per changed register — validates the
        result against the hard configuration, and applies it atomically.
        This is how the paper tunes batch size, balancer, and active flows
        on a live NIC without re-synthesizing.
        """
        if not changes:
            raise ValueError("soft_reconfigure needs at least one change")
        candidate = NicSoftConfig(
            batch_size=changes.get("batch_size", self.soft.batch_size),
            auto_batch=changes.get("auto_batch", self.soft.auto_batch),
            batch_timeout_ns=changes.get("batch_timeout_ns",
                                         self.soft.batch_timeout_ns),
            load_balancer=changes.get("load_balancer",
                                      self.soft.load_balancer),
            active_flows=changes.get("active_flows",
                                     self.soft.active_flows),
        )
        unknown = set(changes) - {"batch_size", "auto_batch",
                                  "batch_timeout_ns", "load_balancer",
                                  "active_flows"}
        if unknown:
            raise ValueError(f"unknown soft registers: {sorted(unknown)}")
        candidate.validate(self.hard)
        # One non-cacheable MMIO write per touched soft register.
        yield from thread.exec(
            len(changes) * self.calibration.mmio_doorbell_ns
        )
        if candidate.load_balancer != self.soft.load_balancer:
            self.balancer = make_balancer(candidate.load_balancer)
        self.soft = candidate

    def tx_cpu_cost_ns(self, packet: RpcPacket) -> int:
        """Interface-specific CPU cost the sender pays for this packet."""
        lines = packet.lines(self.calibration.cache_line_bytes)
        batch = (self.hard.max_batch if self.soft.auto_batch
                 else self.soft.batch_size)
        return self.interface.tx_cpu_cost_ns(lines, batch)

    def send_from_host(self, flow_id: int, packet: RpcPacket) -> Generator:
        """Hand a packet to the NIC (yields; may block on a full TX ring)."""
        if not 0 <= flow_id < self.hard.num_flows:
            raise ValueError(
                f"flow {flow_id} out of range (num_flows={self.hard.num_flows})"
            )
        packet.src_address = self.address
        if packet.kind is RpcKind.REQUEST:
            packet.src_flow = flow_id
        packet.stamp("sw_tx", self.sim.now)
        if self.tracer is not None:
            self.tracer.record_packet(packet, "sw_tx", self.sim.now)
        if self.interface.mode is TransferMode.PUSH:
            # WQE-by-MMIO: payload crosses as CPU-issued MMIO writes; no
            # ring, no fetch FSM.
            lines = packet.lines(self.calibration.cache_line_bytes)
            self.sim.spawn(self._push_transfer(packet, lines, flow_id))
            return
        tx_ring = self.flow_rings[flow_id].tx_ring
        if not tx_ring.try_put(packet):
            # Full ring: fall back to the blocking put (flow blocking, §4.4).
            yield tx_ring.put(packet)

    def rx_ring(self, flow_id: int) -> Store:
        """The software RX ring for a flow (what a dispatch thread polls)."""
        return self.flow_rings[flow_id].rx_ring

    # -- egress data path --------------------------------------------------------

    def _push_transfer(self, packet: RpcPacket, lines: int,
                       flow_id: int = 0) -> Generator:
        yield from self.interface.host_to_nic(lines)
        self.monitor.fetched_rpcs += 1
        packet.stamp("nic_fetched", self.sim.now)
        if self.tracer is not None:
            self.tracer.record_packet(packet, "nic_fetched", self.sim.now)
        self.enqueue_egress(flow_id, packet)

    def enqueue_egress(self, flow_id: int, packet: RpcPacket) -> None:
        """Hand a fetched packet to its flow's in-order egress sequencer."""
        if packet.kind is RpcKind.CONTROL:
            self._control_queue.try_put(packet)
        else:
            self._egress_queues[flow_id].try_put(packet)

    def _egress_sequencer(self, flow_id: int) -> Generator:
        # Body of egress_pipeline() inlined below (one delegated generator
        # per transmitted packet otherwise); keep the two in sync. Every
        # queueing station takes the zero-yield try_* fast path when
        # uncontended and falls back to the evented wait otherwise.
        queue = self._egress_queues[flow_id]
        get = queue.get
        try_get = queue.try_get
        pipeline = self.pipeline
        pipeline_try_acquire = pipeline.try_acquire
        connection_manager = self.connection_manager
        cache_lookup = connection_manager.cache.lookup
        lookup_hit_ns = connection_manager._hit_ns
        lookup_miss = connection_manager.lookup_miss
        monitor = self.monitor
        eth = self.eth
        eth_port_request = eth._port.request
        eth_port_try_acquire = eth._port.try_acquire
        eth_port_release = eth._port.release
        eth_bytes_per_ns = eth.calibration.eth_bytes_per_ns
        switch_send = self.switch.send
        sim = self.sim
        while True:
            packet = try_get()
            if packet is None:
                packet = yield get()
            flow_control = self.flow_control
            if (flow_control is not None
                    and not flow_control.try_acquire(packet)):
                yield from flow_control.acquire(packet)
            if not pipeline_try_acquire():
                yield pipeline.request()
            try:
                yield self._cycle_ns
            finally:
                pipeline.release()
            yield self._rpc_unit_ns
            if self.hard.inline_crypto and packet.kind is not RpcKind.CONTROL:
                yield self._crypto_ns(packet)
            # connection_manager.lookup inlined on the hit path (a generator
            # per packet otherwise); misses take the full path.
            hit, entry = cache_lookup(packet.connection_id)
            if hit:
                yield lookup_hit_ns
            else:
                monitor.connection_misses += 1
                entry = yield from lookup_miss(packet.connection_id)
            if packet.kind is RpcKind.REQUEST:
                packet.dst_address = entry.dest_address
            if self.transport is not None:
                self.transport.on_egress(packet)
            yield self._transport_ns
            # eth.transmit(packet.wire_bytes) inlined (same grant / delay /
            # release events, no delegated generator per frame); keep in
            # sync with EthernetPort.transmit.
            if not eth_port_try_acquire():
                yield eth_port_request()
            try:
                wire_bytes = HEADER_BYTES + packet.payload_bytes
                if wire_bytes < MIN_FRAME_BYTES:
                    wire_bytes = MIN_FRAME_BYTES
                wire_bytes += ETHERNET_OVERHEAD_BYTES
                delay = int(wire_bytes / eth_bytes_per_ns)
                eth.frames += 1
                eth.bytes += wire_bytes
                yield delay if delay > 1 else 1
            finally:
                eth_port_release()
            packet.stamp("wire_tx", sim.now)
            if self.tracer is not None:
                self.tracer.record_packet(packet, "wire_tx", sim.now)
            monitor.tx_rpcs += 1
            switch_send(packet.dst_address, packet)

    def _control_sequencer(self) -> Generator:
        queue = self._control_queue
        get = queue.get
        try_get = queue.try_get
        while True:
            packet = try_get()
            if packet is None:
                packet = yield get()
            yield from self.egress_pipeline(packet)

    def egress_pipeline(self, packet: RpcPacket) -> Generator:
        """RPC unit (serializer) -> connection lookup -> transport -> wire."""
        sim = self.sim
        pipeline = self.pipeline
        # pipeline.use(cycle) inlined: same grant/timeout/release events
        # without a delegated generator per packet.
        if not pipeline.try_acquire():
            yield pipeline.request()
        try:
            yield self._cycle_ns
        finally:
            pipeline.release()
        yield self._rpc_unit_ns
        if self.hard.inline_crypto and packet.kind is not RpcKind.CONTROL:
            yield self._crypto_ns(packet)
        connection_manager = self.connection_manager
        misses_before = connection_manager.cache.misses
        entry = yield from connection_manager.lookup(packet.connection_id)
        self.monitor.connection_misses += (
            connection_manager.cache.misses - misses_before
        )
        if packet.kind is RpcKind.REQUEST:
            packet.dst_address = entry.dest_address
        if self.transport is not None:
            self.transport.on_egress(packet)
        yield self._transport_ns
        yield from self.eth.transmit(packet.wire_bytes)
        packet.stamp("wire_tx", self.sim.now)
        if self.tracer is not None:
            self.tracer.record_packet(packet, "wire_tx", self.sim.now)
        self.monitor.tx_rpcs += 1
        self.switch.send(packet.dst_address, packet)

    # -- ingress data path ---------------------------------------------------------

    def ingress(self, packet: RpcPacket) -> None:
        """Switch-facing entry point (runs at packet arrival time)."""
        self.monitor.rx_rpcs += 1
        packet.stamp("nic_rx", self.sim.now)
        if self.tracer is not None:
            self.tracer.record_packet(packet, "nic_rx", self.sim.now)
        self._ingress_queue.try_put(packet)

    def _ingress_unit(self) -> Generator:
        # The ingress pipeline accepts one packet per cycle; the remaining
        # stage latency is paid per packet in a spawned continuation so the
        # unit pipelines like the RTL instead of serializing ~7 cycles.
        sim = self.sim
        pipeline = self.pipeline
        pipeline_try_acquire = pipeline.try_acquire
        cycle_ns = self._cycle_ns
        queue = self._ingress_queue
        get = queue.get
        try_get = queue.try_get
        spawn = sim.spawn
        steer = self._ingress_steer
        while True:
            packet = try_get()
            if packet is None:
                packet = yield get()
            if not pipeline_try_acquire():
                yield pipeline.request()
            try:
                yield cycle_ns
            finally:
                pipeline.release()
            spawn(steer(packet))

    def _crypto_ns(self, packet: RpcPacket) -> int:
        """Latency of the optional inline encryption stage (§4.5)."""
        cal = self.calibration
        lines = packet.lines(cal.cache_line_bytes)
        return lines * cal.nic_crypto_cycles_per_line * cal.nic_cycle_ns

    def _ingress_steer(self, packet: RpcPacket) -> Generator:
        sim = self.sim
        yield self._rpc_unit_ns
        if self.hard.inline_crypto and packet.kind is not RpcKind.CONTROL:
            yield self._crypto_ns(packet)
        connection_manager = self.connection_manager
        hit, entry = connection_manager.cache.lookup(packet.connection_id)
        if hit:
            yield connection_manager._hit_ns
        else:
            entry = yield from connection_manager.lookup_miss(
                packet.connection_id
            )
        yield self._lb_ns
        if packet.kind is RpcKind.CONTROL:
            # NIC-terminated protocol packet: never reaches a host ring.
            from repro.rpc.congestion import CREDIT_METHOD

            if (packet.method == CREDIT_METHOD
                    and self.flow_control is not None):
                self.flow_control.on_control(packet)
            elif self.transport is not None:
                self.transport.on_control(packet)
            return
        if packet.kind is RpcKind.RESPONSE:
            # Responses are steered back to the flow their request used.
            flow_id = packet.src_flow
        else:
            balancer = self.balancer
            if entry.load_balancer is not None:
                key = (entry.connection_id, entry.load_balancer)
                balancer = self._conn_balancers.get(key)
                if balancer is None:
                    balancer = make_balancer(entry.load_balancer)
                    self._conn_balancers[key] = balancer
            flow_id = balancer.pick_flow(
                packet,
                self.soft.effective_flows(self.hard),
                preferred_flow=entry.src_flow,
            )
        self.tx_path.enqueue(packet, flow_id)
