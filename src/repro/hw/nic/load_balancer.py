"""Request load balancers for the NIC's ingress path (sections 4.4.2, 5.7).

The Load Balancer distributes incoming RPC *requests* over the NIC's active
flows (responses are not balanced — they are steered back to the flow their
request came from). Three schemes, as in the paper:

- **round-robin** — "dynamic uniform steering": even spread over flows.
- **static** — per-connection preferred flow from the connection tuple.
- **object-level** — MICA's scheme: hash the request's key on the FPGA so
  all requests for one key land on the partition-owning flow.
"""

from __future__ import annotations

from typing import Optional

from repro.rpc.messages import RpcPacket


class LoadBalancer:
    """Base class: picks the target flow index for a request."""

    name = "base"

    def pick_flow(self, packet: RpcPacket, num_flows: int,
                  preferred_flow: Optional[int] = None) -> int:
        raise NotImplementedError


class RoundRobinBalancer(LoadBalancer):
    """Dynamic uniform steering."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def pick_flow(self, packet: RpcPacket, num_flows: int,
                  preferred_flow: Optional[int] = None) -> int:
        del packet, preferred_flow
        flow = self._next % num_flows
        self._next = (self._next + 1) % num_flows
        return flow


class StaticBalancer(LoadBalancer):
    """Static balancing from connection-tuple information."""

    name = "static"

    def pick_flow(self, packet: RpcPacket, num_flows: int,
                  preferred_flow: Optional[int] = None) -> int:
        if preferred_flow is None:
            # No preference recorded: deterministic fallback on connection id.
            return packet.connection_id % num_flows
        if not 0 <= preferred_flow < num_flows:
            raise ValueError(
                f"preferred flow {preferred_flow} out of range "
                f"(num_flows={num_flows})"
            )
        return preferred_flow


class ObjectLevelBalancer(LoadBalancer):
    """MICA's object-level core affinity: key hash -> partition/flow.

    Requests must carry ``lb_key`` (the key hash computed by the stub);
    requests without a key fall back to connection-id steering so non-KVS
    traffic on the same NIC still works.
    """

    name = "object-level"

    def pick_flow(self, packet: RpcPacket, num_flows: int,
                  preferred_flow: Optional[int] = None) -> int:
        del preferred_flow
        if packet.lb_key is None:
            return packet.connection_id % num_flows
        return packet.lb_key % num_flows


def make_balancer(scheme: str) -> LoadBalancer:
    balancers = {
        RoundRobinBalancer.name: RoundRobinBalancer,
        StaticBalancer.name: StaticBalancer,
        ObjectLevelBalancer.name: ObjectLevelBalancer,
    }
    try:
        return balancers[scheme]()
    except KeyError:
        raise ValueError(
            f"unknown load balancer {scheme!r}; choose from {sorted(balancers)}"
        ) from None
