"""FPGA resource estimator — reproduces Table 1.

Analytic model of the Dagger NIC's LUT / BRAM (M20K) / register footprint
as a function of its hard configuration, calibrated so that the paper's
reference configuration (UPI I/O, 64 flows, 65K connection-cache entries,
blue region included) lands on Table 1's numbers: 87.1K LUTs (20%), 555
M20K blocks (20%), 120.8K registers.

The device is an Arria 10 GX1150: ~427K ALMs (~2 LUT-equivalents each; we
follow the paper and report against a 435K LUT budget so 87.1K = 20%) and
2713 M20K blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.nic.config import NicHardConfig

# Arria 10 GX1150 budgets (denominators for the utilization percentages).
DEVICE_LUTS = 435_500
DEVICE_M20K = 2_713
DEVICE_REGISTERS = 1_708_800

# Blue bitstream (CCI-P IP, Ethernet PHY, clocking, HCC): fixed overhead.
_BLUE_LUTS = 39_800
_BLUE_M20K = 192
_BLUE_REGISTERS = 59_000

# Green region, per-unit costs (calibrated to Table 1's reference point).
_LUTS_PER_FLOW = 285.0
_REGS_PER_FLOW = 750.0
_M20K_PER_FLOW = 1.2
_LUTS_PER_K_CONNECTIONS = 444.0
_M20K_PER_K_CONNECTIONS = 4.0
_REGS_PER_K_CONNECTIONS = 210.0
_RING_BYTES_PER_ENTRY = 64  # request-table slot = one cache line
_M20K_BITS = 20_480

# §4.7 extension: CAM-based on-chip RPC reassembly. CAMs are expensive on
# FPGAs ("challenging to implement with low overheads") — a match line per
# slot costs disproportionate logic and registers.
_CAM_LUTS = 14_000
_CAM_LUTS_PER_FLOW = 95.0
_CAM_M20K = 48
_CAM_REGISTERS = 21_000

# §4.5 extension: reliable transport in the Protocol unit (retransmit
# buffer + sequence/ACK tracking).
_RELIABLE_LUTS = 5_200
_RELIABLE_M20K_PER_FLOW = 0.6
_RELIABLE_REGISTERS = 7_500

# §4.5 extension: credit-based flow control (per-connection credit
# counters + grant generation).
_FLOW_CONTROL_LUTS = 3_800
_FLOW_CONTROL_M20K = 16
_FLOW_CONTROL_REGISTERS = 5_600

# §4.5 option: inline AES-GCM-style encryption pipelines in the RPC unit
# (one each way; key schedule in BRAM).
_CRYPTO_LUTS = 11_500
_CRYPTO_M20K = 24
_CRYPTO_REGISTERS = 16_000


@dataclass(frozen=True)
class FpgaResources:
    """Estimated footprint of one NIC configuration."""

    luts: int
    m20k_blocks: int
    registers: int

    @property
    def lut_utilization(self) -> float:
        return self.luts / DEVICE_LUTS

    @property
    def bram_utilization(self) -> float:
        return self.m20k_blocks / DEVICE_M20K

    @property
    def register_utilization(self) -> float:
        return self.registers / DEVICE_REGISTERS

    def fits(self, max_utilization: float = 0.5) -> bool:
        """Table 1's constraint: BRAM and logic below 50%."""
        return (self.lut_utilization <= max_utilization
                and self.bram_utilization <= max_utilization)


def estimate_resources(
    hard: NicHardConfig, include_blue_region: bool = True, instances: int = 1
) -> FpgaResources:
    """Estimate the footprint of ``instances`` copies of a NIC config.

    The blue region is shared by all instances (it is part of the shell),
    so it is counted once.
    """
    if instances < 1:
        raise ValueError(f"instances must be >= 1, got {instances}")
    conn_k = hard.connection_cache_entries / 1000.0
    table_slots = hard.max_batch * hard.num_flows
    table_m20k = -(-table_slots * _RING_BYTES_PER_ENTRY * 8 // _M20K_BITS)

    green_luts = (
        _LUTS_PER_FLOW * hard.num_flows + _LUTS_PER_K_CONNECTIONS * conn_k
    )
    green_m20k = (
        _M20K_PER_FLOW * hard.num_flows
        + _M20K_PER_K_CONNECTIONS * conn_k
        + table_m20k
    )
    green_regs = (
        _REGS_PER_FLOW * hard.num_flows + _REGS_PER_K_CONNECTIONS * conn_k
    )
    if hard.hw_reassembly:
        green_luts += _CAM_LUTS + _CAM_LUTS_PER_FLOW * hard.num_flows
        green_m20k += _CAM_M20K
        green_regs += _CAM_REGISTERS
    if hard.reliable_transport:
        green_luts += _RELIABLE_LUTS
        green_m20k += _RELIABLE_M20K_PER_FLOW * hard.num_flows
        green_regs += _RELIABLE_REGISTERS
    if hard.flow_control:
        green_luts += _FLOW_CONTROL_LUTS
        green_m20k += _FLOW_CONTROL_M20K
        green_regs += _FLOW_CONTROL_REGISTERS
    if hard.inline_crypto:
        green_luts += _CRYPTO_LUTS
        green_m20k += _CRYPTO_M20K
        green_regs += _CRYPTO_REGISTERS

    luts = green_luts * instances
    m20k = green_m20k * instances
    regs = green_regs * instances
    if include_blue_region:
        luts += _BLUE_LUTS
        m20k += _BLUE_M20K
        regs += _BLUE_REGISTERS
    return FpgaResources(
        luts=int(round(luts)),
        m20k_blocks=int(round(m20k)),
        registers=int(round(regs)),
    )


def max_nic_instances(hard: NicHardConfig, max_utilization: float = 0.5) -> int:
    """How many NIC instances of this configuration fit on the FPGA.

    Used by the virtualization discussion (section 6): the reference NIC
    occupies <20% of the device, so several instances co-exist.
    """
    count = 0
    while estimate_resources(hard, instances=count + 1).fits(max_utilization):
        count += 1
        if count > 1024:  # safety against degenerate tiny configs
            break
    return count
