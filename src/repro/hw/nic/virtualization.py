"""NIC virtualization: multiple NIC instances on one FPGA (Fig 14, §6).

The paper serves an 8-tier application from one physical FPGA by
instantiating one Dagger NIC per tier and giving the instances fair
round-robin access to the CCI-P bus. :class:`VirtualizedFpga` is the
factory for that setup: every NIC it creates shares the machine's FPGA
endpoints (arbitration emerges from FIFO grants at the shared endpoint
resources) and registers with the same switch model.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hw.interconnect.ccip import CcipMux
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.nic.load_balancer import LoadBalancer
from repro.hw.nic.resources import estimate_resources
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch


class VirtualizedFpga:
    """Factory for co-located NIC instances sharing one FPGA."""

    def __init__(self, machine: Machine, switch: ToRSwitch,
                 max_utilization: float = 0.5):
        self.machine = machine
        self.switch = switch
        self.max_utilization = max_utilization
        self.mux = CcipMux(machine.sim, machine.calibration, machine.fpga)
        self.nics: Dict[str, DaggerNic] = {}

    def add_nic(
        self,
        address: str,
        hard: Optional[NicHardConfig] = None,
        soft: Optional[NicSoftConfig] = None,
        balancer: Optional[LoadBalancer] = None,
    ) -> DaggerNic:
        """Instantiate one tenant NIC; checks the FPGA still has room."""
        if address in self.nics:
            raise ValueError(f"NIC address {address!r} already in use")
        hard = hard or NicHardConfig()
        self._check_capacity(hard)
        interface = self.mux.interface(hard.interface)
        nic = DaggerNic(
            self.machine.sim,
            self.machine.calibration,
            interface,
            self.switch,
            address,
            hard=hard,
            soft=soft,
            balancer=balancer,
        )
        self.machine.fpga.attach_nic(nic)
        self.nics[address] = nic
        return nic

    def _check_capacity(self, new_hard: NicHardConfig) -> None:
        """Would adding this instance exceed the utilization budget?

        Sums green-region footprints of all resident instances plus the
        shared blue region.
        """
        configs = [nic.hard for nic in self.nics.values()] + [new_hard]
        luts = 0.0
        brams = 0.0
        for index, config in enumerate(configs):
            footprint = estimate_resources(
                config, include_blue_region=(index == 0)
            )
            luts += footprint.luts
            brams += footprint.m20k_blocks
        from repro.hw.nic.resources import DEVICE_LUTS, DEVICE_M20K

        if (luts / DEVICE_LUTS > self.max_utilization
                or brams / DEVICE_M20K > self.max_utilization):
            raise ValueError(
                f"adding NIC would exceed {self.max_utilization:.0%} FPGA "
                f"utilization ({len(configs)} instances)"
            )

    def __len__(self) -> int:
        return len(self.nics)
