"""NIC virtualization: multiple NIC instances on one FPGA (Fig 14, §6).

The paper serves an 8-tier application from one physical FPGA by
instantiating one Dagger NIC per tier and giving the instances fair
round-robin access to the CCI-P bus. :class:`VirtualizedFpga` is the
factory for that setup: every NIC it creates shares the machine's FPGA
endpoints (arbitration emerges from FIFO grants at the shared endpoint
resources) and registers with the same switch model.

Per-tenant observability (ISSUE 4): each NIC belongs to a *tenant* (by
default its own address; pass ``tenant=`` to group several instances —
e.g. a client/server pair — under one name). :meth:`timeline_probes`
exposes one probe namespace per tenant, backed by the same exact
``sim.Usage`` busy-time integrals the single-NIC probes use, so a
:class:`~repro.obs.timeline.TimelineCollector` registered with
``collector.add_source("nic", vfpga)`` yields utilization keys like
``nic.<tenant>.fetch`` — which is what lets
:func:`~repro.obs.timeline.attribute_bottleneck` blame a noisy
neighbour *by name* instead of pointing at one aggregate NIC.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hw.interconnect.ccip import CcipMux
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.nic.load_balancer import LoadBalancer
from repro.hw.nic.resources import estimate_resources
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch


class VirtualizedFpga:
    """Factory for co-located NIC instances sharing one FPGA."""

    def __init__(self, machine: Machine, switch: ToRSwitch,
                 max_utilization: float = 0.5):
        self.machine = machine
        self.switch = switch
        self.max_utilization = max_utilization
        self.mux = CcipMux(machine.sim, machine.calibration, machine.fpga)
        self.nics: Dict[str, DaggerNic] = {}
        #: NIC address -> tenant name (insertion order = display order).
        self._tenant_of: Dict[str, str] = {}

    def add_nic(
        self,
        address: str,
        hard: Optional[NicHardConfig] = None,
        soft: Optional[NicSoftConfig] = None,
        balancer: Optional[LoadBalancer] = None,
        tenant: Optional[str] = None,
    ) -> DaggerNic:
        """Instantiate one tenant NIC; checks the FPGA still has room.

        ``tenant`` groups several instances under one observability
        namespace (defaults to the NIC's own address).
        """
        if address in self.nics:
            raise ValueError(f"NIC address {address!r} already in use")
        hard = hard or NicHardConfig()
        self._check_capacity(hard)
        interface = self.mux.interface(hard.interface)
        nic = DaggerNic(
            self.machine.sim,
            self.machine.calibration,
            interface,
            self.switch,
            address,
            hard=hard,
            soft=soft,
            balancer=balancer,
        )
        self.machine.fpga.attach_nic(nic)
        self.nics[address] = nic
        self._tenant_of[address] = tenant if tenant is not None else address
        return nic

    # -- per-tenant telemetry --------------------------------------------------

    def tenant_names(self) -> List[str]:
        """Distinct tenant names, in first-registration order."""
        seen: Dict[str, None] = {}
        for tenant in self._tenant_of.values():
            seen.setdefault(tenant, None)
        return list(seen)

    def tenant_nics(self, tenant: str) -> List[DaggerNic]:
        """All NIC instances belonging to one tenant."""
        return [self.nics[address]
                for address, owner in self._tenant_of.items()
                if owner == tenant]

    def enable_usage(self) -> None:
        """Exact busy-time accounting on every instance and every shared
        blue-region endpoint (idempotent)."""
        for nic in self.nics.values():
            nic.enable_usage()
        self.machine.fpga.enable_usage()

    def timeline_probes(self):
        """Per-tenant timeline probe set (Fig 14 observability).

        Yields ``(tenant, name, mode, fn)`` 4-tuples — the multi-tenant
        flavor of the ``timeline_probes()`` protocol — covering, per
        tenant: the fetch-FSM and flow-scheduler issue occupancies, the
        green-region pipeline and ethernet-port exact busy integrals
        (each averaged across the tenant's instances, so the windowed
        derivative is that tenant's mean utilization), plus ring depths,
        drop and RPC counters summed across the tenant's instances.
        Register with ``collector.add_source("nic", vfpga)`` to get
        series under ``nic.<tenant>.*``.
        """
        sim = self.machine.sim
        probes = []
        for tenant in self.tenant_names():
            nics = self.tenant_nics(tenant)
            count = len(nics)
            pipeline_usages = [nic.pipeline.enable_usage() for nic in nics]
            eth_usages = [nic.eth.enable_usage() for nic in nics]

            def fetch(nics=nics, count=count):
                return sum(nic.rx_path.issue_busy_ns
                           / max(1, nic.hard.num_flows)
                           for nic in nics) / count

            def sched(nics=nics, count=count):
                return sum(nic.tx_path.issue_busy_ns
                           / max(1, len(nic.tx_path.flow_fifos))
                           for nic in nics) / count

            def pipeline(nics=nics, usages=pipeline_usages, count=count):
                return sum(usage.busy_integral(sim.now, nic.pipeline._in_use)
                           for nic, usage in zip(nics, usages)) / count

            def eth(nics=nics, usages=eth_usages, count=count):
                return sum(usage.busy_integral(sim.now, nic.eth._port._in_use)
                           for nic, usage in zip(nics, usages)) / count

            def tx_depth(nics=nics):
                return sum(len(rings.tx_ring)
                           for nic in nics for rings in nic.flow_rings)

            def rx_depth(nics=nics):
                return sum(len(rings.rx_ring)
                           for nic in nics for rings in nic.flow_rings)

            def rx_drops(nics=nics):
                return sum(rings.rx_ring.drops
                           for nic in nics for rings in nic.flow_rings)

            def tx_rpcs(nics=nics):
                return sum(nic.monitor.tx_rpcs for nic in nics)

            def delivered(nics=nics):
                return sum(nic.monitor.delivered_rpcs for nic in nics)

            probes.extend([
                (tenant, "fetch_busy_ns", "counter", fetch),
                (tenant, "sched_busy_ns", "counter", sched),
                (tenant, "pipeline_busy_ns", "counter", pipeline),
                (tenant, "eth_busy_ns", "counter", eth),
                (tenant, "tx_ring_depth", "gauge", tx_depth),
                (tenant, "rx_ring_depth", "gauge", rx_depth),
                (tenant, "rx_ring_drops", "counter", rx_drops),
                (tenant, "tx_rpcs", "counter", tx_rpcs),
                (tenant, "delivered_rpcs", "counter", delivered),
            ])
        return probes

    def _check_capacity(self, new_hard: NicHardConfig) -> None:
        """Would adding this instance exceed the utilization budget?

        Sums green-region footprints of all resident instances plus the
        shared blue region.
        """
        configs = [nic.hard for nic in self.nics.values()] + [new_hard]
        luts = 0.0
        brams = 0.0
        for index, config in enumerate(configs):
            footprint = estimate_resources(
                config, include_blue_region=(index == 0)
            )
            luts += footprint.luts
            brams += footprint.m20k_blocks
        from repro.hw.nic.resources import DEVICE_LUTS, DEVICE_M20K

        if (luts / DEVICE_LUTS > self.max_utilization
                or brams / DEVICE_M20K > self.max_utilization):
            raise ValueError(
                f"adding NIC would exceed {self.max_utilization:.0%} FPGA "
                f"utilization ({len(configs)} instances)"
            )

    def __len__(self) -> int:
        return len(self.nics)
