"""Hardware substrate models.

Everything under :mod:`repro.hw` is a transaction-level model of the paper's
experimental platform (Table 2): a 12-core Broadwell Xeon with SMT-2, an
Arria 10 FPGA reachable over CCI-P (2x PCIe Gen3x8 links + 1x UPI link), the
Dagger NIC synthesized in the FPGA's green region, and a ToR switch model.
"""

from repro.hw.platform import Machine, MachineConfig
from repro.hw.cluster import Cluster
from repro.hw.cpu import Core, SoftwareThread
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION

__all__ = [
    "Machine",
    "MachineConfig",
    "Cluster",
    "Core",
    "SoftwareThread",
    "Calibration",
    "DEFAULT_CALIBRATION",
]
