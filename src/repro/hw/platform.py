"""Machine model: the paper's CPU/FPGA hybrid platform (Table 2).

A :class:`Machine` bundles the simulator, calibration, CPU cores, and an
:class:`Fpga` with its shared CCI-P endpoints. NIC instances (one per tenant
in the virtualized setup of Fig 14) attach to the FPGA and share its UPI /
PCIe endpoints through fair arbitration, which is what ultimately caps
aggregate throughput in Fig 11 (right).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.hw.cache import HostCoherentCache, LlcContentionDomain
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.cpu import Core, SoftwareThread
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource


@dataclass(frozen=True)
class MachineConfig:
    """Table 2 of the paper: Intel Xeon E5-2600v4 + Arria 10 GX1150."""

    name: str = "broadwell-harp"
    cores: int = 12
    smt: int = 2
    freq_ghz: float = 2.4
    llc_kb: int = 30720
    fpga_max_freq_mhz: int = 400
    upi_gbps: float = 19.2  # 1x UPI link
    pcie_gbps: float = 15.74  # 2x PCIe Gen3x8 links

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError(f"need at least one core, got {self.cores}")
        if self.smt < 1:
            raise ValueError(f"smt must be >= 1, got {self.smt}")


class Fpga:
    """The FPGA side of the platform.

    Owns the blue-region resources every NIC instance shares: the UPI
    endpoint (the 80 Mrps line-transfer bottleneck of Fig 11), the PCIe DMA
    engine, and the Host Coherent Cache.
    """

    def __init__(self, sim: Simulator, calibration: Calibration):
        self.sim = sim
        self.calibration = calibration
        # Capacity 1 + per-line occupancy models a serial line-transfer
        # engine; requests pipeline behind it in FIFO order (fair
        # round-robin arbitration between NIC instances emerges from FIFO
        # grants at equal request rates).
        self.upi_endpoint = Resource(sim, capacity=1, name="upi-endpoint")
        self.upi_write_endpoint = Resource(
            sim, capacity=1, name="upi-write-endpoint"
        )
        self.pcie_endpoint = Resource(sim, capacity=1, name="pcie-endpoint")
        self.pcie_write_endpoint = Resource(
            sim, capacity=1, name="pcie-write-endpoint"
        )
        self.hcc = HostCoherentCache()
        self.nics: List[object] = []

    def attach_nic(self, nic) -> None:
        self.nics.append(nic)

    def enable_usage(self) -> None:
        """Exact occupancy accounting on all shared endpoints (idempotent)."""
        for endpoint in (self.upi_endpoint, self.upi_write_endpoint,
                         self.pcie_endpoint, self.pcie_write_endpoint):
            endpoint.enable_usage()

    def timeline_probes(self):
        """Timeline probe set: exact busy integrals + wait-queue depths of
        the shared blue-region endpoints (one probe pair per engine)."""
        self.enable_usage()
        sim = self.sim
        probes = []
        for label, endpoint in (
            ("upi_read", self.upi_endpoint),
            ("upi_write", self.upi_write_endpoint),
            ("pcie_read", self.pcie_endpoint),
            ("pcie_write", self.pcie_write_endpoint),
        ):
            probes.append((
                f"{label}_busy_ns", "counter",
                lambda e=endpoint: e.usage.busy_integral(
                    sim.now, e._in_use) / e.capacity,
            ))
            probes.append((f"{label}_queue", "gauge",
                           lambda e=endpoint: len(e._waiters)))
        return probes


class Machine:
    """One server: cores + FPGA, all living in one simulator."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[MachineConfig] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        seed: int = 0,
    ):
        self.sim = sim
        self.config = config or MachineConfig()
        self.calibration = calibration
        self.rng = random.Random(seed)
        # Machine-wide LLC interference domain (§5.6): inert until some
        # thread is marked LLC-heavy via SoftwareThread.mark_llc_heavy().
        self.llc_domain = LlcContentionDomain()
        self.cores = [
            Core(
                sim,
                calibration,
                core_id=i,
                smt=self.config.smt,
                rng=random.Random((seed << 8) | i),
                llc_domain=self.llc_domain,
            )
            for i in range(self.config.cores)
        ]
        self.fpga = Fpga(sim, calibration)

    def core(self, index: int) -> Core:
        if not 0 <= index < len(self.cores):
            raise IndexError(
                f"core {index} out of range (machine has {len(self.cores)})"
            )
        return self.cores[index]

    def thread(self, core_index: int, name: str = "") -> SoftwareThread:
        """Create a software thread pinned to the given core."""
        return SoftwareThread(self.core(core_index), name=name)

    def threads(self, count: int, start_core: int = 0) -> List[SoftwareThread]:
        """Create ``count`` threads packed two-per-core from ``start_core``.

        Mirrors the paper's thread-scaling experiment: logical threads fill
        SMT slots before spilling to the next physical core.
        """
        made = []
        for i in range(count):
            core_index = start_core + i // self.config.smt
            made.append(self.thread(core_index, name=f"t{i}"))
        return made
