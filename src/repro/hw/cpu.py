"""CPU core and software-thread models.

A :class:`Core` is an out-of-order core with ``smt`` hardware thread slots
(2 on the paper's Broadwell Xeon). Software threads pinned to a core contend
for its slots; when two hardware threads are active simultaneously, each
op's cost inflates by the calibrated SMT slowdown (this is what makes 4
threads on 2 physical cores land at 42 Mrps instead of 49 in Fig 11).

CPU costs carry a small exponential jitter term modelling pipeline /
scheduling noise; it is what gives the simulated tail latencies their
realistic (non-degenerate) shape at low load.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.hw.calibration import Calibration
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource


class Core:
    """One physical core with SMT slots."""

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration,
        core_id: int,
        smt: int = 2,
        rng: Optional[random.Random] = None,
        llc_domain=None,
    ):
        if smt < 1:
            raise ValueError(f"smt must be >= 1, got {smt}")
        self.sim = sim
        self.calibration = calibration
        self.core_id = core_id
        self.smt = smt
        self.slots = Resource(sim, capacity=smt, name=f"core{core_id}")
        self.rng = rng or random.Random(core_id)
        # Shared-LLC interference domain (machine-wide); None -> no model.
        self.llc_domain = llc_domain
        self._active = 0
        self.busy_ns = 0  # accumulated busy time (utilization accounting)
        #: Straggler multiplier (chaos fault injection): every burst on
        #: this core scales by this factor. 1.0 = healthy; applied before
        #: the jitter draw so the RNG stream is unchanged when healthy.
        self.slowdown = 1.0

    def _jitter(self) -> int:
        mean = self.calibration.cpu_jitter_mean_ns
        if mean <= 0:
            return 0
        return int(self.rng.expovariate(1.0 / mean))

    def execute(self, cost_ns: int, thread=None) -> Generator:
        """Occupy one hardware thread slot for ``cost_ns`` of work.

        The effective time inflates when the sibling SMT slot is also busy,
        and under machine-wide LLC pressure from cache-heavy threads.
        """
        if cost_ns < 0:
            raise ValueError(f"negative cost {cost_ns}")
        if not self.slots.try_acquire():
            yield self.slots.request()
        self._active += 1
        try:
            calibration = self.calibration
            scaled = cost_ns
            if self._active >= 2:
                scaled = int(cost_ns * calibration.smt_slowdown)
            if self.llc_domain is not None:
                scaled = int(scaled * self.llc_domain.multiplier_for(thread))
            if self.slowdown != 1.0:
                scaled = int(scaled * self.slowdown)
            # Inlined _jitter(); must draw exactly when _jitter would so the
            # per-core RNG stream (and thus every tail latency) is unchanged.
            mean = calibration.cpu_jitter_mean_ns
            if mean > 0:
                scaled += int(self.rng.expovariate(1.0 / mean))
            self.busy_ns += scaled
            yield scaled
        finally:
            self._active -= 1
            self.slots.release()

    @property
    def contended(self) -> bool:
        return self.slots.queue_length > 0

    def enable_usage(self):
        """Exact slot-occupancy accounting on this core (idempotent)."""
        return self.slots.enable_usage()

    def timeline_probes(self):
        """Timeline probe set: exact run-state integral + queue depth.

        ``busy_ns`` is the slot-occupancy integral normalized by ``smt``
        (its windowed derivative is the exact core utilization — unlike
        the legacy ``self.busy_ns``, which front-loads each burst at its
        start); ``runq`` is the instantaneous slot wait-queue depth.
        """
        usage = self.enable_usage()
        slots = self.slots
        sim = self.sim
        smt = self.smt
        return [
            ("busy_ns", "counter",
             lambda: usage.busy_integral(sim.now, slots._in_use) / smt),
            ("runq", "gauge", lambda: len(slots._waiters)),
        ]


class SoftwareThread:
    """A software thread pinned to a core.

    Thin wrapper: the thread's logic is a simulation process; every chunk of
    CPU work it does goes through :meth:`exec` so core contention and SMT
    effects apply. Statistics: ``ops`` counts completed exec calls.
    """

    def __init__(self, core: Core, name: str = ""):
        self.core = core
        self.name = name or f"thread@core{core.core_id}"
        self.ops = 0

    @property
    def sim(self) -> Simulator:
        return self.core.sim

    def begin_exec(self, cost_ns: int) -> int:
        """Account the start of a CPU burst; returns the scaled duration.

        Fast-path protocol for call sites too hot for the :meth:`exec`
        generator (one generator object per RPC per side adds up)::

            if not thread.core.slots.try_acquire():
                yield thread.core.slots.request()
            scaled = thread.begin_exec(cost_ns)
            try:
                yield scaled
            finally:
                thread.end_exec()

        Must be called only after the slot grant, and always paired with
        :meth:`end_exec`. Event sequence and RNG draws are identical to
        :meth:`exec`.
        """
        core = self.core
        core._active += 1
        calibration = core.calibration
        scaled = cost_ns
        if core._active >= 2:
            scaled = int(cost_ns * calibration.smt_slowdown)
        if core.llc_domain is not None:
            scaled = int(scaled * core.llc_domain.multiplier_for(self))
        if core.slowdown != 1.0:
            scaled = int(scaled * core.slowdown)
        mean = calibration.cpu_jitter_mean_ns
        if mean > 0:
            scaled += int(core.rng.expovariate(1.0 / mean))
        core.busy_ns += scaled
        return scaled

    def end_exec(self) -> None:
        """Finish a burst started with :meth:`begin_exec`."""
        core = self.core
        core._active -= 1
        core.slots.release()
        self.ops += 1

    def exec(self, cost_ns: int) -> Generator:
        # Same event sequence and RNG draws as Core.execute(cost_ns, self),
        # without the delegated generator.
        if cost_ns < 0:
            raise ValueError(f"negative cost {cost_ns}")
        slots = self.core.slots
        if not slots.try_acquire():
            yield slots.request()
        scaled = self.begin_exec(cost_ns)
        try:
            yield scaled
        finally:
            self.end_exec()

    def mark_llc_heavy(self) -> None:
        """Flag this thread as LLC-trashing (slows everyone else, §5.6)."""
        if self.core.llc_domain is not None:
            self.core.llc_domain.mark_heavy(self)

    def __repr__(self) -> str:
        return f"SoftwareThread({self.name})"
