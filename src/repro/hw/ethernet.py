"""Ethernet MAC/PHY serialization model.

The NIC's transport unit hands serialized RPC packets to the MAC/PHY, which
puts them on the wire at line rate. Serialization delay is bytes / rate; the
port is a single serial resource, so back-to-back packets queue behind each
other exactly like a real egress port.
"""

from __future__ import annotations

from typing import Generator

from repro.hw.calibration import Calibration
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

ETHERNET_OVERHEAD_BYTES = 24  # preamble + FCS + min IFG equivalents
MIN_FRAME_BYTES = 64


class EthernetPort:
    """One egress port serializing frames at ``calibration.eth_bytes_per_ns``."""

    def __init__(self, sim: Simulator, calibration: Calibration, name: str = "eth"):
        self.sim = sim
        self.calibration = calibration
        self.name = name
        self._port = Resource(sim, capacity=1, name=name)
        self.frames = 0
        self.bytes = 0

    def enable_usage(self):
        """Exact port-occupancy accounting (idempotent)."""
        return self._port.enable_usage()

    def timeline_probes(self):
        """Timeline probe set: exact link-busy integral, queue, counters."""
        usage = self.enable_usage()
        port = self._port
        sim = self.sim
        return [
            ("busy_ns", "counter",
             lambda: usage.busy_integral(sim.now, port._in_use)),
            ("queue", "gauge", lambda: len(port._waiters)),
            ("tx_bytes", "counter", lambda: self.bytes),
            ("tx_frames", "counter", lambda: self.frames),
        ]

    def frame_bytes(self, payload_bytes: int) -> int:
        return max(MIN_FRAME_BYTES, payload_bytes) + ETHERNET_OVERHEAD_BYTES

    def serialization_ns(self, payload_bytes: int) -> int:
        wire_bytes = self.frame_bytes(payload_bytes)
        return max(1, int(wire_bytes / self.calibration.eth_bytes_per_ns))

    def transmit(self, payload_bytes: int) -> Generator:
        """Occupy the port for the frame's serialization time."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload {payload_bytes}")
        if not self._port.try_acquire():
            yield self._port.request()
        try:
            # frame_bytes/serialization_ns inlined (one frame per RPC; two
            # method calls per frame show up on the echo hot path).
            wire_bytes = payload_bytes if payload_bytes > MIN_FRAME_BYTES \
                else MIN_FRAME_BYTES
            wire_bytes += ETHERNET_OVERHEAD_BYTES
            delay = int(wire_bytes / self.calibration.eth_bytes_per_ns)
            self.frames += 1
            self.bytes += wire_bytes
            yield delay if delay > 1 else 1
        finally:
            self._port.release()
