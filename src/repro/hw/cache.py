"""Cache models: generic direct-mapped cache and the Host Coherent Cache.

The Dagger NIC keeps connection state and transport structures in a small
(128 KB) direct-mapped Host Coherent Cache (HCC) in the FPGA blue region,
kept coherent with host DRAM over CCI-P (section 4.1). A miss falls back to
host memory at the interconnect's one-way latency. The connection manager
(section 4.2) reuses the same structure with its 1W3R banked organisation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple


class DirectMappedCache:
    """A direct-mapped key->value cache with ``num_entries`` slots.

    Keys are hashed to a slot; a slot holds exactly one (key, value) pair, so
    two keys mapping to the same slot evict each other — exactly the conflict
    behaviour of the RTL connection cache.
    """

    def __init__(self, num_entries: int, name: str = ""):
        if num_entries < 1:
            raise ValueError(f"num_entries must be >= 1, got {num_entries}")
        self.num_entries = num_entries
        self.name = name
        self._slots: Dict[int, Tuple[Any, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _slot_of(self, key: Any) -> int:
        return hash(key) % self.num_entries

    def lookup(self, key: Any) -> Tuple[bool, Optional[Any]]:
        """Return (hit, value)."""
        slot = self._slot_of(key)
        entry = self._slots.get(slot)
        if entry is not None and entry[0] == key:
            self.hits += 1
            return True, entry[1]
        self.misses += 1
        return False, None

    def insert(self, key: Any, value: Any) -> None:
        slot = self._slot_of(key)
        entry = self._slots.get(slot)
        if entry is not None and entry[0] != key:
            self.evictions += 1
        self._slots[slot] = (key, value)

    def invalidate(self, key: Any) -> bool:
        """Drop the entry for ``key`` if present; True if it was cached."""
        slot = self._slot_of(key)
        entry = self._slots.get(slot)
        if entry is not None and entry[0] == key:
            del self._slots[slot]
            return True
        return False

    def flush(self) -> int:
        """Drop every entry (chaos: connection-cache thrash); returns the
        number of entries invalidated. Subsequent lookups all miss and pay
        the DRAM fallback until the working set is re-fetched."""
        flushed = len(self._slots)
        self._slots.clear()
        return flushed

    @property
    def occupancy(self) -> int:
        return len(self._slots)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class HostCoherentCache(DirectMappedCache):
    """The 128 KB direct-mapped HCC in the FPGA blue bitstream.

    Sized in cache lines (128 KB / 64 B = 2048 entries by default). Holds
    connection state and transport metadata; actual payload data stays in
    host DRAM (section 4.1), so only metadata lookups go through here.
    """

    def __init__(self, size_bytes: int = 128 * 1024, line_bytes: int = 64):
        if size_bytes % line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        super().__init__(size_bytes // line_bytes, name="hcc")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes


class LlcContentionDomain:
    """Shared-LLC interference between threads of one machine (§5.6).

    The paper could not report MICA multi-core scalability because the
    co-located workload generator "reads 1.49 GB of data at a very high
    rate", trashing the LLC it shares with the server. This model captures
    that coarse effect: threads marked *LLC-heavy* inflate every other
    thread's CPU costs by ``slowdown_per_heavy`` each (capped), without
    slowing themselves down (their misses are already part of their own
    cost model).
    """

    def __init__(self, slowdown_per_heavy: float = 0.16,
                 max_multiplier: float = 2.2):
        if slowdown_per_heavy < 0:
            raise ValueError(
                f"slowdown_per_heavy must be >= 0, got {slowdown_per_heavy}"
            )
        if max_multiplier < 1.0:
            raise ValueError(
                f"max_multiplier must be >= 1, got {max_multiplier}"
            )
        self.slowdown_per_heavy = slowdown_per_heavy
        self.max_multiplier = max_multiplier
        self._heavy = set()

    def mark_heavy(self, thread) -> None:
        self._heavy.add(thread)

    def unmark_heavy(self, thread) -> None:
        self._heavy.discard(thread)

    @property
    def heavy_count(self) -> int:
        return len(self._heavy)

    def multiplier_for(self, thread) -> float:
        """Cost inflation the given thread suffers from LLC pressure."""
        others = len(self._heavy) - (1 if thread in self._heavy else 0)
        return min(self.max_multiplier,
                   1.0 + self.slowdown_per_heavy * others)
