"""Calibration constants for the timing model.

Every constant is in nanoseconds and is derived from a number the paper
itself reports (section references inline). The reproduction target is the
*shape* of the results; these constants anchor the model to the paper's
platform so that the absolute numbers also land in the right range.

Derivations for the main anchors:

- ``cpu_tx_ns + cpu_rx_ns = 80`` — Fig 10 shows 12.4 Mrps single-core with
  the UPI interface at batch 4, where the CPU is the bottleneck; 1e9/12.4e6
  is ~80 ns of CPU work per RPC (two AVX-256 stores plus completion-queue
  bookkeeping, section 4.4.1).
- ``mmio_doorbell_ns = 152`` — plain doorbells reach 4.3 Mrps, i.e. ~232 ns
  per RPC; subtracting the ~80 ns of store/poll work leaves ~150 ns for the
  non-cacheable MMIO doorbell write (plus ~10 ns descriptor bookkeeping).
  Doorbell batching divides the MMIO cost by B, matching the 7.9/9.9/10.8
  Mrps ladder at B=3/7/11.
- ``mmio_store32_ns = 84`` — the WQE-by-MMIO mode (two _mm256 MMIO stores
  per 64 B RPC) tops out at 4.2 Mrps, i.e. ~238 ns per RPC = 2x84 + 70 base.
- ``upi_flow_read_ns = 123`` — UPI at batch 1 reaches 8.1 Mrps; the
  bottleneck is the per-transaction occupancy of the flow's RX FSM read
  (1e9/8.1e6 = 123 ns). Extra cache lines in a batched read pipeline at
  ``upi_read_line_ns`` each.
- ``upi_endpoint_line_ns = 12`` — Fig 11 (right): raw idle UPI reads scale
  to ~80 Mrps before the blue-region UPI endpoint saturates (12.5 ns per
  line transfer); an end-to-end RPC crosses the endpoint twice (client-side
  fetch, server-side delivery), capping end-to-end throughput at ~42 Mrps.
- ``upi_oneway_ns = 400`` / ``pcie_dma_oneway_ns = 450`` — section 5.3's raw
  shared-memory access comparison, and section 4.4's "CCI-P delivers data
  within 400 ns".
- ``tor_delay_ns = 300`` — the TOR delay Table 3 assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class Calibration:
    """All tunable timing constants (nanoseconds unless noted)."""

    # --- CPU software path -------------------------------------------------
    cpu_tx_ns: int = 40  # serialize + ring store per 64 B RPC
    cpu_rx_ns: int = 28  # completion-queue poll + payload read
    cpu_dispatch_ns: int = 8  # server-side dispatch-thread bookkeeping
    cpu_worker_handoff_ns: int = 500  # dispatch side: enqueue to workers
    cpu_worker_wakeup_ns: int = 2500  # worker side: dequeue + thread wakeup
                                      # (what makes the Optimized threading
                                      # model ~10 us slower end-to-end, §5.7)
    cpu_jitter_mean_ns: int = 2  # exponential per-op jitter (scheduling noise)
    cpu_reassembly_per_line_ns: int = 40  # software RPC reassembly (§4.7)

    # --- MMIO / PCIe -------------------------------------------------------
    mmio_doorbell_ns: int = 152  # one non-cacheable doorbell write
    doorbell_ring_ns: int = 10  # per-request descriptor bookkeeping
    mmio_store32_ns: int = 84  # one 32 B AVX MMIO store into BAR space
    pcie_mmio_deliver_ns: int = 1100  # MMIO payload CPU->FPGA propagation
    pcie_doorbell_fetch_ns: int = 1450  # doorbell + descriptor + payload DMA
    pcie_dma_oneway_ns: int = 450  # raw PCIe DMA read latency (§5.3)
    pcie_nic_to_host_ns: int = 450  # NIC writes RX buffer over PCIe
    pcie_outstanding: int = 128  # in-flight CCI-P requests (§4.4)

    # --- UPI / CCI-P -------------------------------------------------------
    upi_oneway_ns: int = 400  # host buffer -> NIC delivery (§4.4)
    upi_nic_to_host_ns: int = 300  # NIC -> host RX ring write
    upi_flow_read_ns: int = 123  # per-read-transaction FSM occupancy
    upi_read_line_ns: int = 20  # each extra cache line in a batched read
    upi_endpoint_line_ns: int = 12  # blue-region endpoint occupancy per line
    upi_outstanding: int = 128

    # --- NIC pipeline (green region, 200 MHz => 5 ns/cycle) ----------------
    nic_cycle_ns: int = 5
    nic_rpc_unit_cycles: int = 4  # (de)serialization pipeline stages
    nic_transport_cycles: int = 3  # UDP/IP-like transport unit
    nic_lb_cycles: int = 1  # load-balancer decision
    nic_connection_lookup_cycles: int = 1  # connection cache hit (1W3R)
    nic_connection_miss_ns: int = 600  # DRAM-backed connection fetch (§4.2)
    nic_crypto_cycles_per_line: int = 4  # optional inline AES pipeline
                                         # (§4.5), per cache line each way

    # --- Ethernet / network ------------------------------------------------
    eth_bytes_per_ns: float = 12.5  # 100 GbE serialization rate
    tor_delay_ns: int = 300  # Table 3's assumed TOR latency
    loopback_delay_ns: int = 20  # paper's on-FPGA loopback wire

    # --- SMT ---------------------------------------------------------------
    smt_slowdown: float = 1.176  # per-thread cost inflation with 2 threads
                                 # per core (42 Mrps at 4 threads, Fig 11)

    # --- Cache line --------------------------------------------------------
    cache_line_bytes: int = 64

    def lines_for(self, size_bytes: int) -> int:
        """How many cache lines a payload of ``size_bytes`` occupies."""
        if size_bytes < 0:
            raise ValueError(f"negative payload size {size_bytes}")
        return max(1, -(-size_bytes // self.cache_line_bytes))

    def with_overrides(self, **overrides) -> "Calibration":
        """A copy with some constants replaced (used by ablations)."""
        return replace(self, **overrides)


DEFAULT_CALIBRATION = Calibration()


#: Application service-time anchors (ns), from section 5.6's measured
#: throughput ceilings: memcached 0.6-1.5 Mrps single-core, MICA 4.3-5.2 Mrps.
APP_SERVICE_TIMES_NS: Dict[str, int] = {
    "memcached_get": 620,
    "memcached_set": 2550,
    "mica_get": 180,
    "mica_set": 250,
}
