"""Per-RPC span tracing in simulated time.

A *span* is the full lifecycle of one RPC: client issue -> NIC egress ->
wire -> ingress pipeline -> host dequeue -> handler -> response complete.
Each traced component calls :meth:`SpanTracer.record` with the RPC id, a
named trace *point*, and the current simulated time; :func:`repro.obs.breakdown.breakdown`
later folds the points into per-stage durations.

Tracing is opt-in. Every hookable component (``RpcClient``,
``RpcServerThread``, ``DaggerNic``, ``CpuNicInterface``) carries a class
attribute ``tracer = None``; hook sites guard with a single ``is not None``
check, so the disabled path costs one attribute load per packet and no
allocation.

Trace points are first-wins (a retransmitted packet keeps its original
timestamps), matching :meth:`repro.rpc.messages.RpcPacket.stamp`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.rpc.messages import RpcKind, RpcPacket

#: Every trace point a span can carry, in lifecycle order. Request-leg
#: points are prefixed ``req_``, response-leg points ``resp_``; the server
#: handler points carry no prefix (they belong to the request's id).
CANONICAL_POINTS: Tuple[str, ...] = (
    "req_issue",           # client: call constructed (rpc/client.py)
    "req_sw_tx",           # client host handed the packet to the stack
    "req_nic_fetched",     # client NIC pulled it over the interconnect
    "req_wire_tx",         # client NIC put it on the wire
    "req_nic_rx",          # server NIC received it from the wire
    "req_host_delivered",  # server NIC wrote it into a host RX ring
    "req_dispatch",        # server dispatch thread dequeued it
    "handler_start",       # handler began executing
    "handler_done",        # handler returned a response payload
    "resp_sw_tx",          # server host handed the response to the stack
    "resp_nic_fetched",    # server NIC pulled the response
    "resp_wire_tx",        # server NIC put it on the wire
    "resp_nic_rx",         # client NIC received it
    "resp_host_delivered", # client NIC wrote it into the host RX ring
    "resp_complete",       # client: call completed (callback fired)
)

_POINT_INDEX = {point: i for i, point in enumerate(CANONICAL_POINTS)}


def packet_point(packet: RpcPacket, point: str) -> str:
    """Qualify a NIC-side trace point with the packet's direction."""
    prefix = "req" if packet.kind is RpcKind.REQUEST else "resp"
    return f"{prefix}_{point}"


class RpcSpan:
    """The recorded lifecycle of one RPC (trace point -> timestamp, ns)."""

    __slots__ = ("rpc_id", "events")

    def __init__(self, rpc_id: int):
        self.rpc_id = rpc_id
        self.events: Dict[str, int] = {}

    @property
    def complete(self) -> bool:
        """True once both endpoints of the lifecycle were recorded."""
        return "req_issue" in self.events and "resp_complete" in self.events

    @property
    def e2e_ns(self) -> Optional[int]:
        if not self.complete:
            return None
        return self.events["resp_complete"] - self.events["req_issue"]

    def ordered_events(self) -> List[Tuple[str, int]]:
        """Events sorted by canonical lifecycle order (unknown points last)."""
        return sorted(
            self.events.items(),
            key=lambda kv: (_POINT_INDEX.get(kv[0], len(CANONICAL_POINTS)),
                            kv[1]),
        )

    def to_record(self) -> dict:
        """A JSON-serializable view (for sinks)."""
        return {"type": "span", "rpc_id": self.rpc_id,
                "events": dict(self.ordered_events())}

    def __repr__(self) -> str:
        return f"RpcSpan(#{self.rpc_id}, {len(self.events)} events)"


class SpanTracer:
    """Accumulates :class:`RpcSpan` objects for every traced RPC.

    Also accepts bulk interconnect *transfer* events (which have no RPC
    identity — a CCI-P read moves a batch of requests at once); those are
    aggregated per component rather than stored individually.

    By default every span is retained for the lifetime of the tracer
    (unbounded — fine for the 4k-request reference runs, and what
    ``breakdown()`` wants). For long sweeps pass ``max_spans=N`` to keep a
    FIFO ring of the most recent N spans (oldest evicted, counted in
    ``spans_evicted``), or stream with :meth:`drain` (evict-on-consume).
    """

    def __init__(self, max_spans: Optional[int] = None):
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1 or None, got {max_spans}")
        self._spans: Dict[int, RpcSpan] = {}
        self.transfers: Dict[str, Dict[str, int]] = {}
        self.max_spans = max_spans
        self.spans_evicted = 0

    # -- per-RPC lifecycle events ------------------------------------------

    def record(self, rpc_id: int, point: str, t_ns: int) -> None:
        """Record a trace point for an RPC (first occurrence wins)."""
        span = self._spans.get(rpc_id)
        if span is None:
            span = RpcSpan(rpc_id)
            self._spans[rpc_id] = span
            if (self.max_spans is not None
                    and len(self._spans) > self.max_spans):
                # Dict preserves insertion order: the first key is the
                # oldest span (spans are created in issue order).
                oldest = next(iter(self._spans))
                del self._spans[oldest]
                self.spans_evicted += 1
        span.events.setdefault(point, t_ns)

    def record_packet(self, packet: RpcPacket, point: str, t_ns: int) -> None:
        """Record a direction-qualified point for a data packet.

        Control packets (ACK/NACK/CREDIT) carry no RPC lifecycle and are
        skipped.
        """
        if packet.kind is RpcKind.CONTROL:
            return
        self.record(packet.rpc_id, packet_point(packet, point), t_ns)

    # -- bulk interconnect transfers ---------------------------------------

    def record_transfer(self, component: str, lines: int, t_ns: int) -> None:
        """Account one interconnect transaction (``lines`` cache lines)."""
        agg = self.transfers.get(component)
        if agg is None:
            agg = {"transactions": 0, "lines": 0, "first_ns": t_ns,
                   "last_ns": t_ns}
            self.transfers[component] = agg
        agg["transactions"] += 1
        agg["lines"] += lines
        agg["last_ns"] = t_ns

    # -- access -------------------------------------------------------------

    def span(self, rpc_id: int) -> Optional[RpcSpan]:
        return self._spans.get(rpc_id)

    def spans(self) -> List[RpcSpan]:
        """All spans, in rpc-id order (== issue order for a single client)."""
        return [self._spans[k] for k in sorted(self._spans)]

    def __len__(self) -> int:
        return len(self._spans)

    def drain(self) -> List[RpcSpan]:
        """Consume and return all stored spans (evict-on-consume mode).

        Clears only the span store — transfer aggregates and the eviction
        counter survive, so a caller can drain periodically and keep
        streaming spans to a sink without unbounded growth.
        """
        spans = self.spans()
        self._spans.clear()
        return spans

    def clear(self) -> None:
        self._spans.clear()
        self.transfers.clear()
        self.spans_evicted = 0


def attach_tracer(tracer: Optional[SpanTracer], components: Iterable) -> None:
    """Point every component's ``tracer`` attribute at one tracer.

    Components are duck-typed: anything with a ``tracer`` slot/attribute
    (clients, server threads, NICs, interconnect interfaces) qualifies.
    Passing ``tracer=None`` detaches.
    """
    for component in components:
        component.tracer = tracer
