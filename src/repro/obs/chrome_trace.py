"""Chrome trace-event / Perfetto JSON export.

Maps the observability layer onto the Chrome trace-event format (the JSON
flavor Perfetto's ``ui.perfetto.dev`` opens directly):

- every RPC span becomes a sequence of ``"X"`` (complete) slice events, one
  per breakdown stage, laid out on per-component *thread* tracks (client
  CPU / client NIC / wire / server NIC / server CPU) so the pipeline reads
  left-to-right like the paper's Fig 3, plus one ``"s"``/``"t"``/``"f"``
  flow chain per RPC (``id`` = rpc_id) linking its slices across tracks
  so Perfetto draws causal arrows from client CPU through the wire to
  the server and back;
- every :class:`~repro.obs.timeline.TimeSeries` becomes a ``"C"`` counter
  track. ``counter``-mode probes are exported as their per-interval *rate*
  (so a ``*busy_ns`` integral plots as utilization in [0, 1]); ``gauge``
  probes are exported raw. Tenant-tagged series (Fig 14 multi-tenant
  rigs) get one counter *process* per tenant — Perfetto groups each
  tenant's tracks under a ``tenant <name>`` heading — while untagged
  series stay on the shared ``telemetry`` process.

Timestamps: the trace-event format wants microseconds; simulated integer
nanoseconds are divided by 1000.0 (Perfetto handles fractional µs).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Union

from repro.obs.breakdown import STAGES, _span_segments
from repro.obs.timeline import TimelineCollector, TimeSeries
from repro.obs.trace import RpcSpan, SpanTracer

#: pid of the slice tracks (RPC pipeline) and of the counter tracks.
PIPELINE_PID = 1
TELEMETRY_PID = 2
#: Tenant counter processes start here (one pid per tenant, in
#: collector registration order).
TENANT_PID_BASE = 10

#: Thread tracks for the pipeline process, in display order.
TRACKS: tuple = ("client CPU", "NIC (client)", "wire", "NIC (server)",
                 "server CPU", "other")

_STAGE_TRACK = {
    "client tx (CPU)": "client CPU",
    "host->NIC fetch (req)": "NIC (client)",
    "NIC egress pipeline (req)": "NIC (client)",
    "wire (req)": "wire",
    "NIC ingress + delivery (req)": "NIC (server)",
    "host RX ring wait": "server CPU",
    "dispatch (CPU)": "server CPU",
    "handler": "server CPU",
    "server tx (CPU)": "server CPU",
    "host->NIC fetch (resp)": "NIC (server)",
    "NIC egress pipeline (resp)": "NIC (server)",
    "wire (resp)": "wire",
    "NIC ingress + delivery (resp)": "NIC (client)",
    "client rx (CPU + poll)": "client CPU",
}
_STAGE_LABELS = {(a, b): label for a, b, label in STAGES}
_TRACK_TID = {name: i for i, name in enumerate(TRACKS)}


def _metadata_events() -> List[dict]:
    events = [
        {"ph": "M", "pid": PIPELINE_PID, "tid": 0, "name": "process_name",
         "args": {"name": "RPC pipeline"}},
        {"ph": "M", "pid": TELEMETRY_PID, "tid": 0, "name": "process_name",
         "args": {"name": "telemetry"}},
    ]
    for track, tid in _TRACK_TID.items():
        events.append({"ph": "M", "pid": PIPELINE_PID, "tid": tid,
                       "name": "thread_name", "args": {"name": track}})
    return events


def _span_events(spans: Iterable[RpcSpan]) -> List[dict]:
    events = []
    for span in spans:
        tracks = []
        for a, b, duration in _span_segments(span):
            label = _STAGE_LABELS.get((a, b), f"{a} -> {b}")
            track = _STAGE_TRACK.get(label, "other")
            tracks.append((track, span.events[a]))
            events.append({
                "ph": "X",
                "name": label,
                "cat": "rpc",
                "pid": PIPELINE_PID,
                "tid": _TRACK_TID[track],
                "ts": span.events[a] / 1000.0,
                "dur": duration / 1000.0,
                "args": {"rpc_id": span.rpc_id},
            })
        events.extend(_flow_events(span.rpc_id, tracks))
    return events


def _flow_events(rpc_id: int, tracks: List[tuple]) -> List[dict]:
    """Flow (``s``/``t``/``f``) events tying one RPC's slices together.

    One flow chain per span, with a point at every *track transition*
    (client CPU -> client NIC -> wire -> ...), so Perfetto draws a causal
    arrow each time the request hops components; consecutive slices on
    the same track don't get redundant arrows. Each point's ``ts`` is
    its slice's start, which is how the trace format binds a flow event
    to its enclosing slice; the terminating ``"f"`` uses ``bp: "e"``
    (bind to enclosing slice) per the spec.
    """
    hops = []
    previous = None
    for track, t_ns in tracks:
        if track != previous:
            hops.append((track, t_ns))
            previous = track
    if len(hops) < 2:
        return []
    events = []
    for index, (track, t_ns) in enumerate(hops):
        event = {
            "ph": "s" if index == 0 else
                  ("f" if index == len(hops) - 1 else "t"),
            "name": "rpc flow",
            "cat": "rpc",
            "id": rpc_id,
            "pid": PIPELINE_PID,
            "tid": _TRACK_TID[track],
            "ts": t_ns / 1000.0,
        }
        if event["ph"] == "f":
            event["bp"] = "e"
        events.append(event)
    return events


def _counter_events(series: TimeSeries, pid: int = TELEMETRY_PID) -> List[dict]:
    """One ``"C"`` event per sample (rate for counters, raw for gauges)."""
    track = f"{series.component}.{series.name}"
    if series.mode == "counter":
        samples = series.rate()
        if series.name.endswith("busy_ns"):
            track = track[: -len("busy_ns")].rstrip("_") + " utilization"
    else:
        samples = list(zip(series.times, series.values))
    return [
        {"ph": "C", "name": track, "pid": pid, "tid": 0,
         "ts": t / 1000.0, "args": {"value": value}}
        for t, value in samples
    ]


def chrome_trace_events(
    tracer: Optional[SpanTracer] = None,
    collector: Optional[TimelineCollector] = None,
    max_spans: Optional[int] = None,
) -> List[dict]:
    """Build the ``traceEvents`` list from a tracer and/or collector.

    ``max_spans`` caps how many spans are exported (most recent kept) —
    a 4k-RPC trace is ~56k slice events, fine; a million-RPC sweep is not.
    """
    events = _metadata_events()
    if tracer is not None:
        spans = tracer.spans()
        if max_spans is not None and len(spans) > max_spans:
            spans = spans[-max_spans:]
        events.extend(_span_events(spans))
    if collector is not None:
        tenant_pids = {
            tenant: TENANT_PID_BASE + index
            for index, tenant in enumerate(collector.tenants())
        }
        for tenant, pid in tenant_pids.items():
            events.append({"ph": "M", "pid": pid, "tid": 0,
                           "name": "process_name",
                           "args": {"name": f"tenant {tenant}"}})
        for series in collector.series():
            pid = tenant_pids.get(series.tenant, TELEMETRY_PID)
            events.extend(_counter_events(series, pid))
    return events


def export_chrome_trace(
    target: Union[str, IO[str]],
    tracer: Optional[SpanTracer] = None,
    collector: Optional[TimelineCollector] = None,
    max_spans: Optional[int] = None,
) -> int:
    """Write a Chrome trace-event JSON file; returns the event count.

    Open the resulting file at https://ui.perfetto.dev (or
    ``chrome://tracing``) — see docs/observability.md for the recipe.
    """
    events = chrome_trace_events(tracer, collector, max_spans)
    document = {"traceEvents": events, "displayTimeUnit": "ns"}
    if hasattr(target, "write"):
        json.dump(document, target)
    else:
        with open(target, "w") as handle:
            json.dump(document, handle)
    return len(events)
