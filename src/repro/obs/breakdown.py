"""Fold a trace into the paper's Fig 3-style per-stage latency table.

For each span, durations are taken between *consecutive recorded* trace
points in canonical lifecycle order, so the per-span stage durations always
sum exactly to the span's end-to-end latency. When a span carries every
canonical point (a Dagger run with all hooks attached) the stages match
:data:`STAGES` below; coarser stacks (the modeled baselines only record
the client/server software points) simply produce wider stages labelled
``a -> b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.trace import CANONICAL_POINTS, RpcSpan, SpanTracer
from repro.sim.stats import SummaryStats, percentile

#: Canonical adjacent-point stages and their Fig 3-style labels.
STAGES: Tuple[Tuple[str, str, str], ...] = (
    ("req_issue", "req_sw_tx", "client tx (CPU)"),
    ("req_sw_tx", "req_nic_fetched", "host->NIC fetch (req)"),
    ("req_nic_fetched", "req_wire_tx", "NIC egress pipeline (req)"),
    ("req_wire_tx", "req_nic_rx", "wire (req)"),
    ("req_nic_rx", "req_host_delivered", "NIC ingress + delivery (req)"),
    ("req_host_delivered", "req_dispatch", "host RX ring wait"),
    ("req_dispatch", "handler_start", "dispatch (CPU)"),
    ("handler_start", "handler_done", "handler"),
    ("handler_done", "resp_sw_tx", "server tx (CPU)"),
    ("resp_sw_tx", "resp_nic_fetched", "host->NIC fetch (resp)"),
    ("resp_nic_fetched", "resp_wire_tx", "NIC egress pipeline (resp)"),
    ("resp_wire_tx", "resp_nic_rx", "wire (resp)"),
    ("resp_nic_rx", "resp_host_delivered", "NIC ingress + delivery (resp)"),
    ("resp_host_delivered", "resp_complete", "client rx (CPU + poll)"),
)

_STAGE_LABELS = {(a, b): label for a, b, label in STAGES}
_POINT_INDEX = {point: i for i, point in enumerate(CANONICAL_POINTS)}


@dataclass
class StageStats:
    """Aggregated duration of one pipeline stage across all spans."""

    label: str
    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0

    @property
    def p50_us(self) -> float:
        return self.p50_ns / 1000.0


@dataclass
class Breakdown:
    """Per-stage latency table plus the end-to-end reference statistics."""

    stages: List[StageStats]
    e2e: Optional[SummaryStats]
    spans_used: int
    spans_skipped: int = 0

    @property
    def stage_p50_sum_ns(self) -> float:
        return sum(stage.p50_ns for stage in self.stages)

    @property
    def stage_mean_sum_ns(self) -> float:
        return sum(stage.mean_ns for stage in self.stages)

    def rows(self) -> List[Tuple[str, float, float, float, int]]:
        """(label, p50 us, mean us, share of e2e p50, count) per stage."""
        total = self.e2e.p50_ns if self.e2e is not None else 0.0
        return [
            (s.label, s.p50_us, s.mean_us,
             (s.p50_ns / total) if total else 0.0, s.count)
            for s in self.stages
        ]

    def as_dict(self) -> dict:
        """JSON-friendly view (what a sink or BenchResult carries)."""
        return {
            "spans_used": self.spans_used,
            "spans_skipped": self.spans_skipped,
            "e2e_p50_ns": self.e2e.p50_ns if self.e2e else None,
            "stage_p50_sum_ns": self.stage_p50_sum_ns,
            "stages": [
                {"label": s.label, "count": s.count, "mean_ns": s.mean_ns,
                 "p50_ns": s.p50_ns, "p99_ns": s.p99_ns}
                for s in self.stages
            ],
        }


@dataclass
class _StageAccumulator:
    order: int
    label: str
    samples: List[int] = field(default_factory=list)


def _span_segments(span: RpcSpan) -> Iterable[Tuple[str, str, int]]:
    """(from_point, to_point, duration_ns) between consecutive recorded
    canonical points of one span."""
    points = [(name, t) for name, t in span.ordered_events()
              if name in _POINT_INDEX]
    for (a, ta), (b, tb) in zip(points, points[1:]):
        yield a, b, tb - ta


def breakdown(trace: Union[SpanTracer, Iterable[RpcSpan]],
              warmup_ns: int = 0) -> Breakdown:
    """Aggregate a trace into a per-stage latency breakdown.

    Only *complete* spans (both ``req_issue`` and ``resp_complete``
    recorded) whose completion falls after ``warmup_ns`` contribute, the
    same filtering :class:`repro.sim.stats.LatencyRecorder` applies to its
    samples.
    """
    spans = trace.spans() if isinstance(trace, SpanTracer) else list(trace)
    accumulators: Dict[Tuple[str, str], _StageAccumulator] = {}
    e2e_samples: List[int] = []
    used = skipped = 0
    for span in spans:
        if not span.complete or span.events["resp_complete"] < warmup_ns:
            skipped += 1
            continue
        used += 1
        e2e_samples.append(span.e2e_ns)
        for a, b, duration in _span_segments(span):
            acc = accumulators.get((a, b))
            if acc is None:
                label = _STAGE_LABELS.get((a, b), f"{a} -> {b}")
                acc = _StageAccumulator(_POINT_INDEX[a], label)
                accumulators[(a, b)] = acc
            acc.samples.append(duration)

    stages = []
    for acc in sorted(accumulators.values(), key=lambda a: a.order):
        data = sorted(acc.samples)
        stages.append(StageStats(
            label=acc.label,
            count=len(data),
            mean_ns=sum(data) / len(data),
            p50_ns=percentile(data, 50, presorted=True),
            p99_ns=percentile(data, 99, presorted=True),
        ))
    e2e = SummaryStats.from_samples(e2e_samples) if e2e_samples else None
    return Breakdown(stages=stages, e2e=e2e, spans_used=used,
                     spans_skipped=skipped)
