"""Anomaly detection and attribution over collected timelines (ISSUE 8).

A timeline (:class:`repro.obs.timeline.TimelineCollector` or its
``to_dict()`` dump) is a set of per-component time series. This module
answers the question a timeline exists to answer under faults: *which
component (and, in multi-tenant runs, which tenant) misbehaved, and
when?* — the classifier half of MicroView's sketch-then-classify
pipeline, operating on the repository's probe namespaces instead of IPU
counters.

The machinery is deliberately simple and deterministic:

- :func:`detect_change_points` — a two-window mean-shift z-score
  detector. At each split the mean of the next ``window`` samples is
  scored against the mean of the previous ``window``, normalized by the
  pooled in-window stddev; splits beyond ``z_threshold`` are change
  points. Comparing *window means* (not single samples) is what keeps a
  bursty-but-steady queue-depth gauge quiet: its noise inflates the
  pooled stddev and averages out of both means, so only a sustained
  level shift scores. Clusters of consecutive detections collapse to
  their strongest member, so one fault window yields one finding, not
  ``window`` of them.
- :func:`detect_anomalies` — runs the detector over every series in a
  timeline. Gauges are analyzed by value; counters by their
  per-interval *rate* (a counter climbing steadily is healthy — the
  derivative carries the signal, same convention as
  :meth:`repro.obs.timeline.TimeSeries.rate` and the adaptive sampler).
- :class:`AnomalyReport` — the findings plus attribution: the culprit
  is the ``(component, tenant)`` with the largest total z-mass, i.e.
  the place the timeline deviated hardest from its own recent past.

``python -m repro timeline --anomalies`` wires this into the CLI, and
:func:`repro.harness.report.render_anomalies` renders the report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default detector shape: score against the 8 preceding samples, flag
#: beyond 3 sigma — wide enough to ride out sampling noise, tight enough
#: that a chaos fault window or a saturation onset stands out.
DEFAULT_WINDOW = 8
DEFAULT_Z_THRESHOLD = 3.0

#: A probe that *keeps* oscillating (an unacked-window gauge under
#: sustained faults) trips the detector at every swing; only the
#: strongest few say anything new, so findings are capped per series.
DEFAULT_MAX_PER_SERIES = 5

#: Scale floors: a near-constant baseline keeps 5% of its magnitude as
#: tolerance (plus a tiny absolute epsilon), so a flat series shifting
#: by float jitter can never manufacture an unbounded z-score — a real
#: level shift on a perfectly flat series still scores |z| = shift/5%.
_STD_FLOOR_REL = 0.05
_STD_FLOOR_ABS = 1e-9


def detect_change_points(values: Sequence[float],
                         window: int = DEFAULT_WINDOW,
                         z_threshold: float = DEFAULT_Z_THRESHOLD,
                         ) -> List[Tuple[int, float]]:
    """Split points where the level of ``values`` shifts.

    At each index ``i`` the mean of ``values[i:i+window]`` is compared
    with the mean of ``values[i-window:i]``, normalized by the pooled
    stddev of both windows (floored as above). Returns
    ``[(index, zscore)]`` with ``index`` the first sample of the new
    level, cluster-collapsed: detections fewer than ``window`` apart
    merge into the single strongest one (by ``|z|``), because one
    underlying shift trips the detector at every nearby split.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    if z_threshold <= 0:
        raise ValueError(f"z_threshold must be positive, got {z_threshold}")
    raw: List[Tuple[int, float]] = []
    for i in range(window, len(values) - window + 1):
        left = values[i - window:i]
        right = values[i:i + window]
        mean_l = sum(left) / window
        mean_r = sum(right) / window
        var = (sum((x - mean_l) ** 2 for x in left)
               + sum((x - mean_r) ** 2 for x in right)) / (2 * window)
        scale = max(math.sqrt(var),
                    max(abs(mean_l), abs(mean_r)) * _STD_FLOOR_REL,
                    _STD_FLOOR_ABS)
        z = (mean_r - mean_l) / scale
        if abs(z) >= z_threshold:
            raw.append((i, z))
    out: List[Tuple[int, float]] = []
    for index, z in raw:
        if out and index - out[-1][0] < window:
            if abs(z) > abs(out[-1][1]):
                out[-1] = (index, z)
            continue
        out.append((index, z))
    return out


@dataclass
class AnomalyFinding:
    """One detected deviation on one series."""

    component: str
    name: str
    mode: str                         #: "gauge" or "counter"
    tenant: Optional[str]
    t_ns: int                         #: simulated time the new level starts
    value: float                      #: mean of the new level's window
    baseline: float                   #: mean of the preceding window
    zscore: float
    direction: str                    #: "up" (spike) or "down" (drop)

    def as_dict(self) -> dict:
        return {
            "component": self.component,
            "name": self.name,
            "mode": self.mode,
            "tenant": self.tenant,
            "t_ns": self.t_ns,
            "value": self.value,
            "baseline": self.baseline,
            "zscore": self.zscore,
            "direction": self.direction,
        }


@dataclass
class AnomalyReport:
    """Findings over one timeline plus the attribution verdict."""

    findings: List[AnomalyFinding] = field(default_factory=list)
    window: int = DEFAULT_WINDOW
    z_threshold: float = DEFAULT_Z_THRESHOLD

    @property
    def culprit(self) -> Optional[str]:
        """Component that deviated hardest (largest total ``|z|``)."""
        scores = self._scores()
        if not scores:
            return None
        return max(scores, key=lambda key: scores[key])[0]

    @property
    def culprit_tenant(self) -> Optional[str]:
        """Tenant owning the culprit component (None when untenanted)."""
        scores = self._scores()
        if not scores:
            return None
        return max(scores, key=lambda key: scores[key])[1]

    def _scores(self) -> Dict[Tuple[str, Optional[str]], float]:
        scores: Dict[Tuple[str, Optional[str]], float] = {}
        for finding in self.findings:
            key = (finding.component, finding.tenant)
            scores[key] = scores.get(key, 0.0) + abs(finding.zscore)
        return scores

    def as_dict(self) -> dict:
        return {
            "window": self.window,
            "z_threshold": self.z_threshold,
            "culprit": self.culprit,
            "culprit_tenant": self.culprit_tenant,
            "findings": [finding.as_dict() for finding in self.findings],
        }


def _series_records(timeline: Any) -> List[dict]:
    """Normalize a collector or its ``to_dict()`` form to series records."""
    if hasattr(timeline, "series"):
        return [series.to_record() for series in timeline.series()]
    try:
        return list(timeline["series"])
    except (TypeError, KeyError):
        raise TypeError(
            "expected a TimelineCollector or its to_dict() dump, got "
            f"{type(timeline).__name__}"
        ) from None


def _analysis_signal(record: dict) -> Tuple[List[int], List[float]]:
    """The (times, values) the detector should look at for one series.

    Gauges are their own signal. Counters are differentiated into a
    per-interval rate first (zero-Δt steps skipped, mirroring
    :meth:`TimeSeries.rate`), so a steadily climbing busy integral is
    flat to the detector and only rate *shifts* — a stall, a burst —
    score.
    """
    times, values = record["t_ns"], record["values"]
    if record["mode"] != "counter":
        return list(times), list(values)
    rate_t: List[int] = []
    rate_v: List[float] = []
    for i in range(1, len(times)):
        dt = times[i] - times[i - 1]
        if dt > 0:
            rate_t.append(times[i])
            rate_v.append((values[i] - values[i - 1]) / dt)
    return rate_t, rate_v


def detect_anomalies(timeline: Any,
                     window: int = DEFAULT_WINDOW,
                     z_threshold: float = DEFAULT_Z_THRESHOLD,
                     max_per_series: Optional[int] = DEFAULT_MAX_PER_SERIES,
                     ) -> AnomalyReport:
    """Run the change-point classifier over every series in a timeline.

    ``timeline`` is a live :class:`TimelineCollector` or its
    ``to_dict()`` dump (the form :class:`BenchResult.timeline` carries
    through the sweep cache). Findings come back sorted by descending
    ``|z|``, so ``report.findings[0]`` is the sharpest deviation and
    ``report.culprit`` the component that deviated hardest overall.
    Each series contributes at most ``max_per_series`` findings (its
    strongest; ``None`` to keep them all).
    """
    findings: List[AnomalyFinding] = []
    for record in _series_records(timeline):
        times, values = _analysis_signal(record)
        detections = detect_change_points(values, window, z_threshold)
        if max_per_series is not None and len(detections) > max_per_series:
            detections = sorted(detections,
                                key=lambda d: -abs(d[1]))[:max_per_series]
        for index, z in detections:
            base = values[index - window:index]
            level = values[index:index + window]
            findings.append(AnomalyFinding(
                component=record["component"],
                name=record["name"],
                mode=record["mode"],
                tenant=record.get("tenant"),
                t_ns=times[index],
                value=sum(level) / len(level),
                baseline=sum(base) / window,
                zscore=z,
                direction="up" if z > 0 else "down",
            ))
    findings.sort(key=lambda f: (-abs(f.zscore), f.component, f.name))
    return AnomalyReport(findings=findings, window=window,
                         z_threshold=z_threshold)


__all__ = [
    "DEFAULT_WINDOW",
    "DEFAULT_Z_THRESHOLD",
    "AnomalyFinding",
    "AnomalyReport",
    "detect_anomalies",
    "detect_change_points",
]
