"""Observability layer: per-RPC span tracing + a unified metrics registry.

The paper's headline results (Figs 3, 10, 11) are per-RPC latency
*breakdowns* — where, between client issue and response completion, the
nanoseconds go. This package provides the substrate for producing them
from any simulated run:

- :class:`SpanTracer` (``repro.obs.trace``) — records per-RPC lifecycle
  events in simulated time, fed by lightweight hooks in the RPC runtime,
  the NIC RX/TX paths, and the interconnect models. Off by default: every
  hook site is a single ``tracer is not None`` check, so untraced runs pay
  nothing.
- :class:`MetricsRegistry` (``repro.obs.registry``) — counters, gauges,
  and histograms keyed by component name, plus collectors that absorb the
  existing scattered stats objects (``PacketMonitor``, ``TransportStats``,
  ``FlowControlStats``, interconnect transfer counters) behind one
  ``snapshot()`` API.
- Sinks (``repro.obs.sinks``) — in-memory for tests, JSON-lines for
  offline analysis (and :func:`load_trace` to read a dump back).
- :func:`breakdown` (``repro.obs.breakdown``) — folds a trace into the
  Fig 3-style per-stage latency table.
- :class:`TimelineCollector` (``repro.obs.timeline``) — simulated-time
  sampler turning registered probes into bounded time series, exact
  busy-time utilization summaries, and bottleneck attribution for
  latency-vs-load sweeps.
- :func:`export_chrome_trace` (``repro.obs.chrome_trace``) — Chrome
  trace-event / Perfetto JSON export (slice tracks from spans, counter
  tracks from time series, flow arrows linking a request's slices).
- Sketches (``repro.obs.sketch``) — mergeable O(1)-memory streaming
  aggregates: :class:`QuantileSketch` (relative-error percentiles) and
  :class:`MomentSketch` (exact mean/variance), backing the harness's
  ``mode="sketch"`` recording path for million-request runs.
- Anomaly attribution (``repro.obs.anomaly``) — change-point + z-score
  classification over collected timelines, naming the component/tenant
  that deviated hardest (:func:`detect_anomalies`).

See docs/observability.md for a walkthrough.
"""

from repro.obs.anomaly import (
    AnomalyFinding,
    AnomalyReport,
    detect_anomalies,
    detect_change_points,
)
from repro.obs.breakdown import Breakdown, StageStats, breakdown
from repro.obs.chrome_trace import chrome_trace_events, export_chrome_trace
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    register_dagger_nic,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonLinesSink,
    TraceFileError,
    dump_metrics,
    dump_timeline,
    dump_trace,
    load_trace,
)
from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    MomentSketch,
    QuantileSketch,
    merge_quantile_sketches,
)
from repro.obs.timeline import (
    BottleneckReport,
    TimelineCollector,
    TimeSeries,
    attribute_bottleneck,
    find_latency_knee,
    utilization_summary,
    utilization_tenants,
)
from repro.obs.trace import (
    CANONICAL_POINTS,
    RpcSpan,
    SpanTracer,
    attach_tracer,
    packet_point,
)

__all__ = [
    "AnomalyFinding",
    "AnomalyReport",
    "detect_anomalies",
    "detect_change_points",
    "DEFAULT_RELATIVE_ACCURACY",
    "MomentSketch",
    "QuantileSketch",
    "merge_quantile_sketches",
    "Breakdown",
    "StageStats",
    "breakdown",
    "chrome_trace_events",
    "export_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "register_dagger_nic",
    "InMemorySink",
    "JsonLinesSink",
    "TraceFileError",
    "dump_metrics",
    "dump_timeline",
    "dump_trace",
    "load_trace",
    "BottleneckReport",
    "TimelineCollector",
    "TimeSeries",
    "attribute_bottleneck",
    "find_latency_knee",
    "utilization_summary",
    "utilization_tenants",
    "CANONICAL_POINTS",
    "RpcSpan",
    "SpanTracer",
    "attach_tracer",
    "packet_point",
]
