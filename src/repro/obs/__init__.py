"""Observability layer: per-RPC span tracing + a unified metrics registry.

The paper's headline results (Figs 3, 10, 11) are per-RPC latency
*breakdowns* — where, between client issue and response completion, the
nanoseconds go. This package provides the substrate for producing them
from any simulated run:

- :class:`SpanTracer` (``repro.obs.trace``) — records per-RPC lifecycle
  events in simulated time, fed by lightweight hooks in the RPC runtime,
  the NIC RX/TX paths, and the interconnect models. Off by default: every
  hook site is a single ``tracer is not None`` check, so untraced runs pay
  nothing.
- :class:`MetricsRegistry` (``repro.obs.registry``) — counters, gauges,
  and histograms keyed by component name, plus collectors that absorb the
  existing scattered stats objects (``PacketMonitor``, ``TransportStats``,
  ``FlowControlStats``, interconnect transfer counters) behind one
  ``snapshot()`` API.
- Sinks (``repro.obs.sinks``) — in-memory for tests, JSON-lines for
  offline analysis.
- :func:`breakdown` (``repro.obs.breakdown``) — folds a trace into the
  Fig 3-style per-stage latency table.

See docs/observability.md for a walkthrough.
"""

from repro.obs.breakdown import Breakdown, StageStats, breakdown
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    register_dagger_nic,
)
from repro.obs.sinks import InMemorySink, JsonLinesSink, dump_metrics, dump_trace
from repro.obs.trace import (
    CANONICAL_POINTS,
    RpcSpan,
    SpanTracer,
    attach_tracer,
    packet_point,
)

__all__ = [
    "Breakdown",
    "StageStats",
    "breakdown",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "register_dagger_nic",
    "InMemorySink",
    "JsonLinesSink",
    "dump_metrics",
    "dump_trace",
    "CANONICAL_POINTS",
    "RpcSpan",
    "SpanTracer",
    "attach_tracer",
    "packet_point",
]
