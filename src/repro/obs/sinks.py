"""Trace/metrics sinks: in-memory for tests, JSON-lines for analysis.

A sink is anything with ``emit(record: dict)``; records are flat,
JSON-serializable dicts tagged with a ``type`` key (``"span"``,
``"transfer"``, ``"metrics"``, ``"timeseries"``). The JSON-lines format
means a traced run can be post-processed with standard tooling (``jq``,
pandas) without the simulator in the loop — and read back with
:func:`load_trace` for offline breakdown/replay.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union

from repro.obs.trace import RpcSpan


class TraceFileError(ValueError):
    """A trace file is missing, unreadable, or not valid trace JSONL."""


class InMemorySink:
    """Collects records in a list (the test sink)."""

    def __init__(self):
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)


class JsonLinesSink:
    """Appends one JSON object per record to a file (or open stream)."""

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._file: Optional[IO[str]] = open(target, "w")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False

    def emit(self, record: dict) -> None:
        if self._file is None:
            raise ValueError("sink is closed")
        self._file.write(json.dumps(record, sort_keys=True))
        self._file.write("\n")

    def close(self) -> None:
        if self._file is not None and self._owns_file:
            self._file.close()
        self._file = None

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dump_trace(tracer, sink) -> int:
    """Emit every span (and transfer aggregate) of a tracer to a sink.

    Returns the number of records emitted.
    """
    emitted = 0
    for span in tracer.spans():
        sink.emit(span.to_record())
        emitted += 1
    for component, agg in sorted(tracer.transfers.items()):
        sink.emit({"type": "transfer", "component": component, **agg})
        emitted += 1
    return emitted


def dump_metrics(registry, sink) -> None:
    """Emit one metrics-snapshot record for a registry."""
    sink.emit({"type": "metrics", "snapshot": registry.snapshot()})


def dump_timeline(collector, sink) -> int:
    """Emit one ``timeseries`` record per collected series; returns count."""
    emitted = 0
    for series in collector.series():
        sink.emit(series.to_record())
        emitted += 1
    return emitted


def load_trace(path: str) -> dict:
    """Read back a JSON-lines trace file written through :class:`JsonLinesSink`.

    Returns ``{"spans": [RpcSpan, ...], "transfers": {component: agg},
    "metrics": [snapshot, ...], "timeseries": [record, ...]}`` — spans are
    rebuilt as :class:`~repro.obs.trace.RpcSpan` objects, so the result
    feeds straight into ``breakdown()``.

    Raises :class:`TraceFileError` (with the offending line number) on a
    missing file or malformed content instead of leaking a traceback.
    """
    spans: List[RpcSpan] = []
    transfers = {}
    metrics: List[dict] = []
    timeseries: List[dict] = []
    try:
        handle = open(path)
    except OSError as exc:
        raise TraceFileError(f"cannot read trace file {path!r}: {exc}") from exc
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFileError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg})"
                ) from exc
            if not isinstance(record, dict) or "type" not in record:
                raise TraceFileError(
                    f"{path}:{lineno}: expected an object with a 'type' key"
                )
            kind = record["type"]
            try:
                if kind == "span":
                    span = RpcSpan(int(record["rpc_id"]))
                    span.events.update(
                        {str(k): int(v)
                         for k, v in record["events"].items()})
                    spans.append(span)
                elif kind == "transfer":
                    agg = dict(record)
                    agg.pop("type")
                    transfers[str(agg.pop("component"))] = agg
                elif kind == "metrics":
                    metrics.append(record["snapshot"])
                elif kind == "timeseries":
                    timeseries.append(record)
                # Unknown record types are skipped (forward compatibility).
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                raise TraceFileError(
                    f"{path}:{lineno}: malformed {kind!r} record ({exc})"
                ) from exc
    return {"spans": spans, "transfers": transfers, "metrics": metrics,
            "timeseries": timeseries}
