"""Trace/metrics sinks: in-memory for tests, JSON-lines for analysis.

A sink is anything with ``emit(record: dict)``; records are flat,
JSON-serializable dicts tagged with a ``type`` key (``"span"``,
``"transfer"``, ``"metrics"``). The JSON-lines format means a traced run
can be post-processed with standard tooling (``jq``, pandas) without the
simulator in the loop.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union


class InMemorySink:
    """Collects records in a list (the test sink)."""

    def __init__(self):
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)


class JsonLinesSink:
    """Appends one JSON object per record to a file (or open stream)."""

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._file: Optional[IO[str]] = open(target, "w")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False

    def emit(self, record: dict) -> None:
        if self._file is None:
            raise ValueError("sink is closed")
        self._file.write(json.dumps(record, sort_keys=True))
        self._file.write("\n")

    def close(self) -> None:
        if self._file is not None and self._owns_file:
            self._file.close()
        self._file = None

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dump_trace(tracer, sink) -> int:
    """Emit every span (and transfer aggregate) of a tracer to a sink.

    Returns the number of records emitted.
    """
    emitted = 0
    for span in tracer.spans():
        sink.emit(span.to_record())
        emitted += 1
    for component, agg in sorted(tracer.transfers.items()):
        sink.emit({"type": "transfer", "component": component, **agg})
        emitted += 1
    return emitted


def dump_metrics(registry, sink) -> None:
    """Emit one metrics-snapshot record for a registry."""
    sink.emit({"type": "metrics", "snapshot": registry.snapshot()})
