"""Unified metrics registry: counters, gauges, histograms + collectors.

The repository grew several scattered stats objects — ``PacketMonitor``,
``TransportStats``, ``FlowControlStats``, per-interface transfer counters.
They stay where they are (the hardware models own them, like soft
registers in the RTL), but a :class:`MetricsRegistry` absorbs them behind
one ``snapshot()`` API so the harness can report every component's state
uniformly.

Two kinds of entries:

- *typed metrics* created through :meth:`MetricsRegistry.counter`,
  :meth:`~MetricsRegistry.gauge`, :meth:`~MetricsRegistry.histogram` —
  owned by the registry, updated by callers;
- *collectors* registered through :meth:`MetricsRegistry.register` — a
  callable (or an object with ``snapshot()``, or a stats dataclass) read
  at snapshot time, so hardware counters are never copied on the hot path.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.sim.stats import percentile


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up (inc by {n})")
        self.value += n


class Gauge:
    """A point-in-time value (queue depth, credits outstanding, ...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A sample accumulator summarized at snapshot time.

    ``mode="exact"`` (the default) retains every sample — byte-for-byte
    the historical behaviour. ``mode="sketch"`` streams observations into
    a :class:`~repro.obs.sketch.QuantileSketch` instead: memory stays
    O(1) in the observation count (million-request cluster runs), at the
    price of percentiles being approximate within ``sketch_accuracy``
    relative error.
    """

    __slots__ = ("samples", "sketch")

    def __init__(self, mode: str = "exact",
                 sketch_accuracy: Optional[float] = None):
        if mode not in ("exact", "sketch"):
            raise ValueError(
                f"mode must be 'exact' or 'sketch', got {mode!r}"
            )
        self.samples: List[float] = []
        self.sketch = None
        if mode == "sketch":
            from repro.obs.sketch import (
                DEFAULT_RELATIVE_ACCURACY,
                QuantileSketch,
            )

            self.sketch = QuantileSketch(
                sketch_accuracy if sketch_accuracy is not None
                else DEFAULT_RELATIVE_ACCURACY
            )
        elif sketch_accuracy is not None:
            raise ValueError("sketch_accuracy is only valid in sketch mode")

    @property
    def mode(self) -> str:
        return "exact" if self.sketch is None else "sketch"

    @property
    def count(self) -> int:
        if self.sketch is not None:
            return self.sketch.count
        return len(self.samples)

    def observe(self, value: float) -> None:
        if self.sketch is not None:
            self.sketch.add(value)
        else:
            self.samples.append(value)

    def summary(self) -> dict:
        if self.sketch is not None:
            sketch = self.sketch
            if sketch.count == 0:
                return {"count": 0}
            return {
                "count": sketch.count,
                "mean": sketch.mean,
                "p50": sketch.quantile(50),
                "p90": sketch.quantile(90),
                "p99": sketch.quantile(99),
                "min": sketch.min,
                "max": sketch.max,
            }
        if not self.samples:
            return {"count": 0}
        data = sorted(self.samples)
        return {
            "count": len(data),
            "mean": sum(data) / len(data),
            "p50": percentile(data, 50, presorted=True),
            "p90": percentile(data, 90, presorted=True),
            "p99": percentile(data, 99, presorted=True),
            "min": data[0],
            "max": data[-1],
        }


class MetricsRegistry:
    """Metrics keyed by ``(component, name)`` with a single snapshot API."""

    def __init__(self):
        self._counters: Dict[str, Dict[str, Counter]] = {}
        self._gauges: Dict[str, Dict[str, Gauge]] = {}
        self._histograms: Dict[str, Dict[str, Histogram]] = {}
        self._collectors: Dict[str, Dict[str, Callable[[], dict]]] = {}

    # -- typed metrics -------------------------------------------------------

    def counter(self, component: str, name: str) -> Counter:
        return self._get_or_create(self._counters, component, name, Counter)

    def gauge(self, component: str, name: str) -> Gauge:
        return self._get_or_create(self._gauges, component, name, Gauge)

    def histogram(self, component: str, name: str, mode: str = "exact",
                  sketch_accuracy: Optional[float] = None) -> Histogram:
        metrics = self._histograms.setdefault(component, {})
        hist = metrics.get(name)
        if hist is None:
            hist = Histogram(mode=mode, sketch_accuracy=sketch_accuracy)
            metrics[name] = hist
        elif hist.mode != mode:
            raise ValueError(
                f"histogram {component}.{name} already exists in "
                f"{hist.mode!r} mode (requested {mode!r})"
            )
        return hist

    @staticmethod
    def _get_or_create(table, component: str, name: str, factory):
        metrics = table.setdefault(component, {})
        metric = metrics.get(name)
        if metric is None:
            metric = factory()
            metrics[name] = metric
        return metric

    # -- collectors (absorbing existing stats objects) -----------------------

    def register(self, component: str, source, name: str = "") -> None:
        """Attach an existing stats source to a component.

        ``source`` may be a zero-arg callable returning a dict, an object
        with a ``snapshot()`` method (e.g. ``PacketMonitor``), or a stats
        dataclass instance (``TransportStats``, ``FlowControlStats``);
        it is re-read on every :meth:`snapshot`. ``name`` disambiguates
        several sources on one component.
        """
        if callable(source):
            collect = source
        elif hasattr(source, "snapshot") and callable(source.snapshot):
            collect = source.snapshot
        elif dataclasses.is_dataclass(source) and not isinstance(source, type):
            collect = lambda obj=source: dataclasses.asdict(obj)  # noqa: E731
        else:
            raise TypeError(
                f"cannot collect from {type(source).__name__}: need a "
                "callable, a .snapshot() method, or a stats dataclass"
            )
        self._collectors.setdefault(component, {})[name] = collect

    # -- reading -------------------------------------------------------------

    def components(self) -> List[str]:
        names = set(self._counters) | set(self._gauges)
        names |= set(self._histograms) | set(self._collectors)
        return sorted(names)

    def snapshot(self) -> Dict[str, dict]:
        """One nested plain-dict view of every component's metrics."""
        out: Dict[str, dict] = {}
        for component in self.components():
            metrics: dict = {}
            for name, collect in self._collectors.get(component, {}).items():
                collected = collect()
                if name:
                    collected = {f"{name}.{k}": v
                                 for k, v in collected.items()}
                metrics.update(collected)
            for name, counter in self._counters.get(component, {}).items():
                metrics[name] = counter.value
            for name, gauge in self._gauges.get(component, {}).items():
                metrics[name] = gauge.value
            for name, hist in self._histograms.get(component, {}).items():
                metrics[name] = hist.summary()
            out[component] = metrics
        return out


def register_dagger_nic(registry: MetricsRegistry, nic,
                        component: Optional[str] = None) -> None:
    """Absorb one ``DaggerNic``'s scattered stats into the registry.

    Registers the packet monitor, the reliable-transport and flow-control
    stats when those §4.5 units are enabled, and the interconnect transfer
    counters — everything an experiment previously had to reach into
    individual objects for.
    """
    component = component or f"nic.{nic.address}"
    registry.register(component, nic.monitor)
    if nic.transport is not None:
        registry.register(component, nic.transport.stats, name="transport")
    if nic.flow_control is not None:
        registry.register(component, nic.flow_control.stats,
                          name="flow_control")
    interface = nic.interface
    registry.register(
        component,
        lambda iface=interface: {
            "lines_transferred": iface.lines_transferred,
            "transactions": iface.transactions,
        },
        name="interconnect",
    )
    cache = nic.connection_manager.cache
    registry.register(
        component,
        lambda c=cache: {
            "hits": c.hits,
            "misses": c.misses,
            "evictions": c.evictions,
            "hit_rate": c.hit_rate,
        },
        name="conn_cache",
    )
    registry.register(
        component,
        lambda n=nic: {
            "tx_depth": sum(len(r.tx_ring) for r in n.flow_rings),
            "rx_depth": sum(len(r.rx_ring) for r in n.flow_rings),
        },
        name="rings",
    )
