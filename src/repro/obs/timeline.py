"""Time-series telemetry over simulated time.

Three pieces (ISSUE 3 tentpole):

- :class:`TimeSeries` — a bounded ring-buffered series of ``(t_ns, value)``
  samples for one probe of one component.
- :class:`TimelineCollector` — a simulated-time sampler process that
  periodically snapshots registered probes. Probes are zero-argument
  callables; components can expose a whole probe set at once through the
  ``timeline_probes()`` protocol (an iterable of ``(name, mode, fn)``
  triples, see :meth:`TimelineCollector.add_source`).
- Bottleneck attribution — :func:`find_latency_knee` and
  :func:`attribute_bottleneck` join per-load utilization summaries with the
  latency curve to name the first-saturating component at the knee of a
  Fig 11/15-style sweep.

Tenant dimension (ISSUE 4): every series optionally carries a ``tenant``
tag, so the virtualized multi-NIC model of Fig 14 can expose one probe
namespace per virtual NIC. Multi-tenant sources yield *4-tuples*
``(tenant, name, mode, fn)`` from ``timeline_probes()``;
:meth:`TimelineCollector.add_source` lands those under
``<component>.<tenant>`` with the tenant recorded on the series, which
makes utilization keys look like ``nic.t0.fetch``.
:func:`utilization_tenants` maps those summary keys back to their tenant,
and :func:`attribute_bottleneck` uses that mapping (carried on each sweep
point under ``"tenants"``) to name ``(tenant, component)`` — blaming a
noisy neighbour by name, while a uniformly-saturated component class
(every tenant equally busy) stays tenant-less.

Probe *modes*:

- ``"gauge"`` — an instantaneous value (queue depth, in-flight window,
  hit rate). The series is the value over time.
- ``"counter"`` — a monotonically non-decreasing value (bytes sent, RPCs
  completed, a busy-time integral). The interesting signal is the
  *derivative*; :meth:`TimeSeries.rate` computes it per sampling interval.

The key trick for exact utilization: components expose their
:class:`repro.sim.resources.Usage` busy-time integrals (already normalized
by capacity) as ``counter`` probes named ``*busy_ns``. Because the integral
is exact accounting at every state transition, the windowed derivative
``Δbusy_ns / Δt`` is the *exact* mean utilization over that window — the
sampling interval only sets the resolution of the plot, never the accuracy
of the number. :func:`utilization_summary` reduces every such series to a
single busy fraction over the sampled window.

The sampler is careful about liveness: after each sample it checks
``sim.has_pending()`` and terminates when it is the only thing left
scheduled, so enabling telemetry never keeps ``sim.run()`` from draining
and never masks the deadlock detection in ``run_until_done``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator

#: Default sampling period (simulated ns) and per-series ring bound.
DEFAULT_INTERVAL_NS = 2000
DEFAULT_MAX_SAMPLES = 4096


class TimeSeries:
    """A bounded ring-buffered time series for one probe.

    Oldest samples are evicted once ``max_samples`` is reached, so a probe
    on an arbitrarily long run holds a sliding window, never unbounded
    memory. Repeated samples at the same timestamp overwrite (the collector
    takes a closing sample at ``stop()`` which may coincide with the last
    periodic one).
    """

    __slots__ = ("component", "name", "mode", "tenant", "_t", "_v")

    def __init__(self, component: str, name: str, mode: str = "gauge",
                 max_samples: Optional[int] = DEFAULT_MAX_SAMPLES,
                 tenant: Optional[str] = None):
        if mode not in ("gauge", "counter"):
            raise ValueError(f"mode must be 'gauge' or 'counter', got {mode!r}")
        self.component = component
        self.name = name
        self.mode = mode
        self.tenant = tenant
        self._t: deque = deque(maxlen=max_samples)
        self._v: deque = deque(maxlen=max_samples)

    def append(self, t_ns: int, value: float) -> None:
        if self._t and self._t[-1] == t_ns:
            self._v[-1] = value
            return
        self._t.append(t_ns)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> List[int]:
        return list(self._t)

    @property
    def values(self) -> List[float]:
        return list(self._v)

    def last(self) -> Optional[Tuple[int, float]]:
        if not self._t:
            return None
        return self._t[-1], self._v[-1]

    def rate(self) -> List[Tuple[int, float]]:
        """Per-interval derivative ``[(t_i, (v_i - v_{i-1}) / Δt)]``.

        For a ``counter`` probe this is the rate (utilization for busy-ns
        integrals, bytes/ns for byte counters). Intervals with Δt == 0 are
        skipped.
        """
        out = []
        times, values = self._t, self._v
        for i in range(1, len(times)):
            dt = times[i] - times[i - 1]
            if dt > 0:
                out.append((times[i], (values[i] - values[i - 1]) / dt))
        return out

    def window_delta(self) -> Tuple[int, float]:
        """``(Δt_ns, Δvalue)`` across the retained window (0, 0.0 if < 2)."""
        if len(self._t) < 2:
            return 0, 0.0
        return self._t[-1] - self._t[0], self._v[-1] - self._v[0]

    def to_record(self) -> dict:
        """JSON-able record (``type: "timeseries"``, for sinks)."""
        record = {
            "type": "timeseries",
            "component": self.component,
            "name": self.name,
            "mode": self.mode,
            "t_ns": list(self._t),
            "values": list(self._v),
        }
        if self.tenant is not None:
            record["tenant"] = self.tenant
        return record


class TimelineCollector:
    """Samples registered probes every ``interval_ns`` of simulated time.

    Lifecycle::

        collector = TimelineCollector(sim, interval_ns=2000)
        collector.add_source("nic.client", nic)      # timeline_probes()
        collector.add_probe("client0", "outstanding",
                            lambda: len(client._pending))
        collector.start()     # takes a t=now baseline sample, spawns sampler
        ...run the simulation...
        collector.stop()      # takes a closing sample

    The sampler stops itself when nothing else is scheduled (see module
    docstring), so a collector never changes whether/when a simulation
    terminates — and since probes only *read* model state, it never changes
    simulated results either.

    Adaptive sampling (ISSUE 8): with ``adaptive=True`` the sampler
    reshapes its own period around what the probes are doing. After every
    periodic sample it classifies the step as *flat* (no probe's newest
    sample broke from its own recent window — see :meth:`_probe_moved`;
    gauges compared by value, counters by per-interval rate) or as a
    *change point*. A run of
    ``flat_streak`` consecutive flat steps doubles the period (up to
    ``max_interval_ns``); a change point divides it by four (down to
    ``min_interval_ns``), so the sampler tightens geometrically faster
    than it relaxes and dense samples cluster where the signal actually
    bends. The fixed-interval path stays the default and is untouched —
    adaptivity changes only *when* probes are read, never any simulated
    outcome.
    """

    def __init__(self, sim: Simulator,
                 interval_ns: int = DEFAULT_INTERVAL_NS,
                 max_samples: Optional[int] = DEFAULT_MAX_SAMPLES,
                 adaptive: bool = False,
                 min_interval_ns: Optional[int] = None,
                 max_interval_ns: Optional[int] = None,
                 flat_threshold: float = 0.05,
                 flat_streak: int = 2):
        if interval_ns < 1:
            raise ValueError(f"interval_ns must be >= 1, got {interval_ns}")
        if max_samples is not None and max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.sim = sim
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        self.adaptive = adaptive
        if min_interval_ns is None:
            min_interval_ns = max(1, interval_ns // 8)
        if max_interval_ns is None:
            max_interval_ns = interval_ns * 8
        if not 1 <= min_interval_ns <= interval_ns <= max_interval_ns:
            raise ValueError(
                "need 1 <= min_interval_ns <= interval_ns <= "
                f"max_interval_ns, got {min_interval_ns} <= {interval_ns} "
                f"<= {max_interval_ns}"
            )
        if flat_threshold <= 0:
            raise ValueError(
                f"flat_threshold must be positive, got {flat_threshold}"
            )
        if flat_streak < 1:
            raise ValueError(f"flat_streak must be >= 1, got {flat_streak}")
        self.min_interval_ns = min_interval_ns
        self.max_interval_ns = max_interval_ns
        self.flat_threshold = flat_threshold
        self.flat_streak = flat_streak
        #: Period the sampler will sleep next; moves only in adaptive mode.
        self.current_interval_ns = interval_ns
        #: ``(t_ns, new_interval_ns)`` log of every adaptation.
        self.interval_history: List[Tuple[int, int]] = []
        self.tightenings = 0
        self.widenings = 0
        self._flat_run = 0
        self.samples_taken = 0
        self._series: List[TimeSeries] = []
        self._by_key: Dict[Tuple[str, str], TimeSeries] = {}
        self._probes: List[Tuple[TimeSeries, Callable[[], float]]] = []
        self._active = False
        self._started = False

    # -- registration --------------------------------------------------------

    def add_probe(self, component: str, name: str,
                  fn: Callable[[], float], mode: str = "gauge",
                  tenant: Optional[str] = None) -> TimeSeries:
        """Register one probe; returns its (empty) series."""
        key = (component, name)
        if key in self._by_key:
            raise ValueError(f"duplicate probe {component}.{name}")
        series = TimeSeries(component, name, mode, self.max_samples,
                            tenant=tenant)
        self._series.append(series)
        self._by_key[key] = series
        self._probes.append((series, fn))
        return series

    def add_source(self, component: str, source: Any,
                   tenant: Optional[str] = None) -> List[TimeSeries]:
        """Register every probe a component exposes.

        ``source.timeline_probes()`` must return an iterable of
        ``(name, mode, fn)`` triples — or, for multi-tenant sources such
        as :class:`repro.hw.nic.virtualization.VirtualizedFpga`,
        ``(tenant, name, mode, fn)`` 4-tuples. A 4-tuple lands under the
        ``<component>.<tenant>`` namespace with the tenant recorded on
        the series; a plain triple inherits this call's ``tenant``.
        """
        made = []
        for entry in source.timeline_probes():
            if len(entry) == 4:
                probe_tenant, name, mode, fn = entry
                made.append(self.add_probe(
                    f"{component}.{probe_tenant}", name, fn, mode,
                    tenant=probe_tenant,
                ))
            else:
                name, mode, fn = entry
                made.append(self.add_probe(component, name, fn, mode,
                                           tenant=tenant))
        return made

    def series(self, component: Optional[str] = None,
               tenant: Optional[str] = None) -> List[TimeSeries]:
        out = list(self._series)
        if component is not None:
            out = [s for s in out if s.component == component]
        if tenant is not None:
            out = [s for s in out if s.tenant == tenant]
        return out

    def get(self, component: str, name: str) -> Optional[TimeSeries]:
        return self._by_key.get((component, name))

    def components(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self._series:
            seen.setdefault(s.component, None)
        return list(seen)

    def tenants(self) -> List[str]:
        """Distinct tenant tags, in registration order."""
        seen: Dict[str, None] = {}
        for s in self._series:
            if s.tenant is not None:
                seen.setdefault(s.tenant, None)
        return list(seen)

    # -- sampling ------------------------------------------------------------

    def sample(self) -> None:
        """Snapshot every probe at the current simulated time."""
        now = self.sim.now
        for series, fn in self._probes:
            series.append(now, fn())
        self.samples_taken += 1

    def start(self) -> None:
        """Take a baseline sample and spawn the periodic sampler."""
        if self._active:
            return
        self._active = True
        self._started = True
        self.sample()
        self.sim.spawn(self._run(), name="timeline-sampler")

    def stop(self) -> None:
        """Stop the sampler and take a closing sample."""
        if not self._started:
            return
        self._active = False
        self.sample()

    def _run(self):
        sim = self.sim
        while self._active:
            yield self.current_interval_ns
            if not self._active:
                return
            self.sample()
            if self.adaptive:
                self._adapt()
            if not sim.has_pending():
                # We are the only thing left scheduled: a finished
                # simulation must be allowed to drain (liveness contract).
                return

    # -- adaptive pacing -----------------------------------------------------

    #: Adaptive change test: samples further than this many recent-window
    #: stddevs from the recent-window mean count as change points.
    ADAPT_SIGMA = 3.0
    #: Recent-window length for the change test (samples).
    ADAPT_WINDOW = 8

    def _probe_moved(self, series: TimeSeries) -> bool:
        """Did this probe's newest sample break from its recent past?

        The newest sample is scored against the mean of the (up to)
        :data:`ADAPT_WINDOW` samples before it: a change point is a
        deviation beyond ``ADAPT_SIGMA`` stddevs *and* beyond
        ``flat_threshold`` relative. The stddev term keeps a noisy but
        statistically steady probe (queue depths under constant load)
        from pinning the sampler at ``min_interval_ns``; the relative
        floor keeps float jitter on a flat probe from ever counting.
        Counters are compared by per-interval rate (steady climb ==
        flat), gauges by value.
        """
        t, v = series._t, series._v
        if series.mode == "counter":
            signal = []
            for i in range(max(1, len(t) - self.ADAPT_WINDOW - 1), len(t)):
                dt = t[i] - t[i - 1]
                if dt > 0:
                    signal.append((v[i] - v[i - 1]) / dt)
        else:
            signal = [v[i] for i in
                      range(max(0, len(v) - self.ADAPT_WINDOW - 1), len(v))]
        if len(signal) < 3:
            # Too early to know what "steady" looks like; hold the period.
            return False
        *base, newest = signal
        mean = sum(base) / len(base)
        var = sum((x - mean) ** 2 for x in base) / len(base)
        scale = max(self.ADAPT_SIGMA * math.sqrt(var),
                    self.flat_threshold * max(abs(mean), abs(newest)),
                    1e-9)
        return abs(newest - mean) > scale

    def _adapt(self) -> None:
        """Retune the period after a sample (adaptive mode only)."""
        if any(self._probe_moved(series) for series, _ in self._probes):
            self._flat_run = 0
            tightened = max(self.min_interval_ns,
                            self.current_interval_ns // 4)
            if tightened != self.current_interval_ns:
                self.current_interval_ns = tightened
                self.tightenings += 1
                self.interval_history.append((self.sim.now, tightened))
            return
        self._flat_run += 1
        if self._flat_run >= self.flat_streak:
            self._flat_run = 0
            widened = min(self.max_interval_ns,
                          self.current_interval_ns * 2)
            if widened != self.current_interval_ns:
                self.current_interval_ns = widened
                self.widenings += 1
                self.interval_history.append((self.sim.now, widened))

    # -- reduction -----------------------------------------------------------

    def utilization(self) -> Dict[str, float]:
        """See :func:`utilization_summary`."""
        return utilization_summary(self)

    def to_dict(self) -> dict:
        """JSON-able dump of the collector state and every series.

        The adaptive block is only present for adaptive collectors, so
        fixed-interval dumps (everything signature-gated) keep their
        historical byte-identical shape.
        """
        data = {
            "interval_ns": self.interval_ns,
            "samples_taken": self.samples_taken,
            "series": [s.to_record() for s in self._series],
        }
        if self.adaptive:
            data["adaptive"] = {
                "min_interval_ns": self.min_interval_ns,
                "max_interval_ns": self.max_interval_ns,
                "final_interval_ns": self.current_interval_ns,
                "tightenings": self.tightenings,
                "widenings": self.widenings,
                "interval_history": [list(entry)
                                     for entry in self.interval_history],
            }
        return data


#: Suffix marking capacity-normalized busy-time-integral counter probes.
BUSY_SUFFIX = "busy_ns"


def _summary_key(series: TimeSeries) -> str:
    """Utilization-summary key of a ``*busy_ns`` series."""
    stem = series.name[: -len(BUSY_SUFFIX)].rstrip("_")
    return f"{series.component}.{stem}" if stem else series.component


def utilization_summary(collector: TimelineCollector) -> Dict[str, float]:
    """Per-component busy fractions over the sampled window.

    Reduces every ``counter`` series named ``*busy_ns`` (a
    capacity-normalized exact busy-time integral) to
    ``Δintegral / Δt`` — the exact mean utilization over the window the
    ring buffer retains. Keys are ``"component.probe"`` with the
    ``_busy_ns``/``busy_ns`` suffix stripped (``"nic.client.pipeline"``,
    ``"cpu.core0"``; for tenant-tagged series the component already
    embeds the tenant: ``"nic.t0.fetch"``).
    """
    out: Dict[str, float] = {}
    for series in collector.series():
        if series.mode != "counter" or not series.name.endswith(BUSY_SUFFIX):
            continue
        dt, dv = series.window_delta()
        if dt <= 0:
            continue
        out[_summary_key(series)] = dv / dt
    return out


def utilization_tenants(collector: TimelineCollector) -> Dict[str, str]:
    """Map :func:`utilization_summary` keys to their tenant tag.

    Only tenant-tagged ``*busy_ns`` series appear; shared components
    (interconnect, CPU cores) are absent, which is how
    :func:`attribute_bottleneck` knows a bottleneck is tenant-less. The
    mapping is JSON-able so sweep points can carry it through the result
    cache under a ``"tenants"`` key.
    """
    out: Dict[str, str] = {}
    for series in collector.series():
        if (series.tenant is None or series.mode != "counter"
                or not series.name.endswith(BUSY_SUFFIX)):
            continue
        out[_summary_key(series)] = series.tenant
    return out


# -- bottleneck attribution --------------------------------------------------


def find_latency_knee(latencies: List[float], factor: float = 1.5) -> int:
    """Index of the knee in a latency-vs-load curve.

    The knee is the first point whose latency exceeds ``factor`` times the
    lowest-load latency; if the curve never crosses that line, the point
    after the largest relative jump; for flat or single-point curves, the
    last index.
    """
    if not latencies:
        raise ValueError("empty latency curve")
    if len(latencies) == 1:
        return 0
    base = latencies[0]
    if base > 0:
        for i, lat in enumerate(latencies):
            if lat > factor * base:
                return i
    best_i, best_ratio = len(latencies) - 1, 1.0
    for i in range(1, len(latencies)):
        prev = latencies[i - 1]
        ratio = latencies[i] / prev if prev > 0 else 1.0
        if ratio > best_ratio:
            best_i, best_ratio = i, ratio
    return best_i


@dataclass
class BottleneckReport:
    """Attribution of a latency-vs-load sweep to its saturating component."""

    knee_index: int
    knee_load_mrps: float
    knee_latency_us: float
    bottleneck: str                       #: component saturating at the knee
    bottleneck_utilization: float
    #: Tenant owning the saturating component, when the sweep carried the
    #: tenant dimension and the saturation is tenant-specific (a noisy
    #: neighbour); None for shared components and uniform saturation.
    bottleneck_tenant: Optional[str] = None
    per_point: List[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "knee_index": self.knee_index,
            "knee_load_mrps": self.knee_load_mrps,
            "knee_latency_us": self.knee_latency_us,
            "bottleneck": self.bottleneck,
            "bottleneck_utilization": self.bottleneck_utilization,
            "bottleneck_tenant": self.bottleneck_tenant,
            "per_point": self.per_point,
        }


def _component_class(key: str, tenant: str) -> str:
    """Key with the tenant path segment wildcarded (``nic.t0.fetch`` ->
    ``nic.*.fetch``), so same-class components compare across tenants."""
    return ".".join("*" if part == tenant else part
                    for part in key.split("."))


def _blamed_tenant(util: Dict[str, float], tenants: Dict[str, str],
                   key: str, margin: float) -> Optional[str]:
    """Tenant to blame for ``key`` saturating, or None.

    A tenant is only named when its component is meaningfully busier than
    every *other* tenant's same-class component: if the busiest peer is
    within ``margin`` (relative), the whole class saturates uniformly —
    that is a shared bound wearing per-tenant clothes, and naming one
    tenant would be noise, not attribution.
    """
    tenant = tenants.get(key)
    if tenant is None:
        return None
    cls = _component_class(key, tenant)
    value = util.get(key, 0.0)
    for peer_key, peer_tenant in tenants.items():
        if peer_tenant == tenant or peer_key not in util:
            continue
        if _component_class(peer_key, peer_tenant) != cls:
            continue
        if util[peer_key] >= (1.0 - margin) * value:
            return None
    return tenant


def attribute_bottleneck(points: List[dict], factor: float = 1.5,
                         latency_key: str = "p99_us",
                         tenant_margin: float = 0.1) -> BottleneckReport:
    """Name the first-saturating component at the latency knee of a sweep.

    ``points`` is a list of per-load dicts with at least ``offered_mrps``,
    a latency (``latency_key``, default ``p99_us``) and ``utilization``
    (the :func:`utilization_summary` of that run). Points are sorted by
    load; the knee comes from :func:`find_latency_knee`; the bottleneck is
    the most-utilized component at the knee point (ties break toward the
    component that was already busiest at the preceding load point, i.e.
    the *first* saturating one).

    Tenant dimension: points may additionally carry ``"tenants"`` (the
    :func:`utilization_tenants` mapping of that run). The report then
    names ``(tenant, component)``: the saturating component's tenant is
    blamed *only* when its utilization clearly exceeds every other
    tenant's same-class component (by more than ``tenant_margin``,
    relative) — a balanced run where all tenants saturate together keeps
    ``bottleneck_tenant`` None.
    """
    if not points:
        raise ValueError("attribute_bottleneck needs at least one point")
    points = sorted(points, key=lambda p: p["offered_mrps"])
    knee = find_latency_knee([p[latency_key] for p in points], factor)

    def busiest(index: int) -> Tuple[str, float, Optional[str]]:
        util = points[index].get("utilization") or {}
        if not util:
            return "unknown", 0.0, None
        prev = points[index - 1].get("utilization") or {} if index else {}
        # max by (utilization here, utilization at the previous load)
        name = max(util, key=lambda k: (util[k], prev.get(k, 0.0)))
        tenants = points[index].get("tenants") or {}
        tenant = _blamed_tenant(util, tenants, name, tenant_margin)
        return name, util[name], tenant

    bottleneck, bottleneck_util, bottleneck_tenant = busiest(knee)
    per_point = []
    for i, p in enumerate(points):
        name, util, tenant = busiest(i)
        per_point.append({
            "offered_mrps": p["offered_mrps"],
            latency_key: p[latency_key],
            "bottleneck": name,
            "tenant": tenant,
            "utilization": util,
        })
    return BottleneckReport(
        knee_index=knee,
        knee_load_mrps=points[knee]["offered_mrps"],
        knee_latency_us=points[knee][latency_key],
        bottleneck=bottleneck,
        bottleneck_utilization=bottleneck_util,
        bottleneck_tenant=bottleneck_tenant,
        per_point=per_point,
    )
