"""Sketch-backed metrics: O(1)-memory streaming aggregates (ISSUE 8).

Million-request runs cannot afford a retained per-request latency list —
the "observability bloat" MicroView (Cornacchia et al., NSDI'26) replaces
with in-situ sketches on the IPU. This module is the repository's version
of that idea: two small, mergeable, JSON-able sketches that the harness
threads through every layer that today keeps raw samples.

- :class:`QuantileSketch` — a DDSketch-style streaming quantile sketch
  over logarithmic buckets. For a configured *relative accuracy* α, any
  reported quantile ``q`` satisfies ``|q - q_true| <= α * q_true``
  regardless of how many values were added: memory is bounded by the
  number of distinct log-buckets touched (a function of the value range
  and α, **not** of the sample count). Sketches with the same α merge
  losslessly — merging per-shard sketches gives byte-identical buckets
  to one sketch fed the union of the streams, which is what lets
  :meth:`repro.sim.stats.SummaryStats.merge` drop the retained-samples
  requirement across shards.
- :class:`MomentSketch` — exact streaming moments (count / sum / sum of
  squares / min / max) for counter and gauge reductions: mean and
  variance without keeping any samples. Also mergeable and JSON-able.

Both sketches are deterministic: no randomness, no timestamps, and their
``to_record()`` forms use sorted bucket lists so canonical JSON is stable
across runs and Python versions (the sweep cache contract).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

#: Default relative accuracy: quantiles within 1% of the true sample
#: value (the ISSUE 8 acceptance bound).
DEFAULT_RELATIVE_ACCURACY = 0.01


class QuantileSketch:
    """Mergeable streaming quantile sketch with relative-error guarantees.

    Values map to logarithmic buckets ``i = ceil(log_gamma(v))`` with
    ``gamma = (1 + α) / (1 - α)``; each bucket's representative value
    ``2 * gamma**i / (gamma + 1)`` (the log-space midpoint) is within α
    relative error of every value the bucket can hold. Non-positive
    values land in a dedicated zero bucket (latencies are >= 0; an exact
    zero has no log-bucket). Count, sum, min, and max are tracked
    exactly, so ``mean``/``min``/``max`` carry no sketch error at all
    and extreme quantiles clamp to the exact range.
    """

    __slots__ = ("relative_accuracy", "_gamma", "_log_gamma", "_buckets",
                 "zero_count", "count", "sum", "min", "max")

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- ingestion -----------------------------------------------------------

    def add(self, value: float, n: int = 1) -> None:
        """Add ``value`` (``n`` times) to the sketch."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        value = float(value)
        if value > 0.0:
            index = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[index] = self._buckets.get(index, 0) + n
        elif value == 0.0:
            self.zero_count += n
        else:
            raise ValueError(f"latency sketch takes values >= 0, got {value}")
        self.count += n
        self.sum += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # -- queries -------------------------------------------------------------

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty sketch")
        return self.sum / self.count

    def _representative(self, index: int) -> float:
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, pct: float) -> float:
        """Value at percentile ``pct`` in [0, 100], within α relative error.

        Uses the same rank convention as :func:`repro.sim.stats.percentile`
        (``rank = pct/100 * (count - 1)``) so sketch and exact quantiles of
        the same stream agree to within the accuracy bound. Results clamp
        to the exact ``[min, max]`` range.
        """
        if self.count == 0:
            raise ValueError("quantile of an empty sketch")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        rank = (pct / 100.0) * (self.count - 1)
        if rank < self.zero_count:
            value = 0.0
        else:
            seen = self.zero_count
            value = self.max if self.max is not None else 0.0
            for index in sorted(self._buckets):
                seen += self._buckets[index]
                if rank < seen:
                    value = self._representative(index)
                    break
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    # -- merging -------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place); returns ``self``.

        Merging is exact: the merged bucket map is identical to the one a
        single sketch would have built over the concatenated stream, so
        per-shard sketches lose nothing against a global one.
        """
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        for value in (other.min, other.max):
            if value is None:
                continue
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
        return self

    @classmethod
    def merged(cls, parts: Iterable["QuantileSketch"]) -> "QuantileSketch":
        parts = list(parts)
        if not parts:
            raise ValueError("no sketches to merge")
        out = cls(parts[0].relative_accuracy)
        for part in parts:
            out.merge(part)
        return out

    # -- serialization -------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        """Distinct log-buckets in use — the sketch's memory footprint."""
        return len(self._buckets)

    def to_record(self) -> dict:
        """Canonical JSON-able form (``type: "quantile_sketch"``).

        Buckets are a sorted ``[index, count]`` list, so the canonical
        JSON of two equal sketches is byte-identical.
        """
        return {
            "type": "quantile_sketch",
            "relative_accuracy": self.relative_accuracy,
            "buckets": [[index, self._buckets[index]]
                        for index in sorted(self._buckets)],
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_record(cls, record: dict) -> "QuantileSketch":
        if record.get("type") != "quantile_sketch":
            raise ValueError(
                f"not a quantile_sketch record: {record.get('type')!r}"
            )
        sketch = cls(record["relative_accuracy"])
        sketch._buckets = {int(index): int(n)
                           for index, n in record["buckets"]}
        sketch.zero_count = record["zero_count"]
        sketch.count = record["count"]
        sketch.sum = record["sum"]
        sketch.min = record["min"]
        sketch.max = record["max"]
        return sketch


class MomentSketch:
    """Exact streaming moments for counters and gauges (no samples kept).

    Tracks count, sum, sum of squares, min, and max; reduces to mean and
    (population) variance/stddev. Unlike :class:`QuantileSketch` there is
    no approximation anywhere — moments are closed under addition — so
    merging per-shard moment sketches is exactly a global one.
    """

    __slots__ = ("count", "sum", "sum_sq", "min", "max")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.sum_sq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float, n: int = 1) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        value = float(value)
        self.count += n
        self.sum += value * n
        self.sum_sq += value * value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty sketch")
        return self.sum / self.count

    @property
    def variance(self) -> float:
        if self.count == 0:
            raise ValueError("variance of an empty sketch")
        mean = self.mean
        # Guard the subtraction against float cancellation going negative.
        return max(0.0, self.sum_sq / self.count - mean * mean)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "MomentSketch") -> "MomentSketch":
        self.count += other.count
        self.sum += other.sum
        self.sum_sq += other.sum_sq
        for value in (other.min, other.max):
            if value is None:
                continue
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
        return self

    def to_record(self) -> dict:
        return {
            "type": "moment_sketch",
            "count": self.count,
            "sum": self.sum,
            "sum_sq": self.sum_sq,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_record(cls, record: dict) -> "MomentSketch":
        if record.get("type") != "moment_sketch":
            raise ValueError(
                f"not a moment_sketch record: {record.get('type')!r}"
            )
        sketch = cls()
        sketch.count = record["count"]
        sketch.sum = record["sum"]
        sketch.sum_sq = record["sum_sq"]
        sketch.min = record["min"]
        sketch.max = record["max"]
        return sketch


def merge_quantile_sketches(parts: Iterable[QuantileSketch]) -> QuantileSketch:
    """Module-level alias of :meth:`QuantileSketch.merged` (sweep-friendly)."""
    return QuantileSketch.merged(parts)


__all__: List[str] = [
    "DEFAULT_RELATIVE_ACCURACY",
    "MomentSketch",
    "QuantileSketch",
    "merge_quantile_sketches",
]
