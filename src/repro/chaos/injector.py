"""The fault injector: one seeded RNG driving every fault decision.

Determinism contract: with a fixed :class:`ChaosConfig` and a fixed
workload, the injector draws from its ``random.Random(seed)`` in a fixed
order (one evaluation per wire crossing, in simulation event order, plus
the precomputed straggler/thrash schedules), so two runs of the same seed
produce bit-identical results. Nothing here reads wall-clock time or
global RNG state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.chaos.faults import ChaosConfig
from repro.rpc.messages import RpcKind

#: Ring bound on the recorded fault-event timeline (oldest kept).
MAX_FAULT_EVENTS = 10_000


@dataclass
class ChaosStats:
    wire_losses: int = 0
    wire_burst_losses: int = 0
    wire_reorders: int = 0
    wire_duplicates: int = 0
    control_faults: int = 0  # faults that hit CONTROL (ACK/NACK/CREDIT)
    degraded_crossings: int = 0
    straggler_windows: int = 0
    cache_flushes: int = 0
    cache_entries_flushed: int = 0


class ChaosInjector:
    """Applies a :class:`ChaosConfig` to a running rig.

    Wire faults hook the switch (``switch.wire_faults = injector``);
    stragglers and cache thrash run as ordinary simulation processes.
    """

    def __init__(self, sim, config: ChaosConfig):
        self.sim = sim
        self.config = config
        self.stats = ChaosStats()
        self._rng = random.Random(config.seed)
        self._in_burst = False
        self._degraded = dict(config.degraded_nics)
        #: Bounded (t_ns, kind, rpc_id) fault-event log for the timeline.
        self.events: List[Tuple[int, str, Any]] = []

    # -- wiring ----------------------------------------------------------------

    def attach(self, switch, cores=(), nics=()) -> None:
        """Install the wire hook and spawn the scheduled fault processes."""
        switch.wire_faults = self
        straggler = self.config.straggler
        if straggler.windows > 0:
            for core in cores:
                if core.core_id == straggler.core_id:
                    self.sim.spawn(self._straggle(core))
                    break
        thrash = self.config.cache_thrash
        if thrash.flushes > 0 and nics:
            self.sim.spawn(self._thrash(list(nics)))

    # -- wire faults (called by ToRSwitch.send) --------------------------------

    def on_wire(self, dst_address: str, packet) -> list:
        """Fault verdict for one wire crossing.

        Returns the deliveries the crossing produces as
        ``[(packet, extra_delay_ns), ...]`` — empty list for a loss, two
        entries for a duplication (the second a :meth:`RpcPacket.clone`,
        never the same object twice). CONTROL packets are subject to the
        same faults unless ``spare_control`` — a lost NACK / ACK / CREDIT
        grant is precisely the scenario the transport's timeout and the
        credit engine's reconciliation exist for.
        """
        cfg = self.config.wire
        rng = self._rng
        extra = self._degraded.get(packet.src_address, 0)
        if extra:
            self.stats.degraded_crossings += 1
        is_control = packet.kind is RpcKind.CONTROL
        if is_control and cfg.spare_control:
            return [(packet, extra)]
        # Correlated bursts: two-state Gilbert-Elliott channel (every
        # packet during a burst is lost).
        if cfg.burst_enter > 0.0:
            if self._in_burst:
                if rng.random() < cfg.burst_exit:
                    self._in_burst = False
                else:
                    self._drop(packet, "burst_loss", is_control)
                    self.stats.wire_burst_losses += 1
                    return []
            elif rng.random() < cfg.burst_enter:
                self._in_burst = True
                self._drop(packet, "burst_loss", is_control)
                self.stats.wire_burst_losses += 1
                return []
        if cfg.loss > 0.0 and rng.random() < cfg.loss:
            self._drop(packet, "loss", is_control)
            self.stats.wire_losses += 1
            return []
        deliveries = [(packet, extra)]
        if cfg.duplicate > 0.0 and rng.random() < cfg.duplicate:
            self.stats.wire_duplicates += 1
            if is_control:
                self.stats.control_faults += 1
            self._record("duplicate", packet)
            deliveries.append((packet.clone(), extra))
        if cfg.reorder > 0.0 and rng.random() < cfg.reorder:
            self.stats.wire_reorders += 1
            if is_control:
                self.stats.control_faults += 1
            self._record("reorder", packet)
            deliveries = [(pkt, delay + cfg.reorder_delay_ns)
                          for pkt, delay in deliveries]
        return deliveries

    def _drop(self, packet, kind: str, is_control: bool) -> None:
        if is_control:
            self.stats.control_faults += 1
        self._record(kind, packet)

    def _record(self, kind: str, packet) -> None:
        if len(self.events) >= MAX_FAULT_EVENTS:
            self.events.pop(0)
        self.events.append((self.sim.now, kind,
                            None if packet is None else packet.rpc_id))

    # -- scheduled faults -------------------------------------------------------

    def _straggle(self, core):
        spec = self.config.straggler
        for _ in range(spec.windows):
            yield spec.period_ns
            core.slowdown = spec.slowdown
            self.stats.straggler_windows += 1
            self._record("straggler_on", None)
            yield spec.duration_ns
            core.slowdown = 1.0
            self._record("straggler_off", None)

    def _thrash(self, nics):
        spec = self.config.cache_thrash
        for _ in range(spec.flushes):
            yield spec.period_ns
            flushed = 0
            for nic in nics:
                flushed += nic.connection_manager.cache.flush()
            self.stats.cache_flushes += 1
            self.stats.cache_entries_flushed += flushed
            self._record("cache_flush", None)

    # -- observability ----------------------------------------------------------

    def timeline_probes(self):
        """Timeline probe set (repro.obs): fault counters over time."""
        stats = self.stats
        return [
            ("wire_losses", "counter",
             lambda: stats.wire_losses + stats.wire_burst_losses),
            ("wire_reorders", "counter", lambda: stats.wire_reorders),
            ("wire_duplicates", "counter", lambda: stats.wire_duplicates),
            ("control_faults", "counter", lambda: stats.control_faults),
            ("cache_flushes", "counter", lambda: stats.cache_flushes),
            ("straggler_windows", "counter",
             lambda: stats.straggler_windows),
        ]
