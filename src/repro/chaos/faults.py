"""Fault-schedule configuration (plain data, JSON round-trippable).

Configs are dataclasses of primitives with exact ``to_dict``/``from_dict``
inverses, so a chaos experiment's parameters travel through the sweep
executor's canonical-JSON cache keys unchanged — the same property the
figure experiments rely on for bit-identical reruns.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict


@dataclass(frozen=True)
class WireFaults:
    """Per-crossing wire faults applied at the ToR switch.

    Loss/duplication/reordering are i.i.d. per packet; ``burst_enter`` /
    ``burst_exit`` add a two-state Gilbert-Elliott channel on top for
    correlated loss bursts (every packet during a burst is dropped).
    """

    loss: float = 0.0  # P(drop) per crossing
    reorder: float = 0.0  # P(extra delay) per crossing
    reorder_delay_ns: int = 2_000  # delay a "reordered" packet this much
    duplicate: float = 0.0  # P(deliver twice) per crossing
    burst_enter: float = 0.0  # P(good -> burst) per crossing
    burst_exit: float = 0.5  # P(burst -> good) per crossing
    spare_control: bool = False  # exempt NIC-terminated control packets

    def __post_init__(self):
        for name in ("loss", "reorder", "duplicate", "burst_enter",
                     "burst_exit"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.reorder_delay_ns < 0:
            raise ValueError(
                f"reorder_delay_ns must be >= 0, got {self.reorder_delay_ns}"
            )

    @property
    def active(self) -> bool:
        return (self.loss > 0 or self.reorder > 0 or self.duplicate > 0
                or self.burst_enter > 0)


@dataclass(frozen=True)
class StragglerFault:
    """Periodically slow one core by ``slowdown`` for ``duration_ns``."""

    core_id: int = 0
    slowdown: float = 4.0
    period_ns: int = 200_000  # quiet time between windows
    duration_ns: int = 50_000  # length of each slow window
    windows: int = 0  # 0 = disabled

    def __post_init__(self):
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")
        if self.windows < 0:
            raise ValueError(f"windows must be >= 0, got {self.windows}")
        if self.windows and (self.period_ns < 1 or self.duration_ns < 1):
            raise ValueError("period_ns and duration_ns must be >= 1")


@dataclass(frozen=True)
class CacheThrashFault:
    """Periodically flush the NIC connection caches (all entries)."""

    period_ns: int = 100_000
    flushes: int = 0  # 0 = disabled

    def __post_init__(self):
        if self.flushes < 0:
            raise ValueError(f"flushes must be >= 0, got {self.flushes}")
        if self.flushes and self.period_ns < 1:
            raise ValueError(f"period_ns must be >= 1, got {self.period_ns}")


@dataclass(frozen=True)
class ChaosConfig:
    """One complete seeded fault schedule."""

    seed: int = 1
    wire: WireFaults = field(default_factory=WireFaults)
    #: NIC address -> extra one-way wire delay (ns) for packets *from* it
    #: (a degraded tenant: flaky optics, an oversubscribed uplink, ...).
    degraded_nics: Dict[str, int] = field(default_factory=dict)
    straggler: StragglerFault = field(default_factory=StragglerFault)
    cache_thrash: CacheThrashFault = field(default_factory=CacheThrashFault)

    def __post_init__(self):
        for address, extra_ns in self.degraded_nics.items():
            if extra_ns < 0:
                raise ValueError(
                    f"degraded_nics[{address!r}] must be >= 0, got {extra_ns}"
                )

    def to_dict(self) -> dict:
        data = asdict(self)
        data["degraded_nics"] = dict(sorted(data["degraded_nics"].items()))
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosConfig":
        data = dict(data)
        if "wire" in data:
            data["wire"] = WireFaults(**data["wire"])
        if "straggler" in data:
            data["straggler"] = StragglerFault(**data["straggler"])
        if "cache_thrash" in data:
            data["cache_thrash"] = CacheThrashFault(**data["cache_thrash"])
        return cls(**data)
