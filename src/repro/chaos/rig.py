"""Chaos measurement rig: seeded fault schedules over the reliable stack.

``run_chaos_point`` runs one open-loop echo workload with the reliable
transport + credit flow control enabled and one named fault class active,
and returns a plain-JSON dict: tail latency (p50/p99/p99.9), loss and
recovery accounting, and the host-delivery audit. The dict is exactly
reproducible for a fixed (fault_class, seed, nreq, load) — the chaos CI
gate diffs two runs' canonical JSON byte-for-byte.

The rig tolerates genuinely lost RPCs (``lost_unrecoverable`` after
``max_retries``): a run that deadlocks waiting for them fails the
remaining calls and reports ``lost_rpcs`` instead of crashing.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Optional

from repro.chaos.faults import ChaosConfig
from repro.sim import Exponential, SimulationError
from repro.sim.stats import _check_mode, percentile

#: Named fault schedules (config overrides merged with the run's seed).
#: Rates are chosen to stress recovery hard while staying far from the
#: max_retries give-up horizon, so a healthy transport loses nothing.
FAULT_CLASSES: Dict[str, dict] = {
    "none": {},
    "loss": {"wire": {"loss": 0.02}},
    "burst": {"wire": {"burst_enter": 0.01, "burst_exit": 0.3}},
    "reorder": {"wire": {"reorder": 0.05, "reorder_delay_ns": 3_000}},
    "duplicate": {"wire": {"duplicate": 0.03}},
    "degraded_nic": {"degraded_nics": {"server": 2_000}},
    "straggler": {"straggler": {"core_id": 6, "slowdown": 6.0,
                                "period_ns": 150_000,
                                "duration_ns": 50_000, "windows": 8}},
    "cache_thrash": {"cache_thrash": {"period_ns": 50_000, "flushes": 40}},
}


class HostDeliveryAuditor:
    """Counts per-(connection, peer, seq) host deliveries on a NIC.

    Hooks every RX ring's ``on_get`` (chaining whatever hook — e.g. the
    credit engine's dequeue watcher — is already installed), so any RPC
    the host observes twice is caught regardless of which recovery path
    leaked it. The chaos gate asserts ``duplicates == 0``.
    """

    def __init__(self):
        self.seen: Dict[Any, int] = {}
        self.duplicates = 0
        self.delivered = 0

    def watch(self, nic) -> None:
        for rings in nic.flow_rings:
            self._wrap(rings.rx_ring)

    def _wrap(self, ring) -> None:
        prev = ring.on_get

        def audit(item, _prev=prev):
            if getattr(item, "seq", None) is not None:
                key = (item.connection_id, item.src_address, item.seq)
                count = self.seen.get(key, 0)
                if count:
                    self.duplicates += 1
                self.seen[key] = count + 1
                self.delivered += 1
            if _prev is not None:
                _prev(item)

        ring.on_get = audit


def run_chaos_point(
    fault_class: str = "loss",
    load_mrps: float = 1.0,
    nreq: int = 2_000,
    seed: int = 1,
    rpc_bytes: int = 48,
    batch_size: int = 4,
    hedge_ns: Optional[int] = None,
    mode: str = "exact",
) -> dict:
    """One seeded chaos run; returns a canonical-JSON-able result dict.

    ``mode="sketch"`` streams latencies into a quantile sketch
    (:mod:`repro.obs.sketch`) instead of a list — O(1) memory for huge
    ``nreq`` — and tags the result with a ``"mode"`` key. Exact mode
    emits the historical dict byte-for-byte (no ``"mode"`` key), so the
    chaos determinism gate and previously cached sweep entries are
    untouched.
    """
    _check_mode(mode)
    if fault_class not in FAULT_CLASSES:
        raise ValueError(
            f"unknown fault class {fault_class!r} "
            f"(choose from {sorted(FAULT_CLASSES)})"
        )
    if nreq < 1:
        raise ValueError(f"nreq must be >= 1, got {nreq}")
    if load_mrps <= 0:
        raise ValueError(f"load must be positive, got {load_mrps}")
    from repro.harness.runner import EchoRig  # local: avoid import cycle

    config = ChaosConfig.from_dict(
        dict(FAULT_CLASSES[fault_class], seed=seed)
    )
    rig = EchoRig(
        batch_size=batch_size,
        rpc_bytes=rpc_bytes,
        hard_overrides={"reliable_transport": True, "flow_control": True},
        chaos=config,
    )
    if hedge_ns is not None:
        for client in rig.clients:
            client.hedge_ns = hedge_ns
    auditor = HostDeliveryAuditor()
    auditor.watch(rig.client_stack.nic)
    auditor.watch(rig.server_stack.nic)

    sim = rig.sim
    client = rig.clients[0]
    done = sim.event()
    sketch = None
    if mode == "sketch":
        from repro.obs.sketch import QuantileSketch

        sketch = QuantileSketch()
    latencies = []
    state = {"completed": 0}
    # Distinct stream from the chaos RNG: fault decisions and arrivals must
    # not share draws, or changing the fault class would reshape the load.
    interarrival = Exponential(mean=1000.0 / load_mrps, rng=seed + 7919)

    def issue():
        next_arrival = sim.now
        for _ in range(nreq):
            gap = interarrival.sample_ns()
            next_arrival += gap
            if next_arrival > sim.now:
                yield next_arrival - sim.now
            arrival = next_arrival

            def on_complete(call, arrival=arrival):
                if sketch is not None:
                    sketch.add(call.completed_at - arrival)
                else:
                    latencies.append(call.completed_at - arrival)
                state["completed"] += 1
                if state["completed"] >= nreq and not done.triggered:
                    done.succeed()

            yield from client.call_async(
                "echo", b"x" * min(rpc_bytes, 8), rpc_bytes,
                callback=on_complete,
            )

    sim.spawn(issue())

    def waiter():
        yield done

    handle = sim.spawn(waiter())
    try:
        sim.run_until_done(handle)
    except SimulationError:
        # Some calls are genuinely unrecoverable (sender gave up after
        # max_retries): fail them and drain whatever is still in flight.
        for c in rig.clients:
            c.fail_pending("abandoned under chaos")
        sim.run()

    if sketch is not None and sketch.count:
        p50_us = round(sketch.quantile(50) / 1000.0, 3)
        p99_us = round(sketch.quantile(99) / 1000.0, 3)
        p999_us = round(sketch.quantile(99.9) / 1000.0, 3)
    elif latencies:
        data = sorted(latencies)
        p50_us = round(percentile(data, 50, presorted=True) / 1000.0, 3)
        p99_us = round(percentile(data, 99, presorted=True) / 1000.0, 3)
        p999_us = round(percentile(data, 99.9, presorted=True) / 1000.0, 3)
    else:
        p50_us = p99_us = p999_us = 0.0

    client_nic = rig.client_stack.nic
    server_nic = rig.server_stack.nic
    result = {
        "fault_class": fault_class,
        "seed": seed,
        "nreq": nreq,
        "load_mrps": load_mrps,
        "hedge_ns": hedge_ns,
        "completed": state["completed"],
        "lost_rpcs": nreq - state["completed"],
        "p50_us": p50_us,
        "p99_us": p99_us,
        "p999_us": p999_us,
        "duplicate_host_deliveries": auditor.duplicates,
        "host_deliveries": auditor.delivered,
        "hedges_sent": sum(c.hedges_sent for c in rig.clients),
        "monitor_drops": rig.drops,
        "wire": {
            "forwarded": rig.switch.packets_forwarded,
            "dropped": rig.switch.packets_dropped,
        },
        "chaos": asdict(rig.chaos.stats),
        "transport": {
            "client": asdict(client_nic.transport.stats),
            "server": asdict(server_nic.transport.stats),
        },
        "flow_control": {
            "client": asdict(client_nic.flow_control.stats),
            "server": asdict(server_nic.flow_control.stats),
        },
    }
    if mode != "exact":
        # Tag only non-default modes: the exact dict must stay
        # byte-identical to what the chaos gate and old cache entries hold.
        result["mode"] = mode
    return result
