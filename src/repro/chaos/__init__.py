"""Deterministic fault injection for the Dagger reproduction (`repro.chaos`).

The ROADMAP's chaos-engineering item: a seed-scheduled fault layer that
exercises the recovery paths of the reliable transport and the credit
engine — wire loss/reorder/duplication (plus correlated loss bursts) at
the ToR switch, degraded-NIC tenants, straggler cores, and
connection-cache thrash — with every fault decision drawn from one seeded
RNG so any run is bit-identical reproducible from ``(code, config)``.

See ``docs/robustness.md`` for the fault model and the determinism
contract.
"""

from repro.chaos.faults import (
    CacheThrashFault,
    ChaosConfig,
    StragglerFault,
    WireFaults,
)
from repro.chaos.injector import ChaosInjector, ChaosStats
from repro.chaos.rig import FAULT_CLASSES, HostDeliveryAuditor, run_chaos_point

__all__ = [
    "CacheThrashFault",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosStats",
    "FAULT_CLASSES",
    "HostDeliveryAuditor",
    "StragglerFault",
    "WireFaults",
    "run_chaos_point",
]
