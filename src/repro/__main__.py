"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — show every reproducible experiment with its paper artifact.
- ``run <experiment> [...] [--jobs N] [--no-cache] [--shards N]`` — run
  experiments by id (e.g. ``fig10``, ``table3``, or ``all``) and print
  paper-vs-measured tables; ``--jobs`` fans each experiment's sweep across
  worker processes and repeated runs reuse the content-addressed result
  cache; ``--shards`` runs shard-aware experiments (``mesh``) on N
  parallel event loops (results are bit-identical in every mode — see
  ``repro.harness.sweep`` and ``repro.sim.sharded``).
- ``sweep [--clear]`` — inspect or purge the sweep result cache.
- ``calibration`` — dump the timing-model constants and their anchors.
- ``resources [--flows N] [--connections N] [...]`` — estimate the FPGA
  footprint of a NIC configuration (Table 1's estimator).
- ``trace [--stack S] [--interface I] [...]`` — run a traced echo
  benchmark and print the per-RPC stage breakdown plus the unified
  metrics-registry snapshot (optionally dumping spans as JSON lines);
  ``trace --replay dump.jsonl`` re-renders the breakdown from a previous
  dump (exit code 2 on a missing or corrupt file).
- ``timeline [--chrome-trace out.json] [--interval-ns N] [--report]`` —
  run a telemetry-enabled echo benchmark and print the exact
  per-component utilization table; ``--chrome-trace`` exports a Chrome
  trace-event / Perfetto JSON file (open at https://ui.perfetto.dev);
  ``--report`` sweeps offered load and prints the bottleneck attribution
  at the latency knee; ``--tenants N [--noisy-mrps X] [--steady-mrps Y]``
  runs N echo tenants on one virtualized FPGA (Fig 14) and prints the
  per-tenant utilization table instead.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.harness import experiments
from repro.harness.report import (
    render_bottleneck,
    render_slo_curve,
    render_table,
)

#: experiment id -> (description, runner returning printable text)
_REGISTRY = {}


def _register(exp_id, description):
    def wrap(fn):
        _REGISTRY[exp_id] = (description, fn)
        return fn

    return wrap


@_register("table1", "Table 1: NIC implementation specs")
def _table1(jobs=1, cache=True):
    del jobs, cache  # no sub-runs to fan out
    rows = experiments.table1_resources()
    return render_table(
        ["parameter", "paper", "measured"],
        [(r["parameter"], r["paper"], r["measured"]) for r in rows],
    )


@_register("table3", "Table 3: RTT + per-core Mrps across RPC platforms")
def _table3(jobs=1, cache=True):
    rows = experiments.table3_rpc_platforms(jobs=jobs, cache=cache)
    return render_table(
        ["stack", "paper RTT us", "RTT us", "paper Mrps", "Mrps"],
        [(r["stack"], r["paper_rtt_us"], r["rtt_us"],
          r["paper_mrps"] or "-", r["mrps"] or "-") for r in rows],
    )


@_register("table4", "Table 4: Flight Registration threading models")
def _table4(jobs=1, cache=True):
    rows = experiments.table4_flight(jobs=jobs, cache=cache)
    return render_table(
        ["model", "paper Krps", "Krps", "paper p50", "p50 us"],
        [(r["model"], r["paper_max_krps"], r["max_krps"],
          r["paper_p50_us"], r["p50_us"]) for r in rows],
    )


@_register("fig3", "Fig 3: networking share of tier latency")
def _fig3(jobs=1, cache=True):
    rows = experiments.fig3_breakdown(jobs=jobs, cache=cache)
    return render_table(
        ["load Krps", "tier", "p50 us", "network share"],
        [(r["load_krps"], r["tier"], r["p50_us"],
          "-" if r["network_fraction"] is None
          else f"{r['network_fraction']:.0%}") for r in rows],
    )


@_register("fig4", "Fig 4: RPC size distributions")
def _fig4(jobs=1, cache=True):
    del jobs, cache  # single in-process computation
    result = experiments.fig4_rpc_sizes()
    rows = [(k, v) for k, v in result.items()
            if k not in ("per_tier_median_request", "paper")]
    rows += [(f"median request, {tier}", size)
             for tier, size in result["per_tier_median_request"].items()]
    return render_table(["metric", "value"], rows)


@_register("fig5", "Fig 5: networking/application CPU contention")
def _fig5(jobs=1, cache=True):
    rows = experiments.fig5_interference(jobs=jobs, cache=cache)
    return render_table(
        ["load Krps", "cores", "p99 us"],
        [(r["load_krps"], "shared" if r["shared_cores"] else "separate",
          r["p99_us"]) for r in rows],
    )


@_register("fig10", "Fig 10: CPU-NIC interface comparison")
def _fig10(jobs=1, cache=True):
    rows = experiments.fig10_interfaces(jobs=jobs, cache=cache)
    return render_table(
        ["interface", "B", "paper Mrps", "Mrps", "p50 us", "p99 us"],
        [(r["interface"], r["batch"], r["paper_mrps"], r["mrps"],
          r["p50_us"], r["p99_us"]) for r in rows],
    )


@_register("fig11-load", "Fig 11 (left): latency vs load")
def _fig11_load(jobs=1, cache=True):
    rows = experiments.fig11_latency_load(jobs=jobs, cache=cache)
    return render_table(
        ["config", "offered Mrps", "p50 us", "p99 us"],
        [(r["config"], r["offered_mrps"], r["p50_us"], r["p99_us"])
         for r in rows],
    )


@_register("fig11-bottleneck",
           "Fig 11 (left): first-saturating component at the latency knee")
def _fig11_bottleneck(jobs=1, cache=True):
    result = experiments.fig11_bottleneck(jobs=jobs, cache=cache)
    return render_bottleneck(result["report"])


@_register("fig14-isolation",
           "Fig 14: tenant isolation on a virtualized multi-NIC FPGA")
def _fig14_isolation(jobs=1, cache=True):
    result = experiments.fig14_isolation(jobs=jobs, cache=cache)
    lines = [render_bottleneck(result["report"])]
    lines.append(render_table(
        ["steady tenant", "p99 us (quiet)", "p99 us (noisy)", "drift",
         "isolated"],
        [(r["tenant"], r["p99_us_at_min_noise"], r["p99_us_at_max_noise"],
          f"{r['p99_drift']:+.1%}", "yes" if r["isolated"] else "NO")
         for r in result["isolation"]],
        title=f"Steady-tenant p99 while {result['noisy']} ramps to "
              f"saturation (paper: barely moves)",
    ))
    return "\n\n".join(lines)


@_register("chaos",
           "Chaos: tail latency + recovery invariants per fault class")
def _chaos(jobs=1, cache=True):
    result = experiments.figx_chaos(jobs=jobs, cache=cache)
    return render_table(
        ["fault class", "p50 us", "p99 us", "p99.9 us", "retx", "dup drop",
         "lost", "recovered"],
        [(r["fault_class"], r["p50_us"], r["p99_us"], r["p999_us"],
          r["retransmissions"], r["duplicates_dropped"], r["lost_rpcs"],
          "yes" if r["recovered"] else "NO")
         for r in result["points"]],
        title=f"Seeded fault injection (seed {result['seed']}, "
              f"{result['nreq']} RPCs/class at {result['load_mrps']} Mrps)",
    )


@_register("mesh",
           "Sharded engine: multi-host echo mesh parity across shard counts")
def _mesh(jobs=1, cache=True, shards=None, window_mode=None):
    shard_counts = None if shards is None else sorted({1, shards})
    rows = experiments.mesh_scaling(shard_counts=shard_counts,
                                    jobs=jobs, cache=cache,
                                    window_mode=window_mode or "adaptive")
    return render_table(
        ["shards", "mode", "Mrps", "p50 us", "p99 us", "windows",
         "stretched", "skipped", "events", "parity"],
        [(r["shards"], r["window_mode"], round(r["throughput_mrps"], 3),
          round(r["p50_us"], 3), round(r["p99_us"], 3), r["windows"],
          r["stretched_windows"], r["skipped_shard_rounds"],
          r["events_total"],
          "bit-identical" if r["parity"] else "DIVERGED")
         for r in rows],
        title="4-host full-mesh echo, serial vs sharded "
              "(repro.sim.sharded; signatures must match byte-for-byte)",
    )


@_register("cluster",
           "Rack-scale cluster: SLO attainment under skewed bursty load "
           "with autoscaling")
def _cluster(jobs=1, cache=True):
    deadline_us = 500.0
    rows = experiments.cluster_slo(deadline_us=deadline_us, jobs=jobs,
                                   cache=cache)
    first = rows[0]
    return render_slo_curve(
        rows, deadline_us,
        title=f"{first['app']} on {first['machines']} machines "
              f"({first['policy']} balancing, {first['modulation']} "
              "arrivals, Zipf-skewed sessions)",
    )


@_register("fig11-scale", "Fig 11 (right): thread scalability")
def _fig11_scale(jobs=1, cache=True):
    rows = experiments.fig11_scalability(jobs=jobs, cache=cache)
    return render_table(
        ["threads", "e2e Mrps", "raw UPI Mrps"],
        [(r["threads"], r["e2e_mrps"], r["raw_mrps"]) for r in rows],
    )


@_register("fig12", "Fig 12: memcached + MICA over Dagger")
def _fig12(jobs=1, cache=True):
    rows = experiments.fig12_kvs(jobs=jobs, cache=cache)
    return render_table(
        ["system", "dataset", "p50 us", "p99 us", "thr 50%", "thr 95%"],
        [(r["system"], r["dataset"], r["p50_us"], r["p99_us"],
          r["thr_50get"], r["thr_95get"]) for r in rows],
    )


@_register("fig15", "Fig 15: Flight Registration latency/load curves")
def _fig15(jobs=1, cache=True):
    rows = experiments.fig15_flight_curves(jobs=jobs, cache=cache)
    return render_table(
        ["load Krps", "thr Krps", "p50 us", "p99 us"],
        [(r["load_krps"], r["throughput_krps"], r["p50_us"], r["p99_us"])
         for r in rows],
    )


@_register("sec53", "Section 5.3: raw UPI vs PCIe access latency")
def _sec53(jobs=1, cache=True):
    del jobs, cache  # two fixed-latency probes, not a sweep
    result = experiments.sec53_raw_access()
    return render_table(
        ["interconnect", "paper ns", "measured ns"],
        [("UPI", result["paper_upi_ns"], result["upi_ns"]),
         ("PCIe DMA", result["paper_pcie_ns"], result["pcie_ns"])],
    )


def cmd_list(_args) -> int:
    print(render_table(
        ["experiment", "reproduces"],
        [(exp_id, description)
         for exp_id, (description, _) in sorted(_REGISTRY.items())],
        title="Reproducible experiments (run with: python -m repro run <id>)",
    ))
    return 0


def cmd_run(args) -> int:
    targets = args.experiments
    if "all" in targets:
        targets = sorted(_REGISTRY)
    unknown = [t for t in targets if t not in _REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              "see `python -m repro list`", file=sys.stderr)
        return 2
    shards = getattr(args, "shards", None)
    window_mode = getattr(args, "window_mode", None)
    for target in targets:
        description, runner = _REGISTRY[target]
        print(f"== {target}: {description}")
        started = time.time()
        kwargs = {"jobs": args.jobs, "cache": not args.no_cache}
        # Only shard-aware experiments take the kwarg; forcing it on the
        # others would turn `run all --shards N` into a TypeError.
        parameters = inspect.signature(runner).parameters
        if shards is not None and "shards" in parameters:
            kwargs["shards"] = shards
        if window_mode is not None and "window_mode" in parameters:
            kwargs["window_mode"] = window_mode
        print(runner(**kwargs))
        print(f"   ({time.time() - started:.1f}s)\n")
    return 0


def cmd_trace(args) -> int:
    from repro.harness.report import render_breakdown, render_metrics
    from repro.harness.runner import EchoRig
    from repro.obs import JsonLinesSink, dump_metrics, dump_trace

    if args.replay is not None:
        from repro.obs import TraceFileError, breakdown, load_trace

        try:
            data = load_trace(args.replay)
        except TraceFileError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not data["spans"]:
            print(f"error: no spans in {args.replay} (was the dump written "
                  "with --jsonl from a traced run?)", file=sys.stderr)
            return 2
        print(render_breakdown(
            breakdown(data["spans"], warmup_ns=0),
            title=f"Per-stage latency breakdown (replay of {args.replay}, "
                  f"{len(data['spans'])} spans)",
        ))
        return 0

    try:
        rig = EchoRig(
            stack_name=args.stack,
            interface=args.interface,
            batch_size=args.batch,
            num_threads=args.threads,
            trace=True,
        )
        if args.open_loop_mrps is not None:
            result = rig.open_loop(args.open_loop_mrps, nreq=args.nreq)
        else:
            result = rig.closed_loop(window=args.window, nreq=args.nreq)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(render_breakdown(
        result.breakdown,
        title=f"Per-stage latency breakdown ({args.stack}/{args.interface}, "
              f"{result.count} RPCs, {result.throughput_mrps:.2f} Mrps)",
    ))
    print()
    print(render_metrics(result.metrics))
    if args.jsonl:
        with JsonLinesSink(args.jsonl) as sink:
            emitted = dump_trace(rig.tracer, sink)
            dump_metrics(rig.registry, sink)
        print(f"\nwrote {emitted + 1} records to {args.jsonl}")
    return 0


def cmd_timeline(args) -> int:
    from repro.harness.report import render_utilization
    from repro.harness.runner import EchoRig

    if args.tenants is not None:
        return _timeline_tenants(args)

    if args.report:
        result = experiments.fig11_bottleneck(
            loads_mrps=args.loads, batch_size=args.batch, nreq=args.nreq,
            jobs=args.jobs, cache=not args.no_cache,
        )
        print(render_bottleneck(result["report"]))
        return 0

    try:
        chaos = None
        if args.chaos is not None:
            from repro.chaos import ChaosConfig
            from repro.chaos.rig import FAULT_CLASSES

            if args.chaos not in FAULT_CLASSES:
                raise ValueError(
                    f"unknown fault class {args.chaos!r} "
                    f"(choose from {sorted(FAULT_CLASSES)})"
                )
            chaos = ChaosConfig.from_dict(dict(FAULT_CLASSES[args.chaos],
                                               seed=1))
        rig = EchoRig(
            stack_name=args.stack,
            interface=args.interface,
            batch_size=args.batch,
            num_threads=args.threads,
            trace=args.chrome_trace is not None,
            telemetry=True,
            telemetry_interval_ns=args.interval_ns,
            telemetry_adaptive=args.adaptive,
            chaos=chaos,
            mode=args.mode,
            hard_overrides=({"reliable_transport": True,
                             "flow_control": True}
                            if args.chaos is not None else None),
        )
        if args.open_loop_mrps is not None:
            result = rig.open_loop(args.open_loop_mrps, nreq=args.nreq)
        else:
            result = rig.closed_loop(window=args.window, nreq=args.nreq)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{result.count} RPCs, {result.throughput_mrps:.2f} Mrps, "
          f"p50 {result.p50_us:.2f} us, p99 {result.p99_us:.2f} us, "
          f"{rig.timeline.samples_taken} telemetry samples")
    if args.adaptive:
        tl = rig.timeline
        print(f"adaptive sampler: interval {tl.interval_ns} -> "
              f"{tl.current_interval_ns} ns ({tl.tightenings} tightenings, "
              f"{tl.widenings} widenings)")
    print()
    print(render_utilization(result.utilization))
    if args.anomalies:
        from repro.harness.report import render_anomalies
        from repro.obs import detect_anomalies

        print()
        print(render_anomalies(detect_anomalies(result.timeline)))
    if args.chrome_trace:
        try:
            emitted = rig.export_chrome_trace(args.chrome_trace)
        except OSError as exc:
            print(f"error: cannot write {args.chrome_trace}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"\nwrote {emitted} trace events to {args.chrome_trace} "
              "(open at https://ui.perfetto.dev)")
    return 0


def _timeline_tenants(args) -> int:
    """``timeline --tenants N``: one noisy + N-1 steady tenants (Fig 14)."""
    from repro.harness.report import render_tenant_utilization
    from repro.harness.runner import MultiTenantEchoRig

    try:
        names = [f"t{i}" for i in range(args.tenants)]
        rig = MultiTenantEchoRig(
            tenants=names,
            interface=args.interface,
            batch_size=args.batch,
            telemetry=True,
            telemetry_interval_ns=args.interval_ns,
        )
        loads = {name: (args.noisy_mrps if name == names[0]
                        else args.steady_mrps) for name in names}
        result = rig.open_loop(loads, nreq_total=args.nreq)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_table(
        ["tenant", "offered Mrps", "RPCs", "Mrps", "p50 us", "p99 us",
         "drops"],
        [(tenant, loads[tenant], stats.count, stats.throughput_mrps,
          stats.p50_us, stats.p99_us, stats.drops)
         for tenant, stats in result.per_tenant.items()],
        title=f"Per-tenant echo over one virtualized FPGA "
              f"({names[0]} is the noisy neighbour)",
    ))
    print()
    print(render_tenant_utilization(result.utilization, result.tenant_map))
    if args.anomalies:
        from repro.harness.report import render_anomalies
        from repro.obs import detect_anomalies

        print()
        print(render_anomalies(detect_anomalies(result.timeline)))
    if args.chrome_trace:
        try:
            emitted = rig.export_chrome_trace(args.chrome_trace)
        except OSError as exc:
            print(f"error: cannot write {args.chrome_trace}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"\nwrote {emitted} trace events to {args.chrome_trace} "
              "(one counter process per tenant; open at "
              "https://ui.perfetto.dev)")
    return 0


def cmd_sweep(args) -> int:
    from repro.harness.sweep import cache_info, clear_cache

    if args.clear:
        removed = clear_cache()
        print(f"removed {removed} cached sweep result(s)")
        return 0
    info = cache_info()
    print(render_table(
        ["property", "value"],
        [("directory", info["dir"]),
         ("entries", info["entries"]),
         ("size (KiB)", f"{info['bytes'] / 1024:.1f}")],
        title="Sweep result cache",
    ))
    return 0


def cmd_calibration(_args) -> int:
    from dataclasses import fields

    from repro.hw.calibration import DEFAULT_CALIBRATION

    rows = [(f.name, getattr(DEFAULT_CALIBRATION, f.name))
            for f in fields(DEFAULT_CALIBRATION)]
    print(render_table(["constant", "value"], rows,
                       title="Timing-model calibration (ns unless noted)"))
    return 0


def cmd_resources(args) -> int:
    from repro.hw.nic.config import NicHardConfig
    from repro.hw.nic.resources import estimate_resources, max_nic_instances

    hard = NicHardConfig(
        num_flows=args.flows,
        connection_cache_entries=args.connections,
        hw_reassembly=args.hw_reassembly,
        reliable_transport=args.reliable,
        flow_control=args.flow_control,
        inline_crypto=args.inline_crypto,
    )
    footprint = estimate_resources(hard)
    print(render_table(
        ["resource", "used", "utilization"],
        [("LUTs", footprint.luts, f"{footprint.lut_utilization:.1%}"),
         ("M20K blocks", footprint.m20k_blocks,
          f"{footprint.bram_utilization:.1%}"),
         ("registers", footprint.registers,
          f"{footprint.register_utilization:.1%}")],
        title=f"NIC footprint: {args.flows} flows, "
              f"{args.connections} cached connections",
    ))
    print(f"instances fitting under 50% utilization: "
          f"{max_nic_instances(hard)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Dagger (ASPLOS'21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible experiments")
    run_parser = sub.add_parser("run", help="run experiments by id")
    run_parser.add_argument("experiments", nargs="+",
                            help="experiment ids (or 'all')")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="fan sweep points across N worker "
                                 "processes (results are bit-identical "
                                 "to --jobs 1)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="ignore and do not update the sweep "
                                 "result cache")
    run_parser.add_argument("--shards", type=int, default=None, metavar="N",
                            help="run shard-aware experiments (e.g. 'mesh') "
                                 "with N parallel event-loop workers; "
                                 "results are bit-identical to --shards 1 "
                                 "(see repro.sim.sharded)")
    run_parser.add_argument("--window-mode", dest="window_mode",
                            choices=("fixed", "adaptive"), default=None,
                            help="window policy for shard-aware "
                                 "experiments: 'adaptive' stretches "
                                 "conservative windows past hosts' egress "
                                 "bounds, 'fixed' grants one lookahead per "
                                 "window; payloads are bit-identical "
                                 "either way")
    sweep_parser = sub.add_parser(
        "sweep", help="inspect or purge the sweep result cache"
    )
    sweep_parser.add_argument("--clear", action="store_true",
                              help="delete every cached sweep result")
    sub.add_parser("calibration", help="dump timing-model constants")
    trace_parser = sub.add_parser(
        "trace",
        help="run a traced echo benchmark; print the per-stage breakdown",
    )
    trace_parser.add_argument("--stack", default="dagger")
    trace_parser.add_argument("--interface", default="upi")
    trace_parser.add_argument("--batch", type=int, default=1)
    trace_parser.add_argument("--threads", type=int, default=1)
    trace_parser.add_argument("--window", type=int, default=8,
                              help="closed-loop in-flight window per client")
    trace_parser.add_argument("--nreq", type=int, default=4000)
    trace_parser.add_argument("--open-loop-mrps", type=float, default=None,
                              help="use Poisson open-loop at this load "
                                   "instead of the closed loop")
    trace_parser.add_argument("--jsonl", default=None, metavar="PATH",
                              help="also dump spans + metrics as JSON lines")
    trace_parser.add_argument("--replay", default=None, metavar="PATH",
                              help="re-render the breakdown from a previous "
                                   "--jsonl dump instead of running")
    timeline_parser = sub.add_parser(
        "timeline",
        help="run a telemetry-enabled echo benchmark; print exact "
             "utilization (and optionally export a Perfetto trace)",
    )
    timeline_parser.add_argument("--stack", default="dagger")
    timeline_parser.add_argument("--interface", default="upi")
    timeline_parser.add_argument("--batch", type=int, default=1)
    timeline_parser.add_argument("--threads", type=int, default=1)
    timeline_parser.add_argument("--window", type=int, default=8,
                                 help="closed-loop in-flight window per "
                                      "client")
    timeline_parser.add_argument("--nreq", type=int, default=4000)
    timeline_parser.add_argument("--open-loop-mrps", type=float, default=None,
                                 help="use Poisson open-loop at this load "
                                      "instead of the closed loop")
    timeline_parser.add_argument("--interval-ns", type=int, default=2000,
                                 help="telemetry sampling period in "
                                      "simulated ns")
    timeline_parser.add_argument("--chrome-trace", default=None,
                                 metavar="PATH",
                                 help="export a Chrome trace-event / "
                                      "Perfetto JSON file (open at "
                                      "https://ui.perfetto.dev)")
    timeline_parser.add_argument("--report", action="store_true",
                                 help="sweep offered load and print the "
                                      "bottleneck attribution at the "
                                      "latency knee")
    timeline_parser.add_argument("--loads", type=float, nargs="+",
                                 default=None, metavar="MRPS",
                                 help="offered loads for --report")
    timeline_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                                 help="worker processes for --report")
    timeline_parser.add_argument("--no-cache", action="store_true",
                                 help="ignore the sweep result cache for "
                                      "--report")
    timeline_parser.add_argument("--tenants", type=int, default=None,
                                 metavar="N",
                                 help="multi-tenant mode: run N echo "
                                      "tenants on one virtualized FPGA "
                                      "(t0 is the noisy neighbour) and "
                                      "print per-tenant utilization")
    timeline_parser.add_argument("--noisy-mrps", type=float, default=7.5,
                                 help="offered load of the noisy tenant "
                                      "(with --tenants)")
    timeline_parser.add_argument("--steady-mrps", type=float, default=0.5,
                                 help="offered load of each steady tenant "
                                      "(with --tenants)")
    timeline_parser.add_argument("--anomalies", action="store_true",
                                 help="run the change-point + z-score "
                                      "classifier over the collected "
                                      "timeline and name the culprit "
                                      "component/tenant")
    timeline_parser.add_argument("--chaos", default=None, metavar="CLASS",
                                 help="inject a named fault class "
                                      "(repro.chaos FAULT_CLASSES) so "
                                      "--anomalies has something to find")
    timeline_parser.add_argument("--adaptive", action="store_true",
                                 help="adaptive telemetry sampling: widen "
                                      "the interval on flat stretches, "
                                      "tighten around change points")
    timeline_parser.add_argument("--mode", default="exact",
                                 choices=("exact", "sketch"),
                                 help="latency recording: exact sample "
                                      "list or O(1)-memory quantile "
                                      "sketch")
    resources_parser = sub.add_parser(
        "resources", help="estimate a NIC configuration's FPGA footprint"
    )
    resources_parser.add_argument("--flows", type=int, default=64)
    resources_parser.add_argument("--connections", type=int, default=65_536)
    resources_parser.add_argument("--hw-reassembly", action="store_true")
    resources_parser.add_argument("--reliable", action="store_true")
    resources_parser.add_argument("--flow-control", action="store_true")
    resources_parser.add_argument("--inline-crypto", action="store_true")

    args = parser.parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "calibration": cmd_calibration,
        "resources": cmd_resources,
        "trace": cmd_trace,
        "timeline": cmd_timeline,
        "sweep": cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
