"""Legacy setup shim.

The offline environment has no ``wheel`` package, so editable installs must
go through setuptools' legacy ``develop`` path; this file (plus the absence
of a ``[build-system]`` table in pyproject.toml) enables that.
"""

from setuptools import setup

setup()
