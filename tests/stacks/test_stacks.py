"""Unit/integration tests for the stack layer (Dagger + baselines)."""

import pytest

from repro.hw.nic.config import NicHardConfig
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc import RpcClient, RpcThreadedServer
from repro.rpc.errors import ConnectionError_
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator
from repro.stacks import (
    STACKS,
    DaggerStack,
    ModeledStackParams,
    connect,
    make_stack,
)


def echo(ctx, payload):
    return payload, 48
    yield  # pragma: no cover


def build_rig(stack_name):
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration, loopback=True)
    client_stack = make_stack(stack_name, machine, switch, "client")
    server_stack = make_stack(stack_name, machine, switch, "server")
    server = RpcThreadedServer(sim, machine.calibration)
    server.register_handler("echo", echo)
    server.add_server_thread(server_stack.port(0), machine.thread(6))
    server.start()
    conn = connect(client_stack, 0, server_stack, 0)
    client = RpcClient(client_stack.port(0), machine.thread(0), conn)
    return sim, client, client_stack, server_stack


def rtt_us(stack_name):
    sim, client, *_ = build_rig(stack_name)

    def main():
        call = yield from client.call_async("echo", b"x", 48)
        yield call.event
        return call.latency_ns / 1000.0

    return sim.run_until_done(sim.spawn(main()))


# --------------------------------------------------------------- registry


def test_registry_contains_all_stacks():
    assert set(STACKS) == {
        "dagger", "linux-tcp", "dpdk", "erpc", "fasst-rdma", "ix", "netdimm"
    }


def test_make_stack_unknown():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration)
    with pytest.raises(ValueError, match="unknown stack"):
        make_stack("quic", machine, switch, "x")


@pytest.mark.parametrize("stack_name", sorted(STACKS))
def test_every_stack_completes_an_echo(stack_name):
    assert rtt_us(stack_name) > 0


# ------------------------------------------------------------ RTT ordering


def test_rtt_ordering_matches_table3():
    values = {name: rtt_us(name)
              for name in ("dagger", "erpc", "fasst-rdma", "ix",
                           "linux-tcp")}
    # Dagger and eRPC are neck-and-neck on unloaded RTT (2.1 vs 2.3 us in
    # Table 3); everything else is strictly slower.
    assert values["dagger"] < values["erpc"] * 1.1
    assert values["erpc"] < values["fasst-rdma"]
    assert values["fasst-rdma"] < values["ix"] < values["linux-tcp"]


def test_dagger_rtt_around_2us():
    assert 1.4 < rtt_us("dagger") < 2.8


def test_linux_tcp_rtt_tens_of_us():
    assert 25 < rtt_us("linux-tcp") < 50


# ------------------------------------------------------------- Dagger stack


def test_dagger_port_flow_bounds():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration)
    stack = DaggerStack(machine, switch, "a",
                        hard=NicHardConfig(num_flows=2))
    stack.port(0)
    stack.port(1)
    assert stack.num_ports == 2
    with pytest.raises(ValueError):
        stack.port(2)


def test_dagger_cpu_costs_include_interface_and_reassembly():
    sim = Simulator()
    machine = Machine(sim)
    cal = machine.calibration
    switch = ToRSwitch(sim, cal)
    stack = DaggerStack(machine, switch, "a",
                        hard=NicHardConfig(num_flows=1))
    port = stack.port(0)
    small = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
    big = RpcPacket(RpcKind.REQUEST, 1, "m", b"", 600)
    assert port.cpu_tx_ns(small) == cal.cpu_tx_ns  # UPI adds nothing
    # >1 cache line pays the software reassembly cost (§4.7).
    assert port.cpu_tx_ns(big) > port.cpu_tx_ns(small)
    assert port.cpu_rx_ns(big) > port.cpu_rx_ns(small)


def test_modeled_stack_requires_params():
    from repro.stacks.modeled import ModeledStack

    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration)
    with pytest.raises(ValueError, match="params"):
        ModeledStack(sim, machine.calibration, switch, "x")


def test_modeled_params_validation():
    with pytest.raises(ValueError):
        ModeledStackParams("x", cpu_tx_ns=-1, cpu_rx_ns=0, oneway_ns=0)


def test_modeled_stack_unregistered_connection():
    sim, client, client_stack, _ = build_rig("erpc")
    packet = RpcPacket(RpcKind.REQUEST, 999, "echo", b"", 48)

    def main():
        yield from client_stack.port(0).send(packet)

    with pytest.raises(ConnectionError_):
        sim.run_until_done(sim.spawn(main()))


def test_connect_registers_both_sides():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration)
    a = DaggerStack(machine, switch, "a", hard=NicHardConfig(num_flows=1))
    b = DaggerStack(machine, switch, "b", hard=NicHardConfig(num_flows=1))
    conn = connect(a, 0, b, 0)
    assert a.nic.connection_manager.open_count == 1
    assert b.nic.connection_manager.open_count == 1
    # Connection ids are unique across calls.
    conn2 = connect(b, 0, a, 0)
    assert conn2 != conn


def test_modeled_stack_drop_accounting():
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, machine.calibration, loopback=True)
    client_stack = make_stack("erpc", machine, switch, "client")
    server_stack = make_stack("erpc", machine, switch, "server")
    server_stack.params = ModeledStackParams(
        "erpc", cpu_tx_ns=125, cpu_rx_ns=76, oneway_ns=649,
        rx_ring_entries=1,
    )
    conn = connect(client_stack, 0, server_stack, 0)
    port = client_stack.port(0)
    server_stack.port(0)  # instantiated but never drained

    def main():
        for _ in range(5):
            packet = RpcPacket(RpcKind.REQUEST, conn, "echo", b"", 48)
            yield from port.send(packet)
        yield sim.timeout(100_000)

    sim.run_until_done(sim.spawn(main()))
    assert server_stack.drops == 4  # ring holds 1, rest dropped
