"""Property-based tests for the reliable transport under random pressure.

Whatever the ring size, drain rate, and traffic volume, the NACK/retransmit
protocol must deliver every packet to the host exactly once (or explicitly
account it as unrecoverable), never duplicate, and keep per-connection
sequence numbers dense.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.interconnect.ccip import make_interface
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator

CAL = DEFAULT_CALIBRATION


@given(
    count=st.integers(min_value=1, max_value=60),
    rx_entries=st.integers(min_value=1, max_value=32),
    drain_ns=st.integers(min_value=50, max_value=3000),
    batch=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_reliable_transport_exactly_once(count, rx_entries, drain_ns, batch):
    sim = Simulator()
    machine = Machine(sim)
    switch = ToRSwitch(sim, CAL, loopback=True)
    hard = NicHardConfig(num_flows=1, rx_ring_entries=rx_entries,
                         reliable_transport=True)
    soft = NicSoftConfig(batch_size=batch, auto_batch=True)
    a = DaggerNic(sim, CAL, make_interface("upi", sim, CAL, machine.fpga),
                  switch, "a", hard=hard, soft=soft)
    b = DaggerNic(sim, CAL, make_interface("upi", sim, CAL, machine.fpga),
                  switch, "b", hard=hard, soft=soft)
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")

    packets = [RpcPacket(RpcKind.REQUEST, 1, "m", b"", 48)
               for _ in range(count)]
    drained = []

    def drainer():
        while True:
            pkt = yield b.rx_ring(0).get()
            drained.append(pkt)
            yield sim.timeout(drain_ns)

    def sender():
        for packet in packets:
            yield from a.send_from_host(0, packet)

    sim.spawn(drainer())
    sim.spawn(sender())
    sim.run()

    lost = a.transport.stats.lost_unrecoverable
    # Exactly-once delivery for everything not explicitly given up on.
    assert len(drained) + lost == count
    assert len({p.rpc_id for p in drained}) == len(drained)
    # Sequence numbers are dense 0..count-1 at the sender.
    assert sorted(p.seq for p in packets) == list(range(count))
    # A consumer that keeps draining means nothing should be abandoned
    # unless the retry cap was genuinely exhausted under extreme pressure.
    if rx_entries >= 8 and drain_ns <= 1000:
        assert lost == 0
