"""Property-based tests on NIC invariants: conservation of packets.

Whatever mixture of sizes and batching the NIC is configured with, every
RPC handed to it is either delivered into a host RX ring or counted as a
drop — nothing disappears and nothing is duplicated.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.interconnect.ccip import make_interface
from repro.hw.nic.config import NicHardConfig, NicSoftConfig
from repro.hw.nic.dagger_nic import DaggerNic
from repro.hw.platform import Machine
from repro.hw.switch import ToRSwitch
from repro.rpc.messages import RpcKind, RpcPacket
from repro.sim import Simulator


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=900), min_size=1,
                   max_size=40),
    batch=st.integers(min_value=1, max_value=8),
    auto=st.booleans(),
    rx_entries=st.integers(min_value=1, max_value=64),
    interface_kind=st.sampled_from(["upi", "pcie-doorbell", "pcie-mmio"]),
)
@settings(max_examples=40, deadline=None)
def test_packet_conservation(sizes, batch, auto, rx_entries, interface_kind):
    sim = Simulator()
    machine = Machine(sim)
    cal = DEFAULT_CALIBRATION
    switch = ToRSwitch(sim, cal, loopback=True)
    hard = NicHardConfig(num_flows=1, rx_ring_entries=rx_entries,
                         interface=interface_kind)
    soft = NicSoftConfig(batch_size=batch, auto_batch=auto,
                         batch_timeout_ns=500)
    a = DaggerNic(sim, cal, make_interface(interface_kind, sim, cal,
                                           machine.fpga),
                  switch, "a", hard=hard, soft=soft)
    b = DaggerNic(sim, cal, make_interface(interface_kind, sim, cal,
                                           machine.fpga),
                  switch, "b", hard=hard, soft=soft)
    a.open_connection(1, 0, "b")
    b.open_connection(1, 0, "a")

    packets = [RpcPacket(RpcKind.REQUEST, 1, "m", b"", size)
               for size in sizes]

    def sender():
        for packet in packets:
            yield from a.send_from_host(0, packet)

    sim.spawn(sender())
    sim.run()

    delivered = len(b.rx_ring(0))
    dropped = b.monitor.drops
    assert delivered + dropped == len(packets)
    assert b.monitor.delivered_rpcs == delivered
    # FIFO order preserved among delivered packets.
    delivered_ids = []
    while len(b.rx_ring(0)):
        delivered_ids.append(b.rx_ring(0).try_get().rpc_id)
    sent_ids = [p.rpc_id for p in packets]
    positions = [sent_ids.index(i) for i in delivered_ids]
    assert positions == sorted(positions)
    # Monitors agree across the pair.
    assert a.monitor.tx_rpcs == len(packets)
    assert b.monitor.rx_rpcs == len(packets)
