"""Property-based tests: IDL serialization round-trips for arbitrary
messages and values."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.idl.ast_nodes import SCALAR_TYPES, FieldDef, MessageDef
from repro.rpc.serialization import decode, encode, struct_format

_SCALARS = sorted(t for t in SCALAR_TYPES if t != "char")

_RANGES = {
    "int8": (-2 ** 7, 2 ** 7 - 1),
    "uint8": (0, 2 ** 8 - 1),
    "int16": (-2 ** 15, 2 ** 15 - 1),
    "uint16": (0, 2 ** 16 - 1),
    "int32": (-2 ** 31, 2 ** 31 - 1),
    "uint32": (0, 2 ** 32 - 1),
    "int64": (-2 ** 63, 2 ** 63 - 1),
    "uint64": (0, 2 ** 64 - 1),
}

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def message_defs(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    names = draw(st.lists(_names, min_size=count, max_size=count,
                          unique=True))
    fields = []
    for name in names:
        type_name = draw(st.sampled_from(_SCALARS + ["char"]))
        if type_name == "char":
            fields.append(FieldDef(name, "char",
                                   draw(st.integers(min_value=1,
                                                    max_value=64))))
        else:
            fields.append(FieldDef(name, type_name))
    return MessageDef("Msg", tuple(fields))


@st.composite
def message_with_values(draw):
    message = draw(message_defs())
    values = {}
    for field in message.fields:
        if field.type_name == "char":
            values[field.name] = draw(st.binary(min_size=0,
                                                max_size=field.array_len))
        elif field.type_name in ("float32", "float64"):
            values[field.name] = draw(st.integers(-1000, 1000)) / 4.0
        else:
            low, high = _RANGES[field.type_name]
            values[field.name] = draw(st.integers(low, high))
    return message, values


@given(message_with_values())
@settings(max_examples=120, deadline=None)
def test_encode_decode_roundtrip(message_and_values):
    message, values = message_and_values
    data = encode(message, values)
    assert len(data) == message.byte_size
    decoded = decode(message, data)
    for field in message.fields:
        original = values[field.name]
        if field.type_name == "char":
            assert decoded[field.name] == original.ljust(field.array_len,
                                                         b"\x00")
        else:
            assert decoded[field.name] == original


@given(message_defs())
@settings(max_examples=80, deadline=None)
def test_format_size_consistency(message):
    import struct

    assert struct.calcsize(struct_format(message)) == message.byte_size


@given(message_with_values())
@settings(max_examples=80, deadline=None)
def test_double_roundtrip_is_identity(message_and_values):
    message, values = message_and_values
    once = decode(message, encode(message, values))
    twice = decode(message, encode(message, once))
    assert once == twice
