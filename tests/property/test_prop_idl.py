"""Property-based tests: random IDLs survive print -> parse -> codegen."""

import keyword
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.idl import generate_python, load_idl, parse_idl
from repro.rpc.idl.ast_nodes import (
    SCALAR_TYPES,
    FieldDef,
    IdlFile,
    MessageDef,
    RpcDef,
    ServiceDef,
    format_idl,
)

_SCALARS = sorted(t for t in SCALAR_TYPES if t != "char")


def _identifier(prefix):
    return st.text(alphabet=string.ascii_lowercase, min_size=1,
                   max_size=6).map(lambda s: f"{prefix}_{s}").filter(
        lambda s: not keyword.iskeyword(s)
    )


@st.composite
def idl_files(draw):
    message_count = draw(st.integers(min_value=1, max_value=4))
    message_names = draw(st.lists(
        _identifier("Msg").map(str.title), min_size=message_count,
        max_size=message_count, unique=True,
    ))
    messages = []
    for name in message_names:
        field_count = draw(st.integers(min_value=0, max_value=5))
        field_names = draw(st.lists(_identifier("f"), min_size=field_count,
                                    max_size=field_count, unique=True))
        fields = []
        for field_name in field_names:
            type_name = draw(st.sampled_from(_SCALARS + ["char"]))
            if type_name == "char":
                fields.append(FieldDef(
                    field_name, "char",
                    draw(st.integers(min_value=1, max_value=32)),
                ))
            else:
                fields.append(FieldDef(field_name, type_name))
        messages.append(MessageDef(name, tuple(fields)))
    services = []
    if draw(st.booleans()):
        rpc_count = draw(st.integers(min_value=1, max_value=4))
        rpc_names = draw(st.lists(_identifier("r"), min_size=rpc_count,
                                  max_size=rpc_count, unique=True))
        rpcs = tuple(
            RpcDef(rpc_name,
                   draw(st.sampled_from(message_names)),
                   draw(st.sampled_from(message_names)))
            for rpc_name in rpc_names
        )
        services.append(ServiceDef("Svc", rpcs))
    idl = IdlFile(messages=messages, services=services)
    idl.validate()
    return idl


@given(idl_files())
@settings(max_examples=60, deadline=None)
def test_print_parse_roundtrip(idl):
    printed = format_idl(idl)
    reparsed = parse_idl(printed)
    assert reparsed.messages == idl.messages
    assert reparsed.services == idl.services


@given(idl_files())
@settings(max_examples=40, deadline=None)
def test_generated_code_compiles_and_roundtrips(idl):
    source = generate_python(idl)
    compile(source, "<prop>", "exec")
    namespace = load_idl(format_idl(idl))
    for message in idl.messages:
        cls = namespace[message.name]
        instance = cls()  # defaults
        data = instance.pack()
        assert len(data) == message.byte_size == cls.BYTE_SIZE
        assert cls.unpack(data) == instance
