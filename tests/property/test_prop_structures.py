"""Property-based tests for core data structures against model oracles."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kvs.hashtable import ChainedHashTable
from repro.apps.kvs.mica import MicaServer
from repro.hw.cache import DirectMappedCache
from repro.sim import Zipfian, percentile

_keys = st.binary(min_size=1, max_size=6)
_values = st.binary(min_size=0, max_size=8)


@given(ops=st.lists(
    st.tuples(st.sampled_from(["set", "get", "delete"]), _keys, _values),
    max_size=200,
), buckets=st.integers(min_value=1, max_value=16))
@settings(max_examples=80, deadline=None)
def test_hashtable_matches_dict_model(ops, buckets):
    table = ChainedHashTable(buckets)
    model = {}
    for op, key, value in ops:
        if op == "set":
            table.set(key, value)
            model[key] = value
        elif op == "get":
            assert table.get(key) == model.get(key)
        else:
            assert table.delete(key) == (key in model)
            model.pop(key, None)
    assert len(table) == len(model)
    assert dict(table.items()) == model


@given(ops=st.lists(st.tuples(_keys, _values), max_size=150),
       entries=st.integers(min_value=1, max_value=8))
@settings(max_examples=80, deadline=None)
def test_direct_mapped_cache_never_lies(ops, entries):
    """A hit always returns the last value inserted for that key."""
    cache = DirectMappedCache(entries)
    last_written = {}
    for key, value in ops:
        cache.insert(key, value)
        last_written[key] = value
        hit, got = cache.lookup(key)
        assert hit and got == value  # just-inserted key always hits
    for key in last_written:
        hit, got = cache.lookup(key)
        if hit:
            assert got == last_written[key]
    assert cache.occupancy <= entries


@given(
    pairs=st.lists(st.tuples(_keys, _values), min_size=1, max_size=100,
                   unique_by=lambda kv: kv[0]),
    partitions=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_mica_partitions_form_a_partition(pairs, partitions):
    """Every key lives in exactly one partition — the EREW invariant."""
    server = MicaServer(num_partitions=partitions)
    server.populate(pairs)
    assert server.total_items == len(pairs)
    for key, value in pairs:
        holders = [p.index for p in server.partitions
                   if p.table.get(key) is not None]
        assert holders == [server.owner_of(key)]
        assert server.do_get(key) == value


@given(n=st.integers(min_value=1, max_value=10_000),
       theta=st.floats(min_value=0.5, max_value=1.2),
       seed=st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=60, deadline=None)
def test_zipfian_samples_in_range(n, theta, seed):
    dist = Zipfian(n, theta=theta, rng=seed)
    for _ in range(50):
        assert 0 <= dist.sample() < n
    assert 0.0 <= dist.hot_fraction(n) <= 1.0 + 1e-9


@given(samples=st.lists(st.integers(min_value=0, max_value=10 ** 9),
                        min_size=1, max_size=200),
       pcts=st.lists(st.floats(min_value=0, max_value=100), min_size=2,
                     max_size=10))
@settings(max_examples=80, deadline=None)
def test_percentile_monotone_and_bounded(samples, pcts):
    values = [percentile(samples, p) for p in sorted(pcts)]
    assert values == sorted(values)
    for value in values:
        assert min(samples) <= value <= max(samples)
