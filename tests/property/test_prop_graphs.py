"""Property-based tests: random microservice topologies run to completion.

Generates random tier DAGs (random fanouts, compute times, thread counts,
payload sizes) over the Dagger stack and checks the framework's global
invariants: every request completes or is accounted as a drop, tracing
covers every tier with downstream callers, and latency is at least the
critical-path lower bound of one hop.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.microservices import CallSpec, MethodSpec, ServiceGraph, TierSpec
from repro.sim.distributions import Constant


@st.composite
def topologies(draw):
    """A random layered DAG: layer i only calls layers > i."""
    num_layers = draw(st.integers(min_value=1, max_value=3))
    layers = []
    for layer_index in range(num_layers):
        width = draw(st.integers(min_value=1, max_value=2))
        layers.append([f"t{layer_index}_{i}" for i in range(width)])
    specs = []
    for layer_index, layer in enumerate(layers):
        downstream = [name for later in layers[layer_index + 1:]
                      for name in later]
        for name in layer:
            stages = []
            if downstream:
                fanout = draw(st.lists(st.sampled_from(downstream),
                                       min_size=0, max_size=2,
                                       unique=True))
                if fanout:
                    stages = [[CallSpec(t, payload_bytes=draw(
                        st.integers(min_value=16, max_value=256)))
                        for t in fanout]]
            specs.append(TierSpec(
                name=name,
                methods={"handle": MethodSpec(
                    compute=Constant(draw(st.integers(0, 3000))),
                    stages=stages,
                    response_bytes=draw(st.integers(16, 128)),
                )},
                num_dispatch_threads=draw(st.integers(1, 2)),
            ))
    return specs, layers[0][0]


@given(topologies())
@settings(max_examples=15, deadline=None)
def test_random_topologies_complete(topology):
    specs, entry = topology
    graph = ServiceGraph(stack_name="dagger", seed=7)
    for spec in specs:
        graph.add_tier(spec)
    result = graph.run_load(entry, {"handle": 1.0}, load_krps=20,
                            nreq=120, warmup_ns=0)
    assert result.count + result.drops >= 120
    assert result.drop_rate < 0.05
    # One Dagger hop is ~2 us; any served request is at least that.
    assert result.p50_us > 1.5
    # Every tier with recorded calls has compute samples too.
    for tier in result.tracer.tiers():
        assert result.tracer.breakdown(tier).count > 0
