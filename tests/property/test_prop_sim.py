"""Property-based tests for the simulation kernel and queueing primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000),
                       min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_clock_is_monotone_and_events_fire_at_their_time(delays):
    sim = Simulator()
    observed = []

    def proc(delay):
        yield sim.timeout(delay)
        observed.append((delay, sim.now))

    for delay in delays:
        sim.spawn(proc(delay))
    sim.run()
    assert len(observed) == len(delays)
    for delay, when in observed:
        assert when == delay
    fire_times = [when for _, when in observed]
    assert fire_times == sorted(fire_times)


@given(delays=st.lists(st.integers(min_value=0, max_value=1000),
                       min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_sequential_process_time_is_sum_of_delays(delays):
    sim = Simulator()

    def proc():
        for delay in delays:
            yield sim.timeout(delay)
        return sim.now

    assert sim.run_until_done(sim.spawn(proc())) == sum(delays)


@given(
    service_times=st.lists(st.integers(min_value=1, max_value=500),
                           min_size=1, max_size=25),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_resource_conserves_work(service_times, capacity):
    """Total busy time equals the sum of service times; the makespan is
    bounded between the critical-path and fully-serial extremes."""
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    finish = {}

    def worker(index, service):
        yield resource.request()
        try:
            yield sim.timeout(service)
        finally:
            resource.release()
        finish[index] = sim.now

    for index, service in enumerate(service_times):
        sim.spawn(worker(index, service))
    sim.run()
    makespan = max(finish.values())
    total = sum(service_times)
    assert makespan >= -(-total // capacity) * 0  # non-negative guard
    assert makespan >= max(service_times)
    assert makespan <= total
    assert resource.in_use == 0
    assert resource.queue_length == 0


@given(ops=st.lists(st.sampled_from(["put", "get"]), min_size=1,
                    max_size=200))
@settings(max_examples=60, deadline=None)
def test_store_preserves_fifo_order(ops):
    sim = Simulator()
    store = Store(sim)
    received = []
    puts = sum(1 for op in ops if op == "put")
    gets = min(puts, sum(1 for op in ops if op == "get"))

    def producer():
        sequence = 0
        for op in ops:
            if op == "put":
                yield store.put(sequence)
                sequence += 1
            yield sim.timeout(1)

    def consumer():
        for _ in range(gets):
            item = yield store.get()
            received.append(item)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == list(range(len(received)))
    assert len(received) == gets


@given(capacity=st.integers(min_value=1, max_value=8),
       count=st.integers(min_value=1, max_value=40))
@settings(max_examples=60, deadline=None)
def test_bounded_store_drop_accounting(capacity, count):
    sim = Simulator()
    store = Store(sim, capacity=capacity, reject_when_full=True)
    accepted = sum(1 for _ in range(count) if store.try_put("x"))
    assert accepted == min(capacity, count)
    assert store.drops == count - accepted
    assert len(store) == accepted
