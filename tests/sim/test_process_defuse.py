"""Tests for observed-failure semantics (Process.defuse)."""

import pytest

from repro.sim import Simulator


def test_run_until_done_defuses_failure():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("observed")

    handle = sim.spawn(bad())
    with pytest.raises(ValueError, match="observed"):
        sim.run_until_done(handle)
    # The failure was observed; draining must not re-raise it.
    sim.run()


def test_unobserved_failure_still_raises():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("unobserved")

    sim.spawn(bad())
    with pytest.raises(ValueError, match="unobserved"):
        sim.run()


def test_explicit_defuse():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("defused")

    handle = sim.spawn(bad())
    handle.defuse()
    sim.run()  # no raise
    assert not handle.ok
