"""Unit tests for the seeded distributions."""

import random

import pytest

from repro.sim import Constant, Empirical, Exponential, LogNormal, Uniform, Zipfian


def test_constant():
    dist = Constant(42)
    assert dist.sample() == 42
    assert dist.mean() == 42
    assert dist.sample_ns() == 42


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        Constant(-1)


def test_exponential_mean_converges():
    dist = Exponential(mean=100.0, rng=1)
    samples = [dist.sample() for _ in range(20000)]
    assert sum(samples) / len(samples) == pytest.approx(100.0, rel=0.05)


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        Exponential(0)


def test_uniform_bounds():
    dist = Uniform(10, 20, rng=2)
    for _ in range(1000):
        value = dist.sample()
        assert 10 <= value <= 20
    assert dist.mean() == 15


def test_lognormal_mean_converges():
    dist = LogNormal(mean=500.0, sigma=0.5, rng=3)
    samples = [dist.sample() for _ in range(40000)]
    assert sum(samples) / len(samples) == pytest.approx(500.0, rel=0.05)


def test_lognormal_positive():
    dist = LogNormal(mean=10.0, sigma=1.0, rng=4)
    assert all(dist.sample() > 0 for _ in range(1000))


def test_empirical_respects_weights():
    dist = Empirical([(1, 0.9), (100, 0.1)], rng=5)
    samples = [dist.sample() for _ in range(20000)]
    ones = sum(1 for s in samples if s == 1)
    assert ones / len(samples) == pytest.approx(0.9, abs=0.02)
    assert dist.mean() == pytest.approx(0.9 * 1 + 0.1 * 100)


def test_empirical_rejects_empty_and_bad_weights():
    with pytest.raises(ValueError):
        Empirical([])
    with pytest.raises(ValueError):
        Empirical([(1, -1)])
    with pytest.raises(ValueError):
        Empirical([(1, 0)])


def test_zipfian_rank_zero_is_hottest():
    dist = Zipfian(1000, theta=0.99, rng=6)
    counts = {}
    for _ in range(50000):
        rank = dist.sample()
        assert 0 <= rank < 1000
        counts[rank] = counts.get(rank, 0) + 1
    assert counts[0] == max(counts.values())
    # At theta=0.99 the hottest key draws a noticeable share of traffic.
    assert counts[0] / 50000 > 0.08


def test_zipfian_skew_ordering():
    mild = Zipfian(100000, theta=0.99, rng=7)
    extreme = Zipfian(100000, theta=0.9999, rng=7)
    assert extreme.hot_fraction(100) > mild.hot_fraction(100) * 0.99


def test_zipfian_hot_fraction_monotone():
    dist = Zipfian(10000, theta=0.99, rng=8)
    assert dist.hot_fraction(1) < dist.hot_fraction(10) < dist.hot_fraction(100)
    assert dist.hot_fraction(0) == 0.0


def test_zipfian_large_keyspace_is_memory_compact():
    # 200M keys, as in the paper's MICA dataset; table must stay small.
    dist = Zipfian(200_000_000, theta=0.99, rng=9)
    assert len(dist._cumulative) < Zipfian.HEAD_EXACT + 64
    for _ in range(1000):
        assert 0 <= dist.sample() < 200_000_000


def test_zipfian_single_item():
    dist = Zipfian(1, theta=0.99, rng=10)
    assert dist.sample() == 0


def test_zipfian_rejects_bad_args():
    with pytest.raises(ValueError):
        Zipfian(0)
    with pytest.raises(ValueError):
        Zipfian(10, theta=0)


def test_distributions_are_deterministic_with_seed():
    a = [Exponential(10, rng=11).sample() for _ in range(5)]
    b = [Exponential(10, rng=11).sample() for _ in range(5)]
    assert a == b


def test_shared_rng_instance():
    rng = random.Random(12)
    dist = Uniform(0, 1, rng=rng)
    assert dist.rng is rng
