"""Tests for Store.on_get observation (used by credit flow control)."""

from repro.sim import Simulator, Store


def test_on_get_fires_for_try_get():
    sim = Simulator()
    store = Store(sim)
    seen = []
    store.on_get = seen.append
    store.try_put("a")
    assert store.try_get() == "a"
    assert seen == ["a"]


def test_on_get_fires_for_blocking_get():
    sim = Simulator()
    store = Store(sim)
    seen = []
    store.on_get = seen.append

    def consumer():
        item = yield store.get()
        return item

    def producer():
        yield sim.timeout(5)
        yield store.put("x")

    handle = sim.spawn(consumer())
    sim.spawn(producer())
    assert sim.run_until_done(handle) == "x"
    assert seen == ["x"]


def test_on_get_fires_on_direct_handoff():
    sim = Simulator()
    store = Store(sim)
    seen = []
    store.on_get = seen.append

    def consumer():
        yield store.get()

    sim.spawn(consumer())
    sim.run()
    store.try_put("direct")
    assert seen == ["direct"]


def test_on_get_fires_when_get_unblocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    seen = []
    store.on_get = seen.append

    def producer():
        yield store.put("a")
        yield store.put("b")  # blocks until a consumer drains

    def consumer():
        yield sim.timeout(10)
        first = yield store.get()
        second = yield store.get()
        return first, second

    sim.spawn(producer())
    handle = sim.spawn(consumer())
    assert sim.run_until_done(handle) == ("a", "b")
    assert seen == ["a", "b"]


def test_no_hook_by_default():
    sim = Simulator()
    store = Store(sim)
    store.try_put(1)
    assert store.try_get() == 1  # simply no crash
