"""Unit tests for the DES event loop and processes."""

import pytest

from repro.sim import Interrupt, Simulator, SimulationError


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)
        return sim.now

    handle = sim.spawn(proc())
    assert sim.run_until_done(handle) == 100
    assert sim.now == 100


def test_zero_delay_timeout_runs_same_time():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(0)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def proc(name, delay):
        yield sim.timeout(delay)
        order.append((name, sim.now))

    sim.spawn(proc("a", 10))
    sim.spawn(proc("b", 5))
    sim.spawn(proc("c", 10))
    sim.run()
    assert order == [("b", 5), ("a", 10), ("c", 10)]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(7)
        order.append(tag)

    for tag in range(5):
        sim.spawn(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value_propagates():
    sim = Simulator()

    def inner():
        yield sim.timeout(3)
        return "payload"

    def outer():
        result = yield sim.spawn(inner())
        return result + "!"

    handle = sim.spawn(outer())
    assert sim.run_until_done(handle) == "payload!"


def test_waiting_on_finished_process_resumes_immediately():
    sim = Simulator()

    def inner():
        yield sim.timeout(1)
        return 5

    def outer(child):
        yield sim.timeout(50)  # child finished long ago
        value = yield child
        return value

    child = sim.spawn(inner())
    handle = sim.spawn(outer(child))
    assert sim.run_until_done(handle) == 5
    assert sim.now == 50


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    results = []

    def waiter():
        value = yield gate
        results.append((sim.now, value))

    def opener():
        yield sim.timeout(42)
        gate.succeed("open")

    sim.spawn(waiter())
    sim.spawn(opener())
    sim.run()
    assert results == [(42, "open")]


def test_event_double_trigger_is_error():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    handle = sim.spawn(waiter())
    sim.spawn(failer())
    assert sim.run_until_done(handle) == "caught boom"


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("broken")

    def outer():
        try:
            yield sim.spawn(bad())
        except RuntimeError as exc:
            return str(exc)

    handle = sim.spawn(outer())
    assert sim.run_until_done(handle) == "broken"


def test_unobserved_process_exception_surfaces():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    sim.spawn(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
            log.append("slept full")
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    def interrupter(target):
        yield sim.timeout(10)
        target.interrupt("wake up")

    target = sim.spawn(sleeper())
    sim.spawn(interrupter(target))
    sim.run()
    assert log == [("interrupted", 10, "wake up")]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    handle = sim.spawn(quick())
    sim.run()
    with pytest.raises(SimulationError):
        handle.interrupt()


def test_run_until_leaves_future_events_pending():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(100)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run(until=50)
    assert sim.now == 50
    assert seen == []
    sim.run()
    assert seen == [100]


def test_run_until_past_is_error():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield "not an event"

    handle = sim.spawn(bad())
    with pytest.raises(SimulationError, match="must[\\s\\S]*yield Event"):
        sim.run_until_done(handle)


def test_yield_int_is_timeout_shorthand():
    # ``yield n`` is the fast-path equivalent of ``yield sim.timeout(n)``.
    sim = Simulator()
    times = []

    def sleeper():
        yield 5
        times.append(sim.now)
        yield 0
        times.append(sim.now)
        yield sim.timeout(3)
        times.append(sim.now)

    sim.run_until_done(sim.spawn(sleeper()))
    assert times == [5, 5, 8]


def test_yield_negative_int_fails_process():
    sim = Simulator()

    def bad():
        yield -1

    handle = sim.spawn(bad())
    with pytest.raises(SimulationError, match="negative timeout"):
        sim.run_until_done(handle)


def test_deadlock_detected_by_run_until_done():
    sim = Simulator()
    gate = sim.event()  # never triggered

    def stuck():
        yield gate

    handle = sim.spawn(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_done(handle)


def test_deep_chain_of_immediate_events_no_recursion_error():
    sim = Simulator()

    def proc():
        for _ in range(5000):
            yield sim.timeout(0)
        return sim.now

    handle = sim.spawn(proc())
    assert sim.run_until_done(handle) == 0
