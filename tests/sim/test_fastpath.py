"""Zero-yield fast paths: equivalence with the evented slow path.

Acceptance criteria from ISSUE 5: a contended capacity-1 workload driven
through ``try_*`` must produce the same RPC-level results and the same
exact :class:`Usage` busy/queue integrals as the purely evented build of
the same workload; ``release()`` after a ``try_acquire`` grant must hand
the server to an evented waiter (mixed-mode FIFO fairness); and
``try_put`` on a full ``reject_when_full`` store must count a drop
identically to the evented put.
"""

from repro.sim.kernel import Simulator
from repro.sim.resources import QueueFullError, Resource, Store


def _run_contended_resource(fast: bool):
    """N producers share a capacity-1 resource; return (trace, usage).

    ``fast=True`` drives acquisition through the ``try_acquire or yield``
    idiom, ``fast=False`` through the evented request only. The workload
    is contended from t=0, so the fast path degrades to the slow path
    after the first grant — results must be identical.
    """
    sim = Simulator()
    resource = Resource(sim, capacity=1, name="station")
    usage = resource.enable_usage()
    trace = []

    def worker(wid, think_ns, hold_ns, rounds):
        for r in range(rounds):
            yield think_ns
            if fast:
                if not resource.try_acquire():
                    yield resource.request()
            else:
                yield resource.request()
            trace.append(("start", wid, r, sim.now))
            try:
                yield hold_ns
            finally:
                resource.release()
            trace.append(("end", wid, r, sim.now))

    for wid in range(4):
        sim.spawn(worker(wid, think_ns=3 + wid, hold_ns=7, rounds=5))
    sim.run()
    return trace, (usage.busy_integral(sim.now, resource.in_use),
                   usage.queue_integral(sim.now, resource.queue_length),
                   usage.peak, usage.queue_peak)


def test_contended_resource_fast_path_matches_evented_path():
    fast_trace, fast_usage = _run_contended_resource(fast=True)
    slow_trace, slow_usage = _run_contended_resource(fast=False)
    assert fast_trace == slow_trace
    assert fast_usage == slow_usage


def _run_contended_store(fast: bool):
    """Producers race consumers on a capacity-2 store; return (log, usage)."""
    sim = Simulator()
    store = Store(sim, capacity=2, name="fifo")
    usage = store.enable_usage()
    log = []

    def producer(pid):
        for i in range(6):
            yield 2
            item = (pid, i)
            if fast:
                if not store.try_put(item):
                    yield store.put(item)
            else:
                yield store.put(item)
            log.append(("put", pid, i, sim.now))

    def consumer(cid):
        for _ in range(6):
            yield 5
            if fast:
                item = store.try_get()
                if item is None:
                    item = yield store.get()
            else:
                item = yield store.get()
            log.append(("got", cid, item, sim.now))

    sim.spawn(producer(0))
    sim.spawn(producer(1))
    sim.spawn(consumer(0))
    sim.spawn(consumer(1))
    sim.run()
    return log, (usage.busy_integral(sim.now, len(store)),
                 usage.queue_integral(sim.now, len(store._putters)),
                 store.drops)


def _by_timestamp(log):
    """Group a log into {timestamp: multiset of events}.

    A successful ``try_*`` resolves before events already queued at the
    same timestamp (the documented re-baseline effect), so the fast and
    evented builds may order events differently *within* a timestamp;
    every operation must still happen at the same simulated time.
    """
    grouped = {}
    for event in log:
        grouped.setdefault(event[-1], []).append(event)
    return {t: sorted(events, key=repr) for t, events in grouped.items()}


def test_contended_store_fast_path_matches_evented_path():
    fast_log, fast_usage = _run_contended_store(fast=True)
    slow_log, slow_usage = _run_contended_store(fast=False)
    assert _by_timestamp(fast_log) == _by_timestamp(slow_log)
    # Usage integrals only accrue over dt > 0, so they are exact and
    # invariant to equal-timestamp interleaving.
    assert fast_usage == slow_usage


def test_release_after_try_acquire_hands_off_to_evented_waiter():
    """Mixed-mode FIFO fairness: fast grant, evented waiters, in order."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def fast_holder():
        assert resource.try_acquire()
        order.append(("fast", sim.now))
        yield 10
        resource.release()

    def evented_waiter(wid, delay):
        yield delay
        assert not resource.try_acquire()  # at capacity: fast path refuses
        yield resource.request()
        order.append((wid, sim.now))
        yield 5
        resource.release()

    sim.spawn(fast_holder())
    sim.spawn(evented_waiter("w1", 2))
    sim.spawn(evented_waiter("w2", 3))
    sim.run()
    # The fast grant runs first; release hands the server to the oldest
    # evented waiter, then the next — strict FIFO across both modes.
    assert order == [("fast", 0), ("w1", 10), ("w2", 15)]
    assert resource.in_use == 0
    assert resource.queue_length == 0


def test_try_acquire_refused_then_fallback_queues_fifo():
    """A failed try_acquire falls back behind existing evented waiters."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def holder():
        assert resource.try_acquire()
        yield 10
        resource.release()

    def evented(wid):
        yield 1
        yield resource.request()
        order.append(wid)
        yield 5
        resource.release()

    def mixed(wid):
        yield 2
        if not resource.try_acquire():
            yield resource.request()
        order.append(wid)
        yield 5
        resource.release()

    sim.spawn(holder())
    sim.spawn(evented("evented"))
    sim.spawn(mixed("mixed"))
    sim.run()
    assert order == ["evented", "mixed"]


def test_try_put_drop_parity_with_evented_put_on_reject_store():
    """Same workload, both put styles: identical drop counts and items."""

    def run(fast: bool):
        sim = Simulator()
        store = Store(sim, capacity=1, reject_when_full=True)
        outcomes = []

        def producer():
            for i in range(3):
                if fast:
                    if store.try_put(i):
                        outcomes.append(("ok", i))
                    else:
                        outcomes.append(("dropped", i))
                else:
                    try:
                        yield store.put(i)
                        outcomes.append(("ok", i))
                    except QueueFullError:
                        outcomes.append(("dropped", i))
            yield 1

        sim.spawn(producer())
        sim.run()
        return outcomes, store.drops, list(store._items)

    assert run(fast=True) == run(fast=False)


def test_try_get_admits_blocked_putter():
    """Draining a full store via try_get wakes the oldest blocked putter."""
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        assert store.try_put("a")
        yield store.put("b")  # blocks: store full
        events.append(("b-admitted", sim.now))

    def consumer():
        yield 4
        item = store.try_get()
        events.append(("got", item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert events == [("got", "a", 4), ("b-admitted", 4)]
    assert list(store._items) == ["b"]
