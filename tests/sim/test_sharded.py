"""Sharded conservative-window engine: determinism and boundary order.

Uses a tiny toy topology (hosts that ping each other through a
:class:`~repro.hw.switch.ShardBoundary`) so the engine's contracts can be
checked without the full Dagger stack: serial and sharded runs must be
bit-identical, same-timestamp cross-shard arrivals must commit in
``(arrival_ns, src_host, seq)`` order, and repeated runs at any shard
count must agree byte-for-byte.
"""

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.cluster import partition_hosts
from repro.hw.switch import ShardBoundary
from repro.sim import Simulator
from repro.sim.kernel import SimulationError
from repro.sim.sharded import canonical_json, run_sharded

TOY_BUILDER = "tests.sim.test_sharded:build_toy_host"
BOOM_BUILDER = "tests.sim.test_sharded:build_boom_host"

DELAY_NS = 100


class ToyHost:
    """Minimal shardable host: sends ``sends`` packets to the next host.

    Every host fires at the *same* simulated times (``period_ns`` apart),
    so cross-shard arrivals from different source hosts collide on
    timestamps — exactly the case the canonical commit order must resolve
    deterministically.
    """

    def __init__(self, host_id, hosts=2, sends=3, period_ns=50,
                 delay_ns=DELAY_NS, fan_in=False):
        self.sim = Simulator()
        self.host_id = host_id
        self.hosts = hosts
        self.boundary = ShardBoundary(self.sim, DEFAULT_CALIBRATION,
                                      host_id=host_id, delay_ns=delay_ns)
        self.received = []
        self.boundary.register(f"toy{host_id}", self._ingress)
        self.sim.spawn(self._sender(sends, period_ns, fan_in))

    def _ingress(self, packet):
        self.received.append([self.sim.now, list(packet)])

    def _sender(self, sends, period_ns, fan_in):
        for index in range(sends):
            yield period_ns
            if fan_in:
                dst = 0 if self.host_id != 0 else 1
            else:
                dst = (self.host_id + 1) % self.hosts
            self.boundary.send(f"toy{dst}", (self.host_id, index))

    def finish(self):
        return {"host": self.host_id, "received": self.received,
                "forwarded": self.boundary.packets_forwarded}


def build_toy_host(host_id, **params):
    return ToyHost(host_id, **params)


def build_boom_host(host_id, **params):
    raise RuntimeError(f"boom on host {host_id}")


def toy_run(hosts=3, shards=1, **extra):
    return run_sharded(TOY_BUILDER, hosts, params=dict(hosts=hosts, **extra),
                       shards=shards, lookahead_ns=DELAY_NS)


def run_signature(result):
    """Everything that must not vary with the shard count."""
    return canonical_json({
        "per_host": result.per_host,
        "windows": result.windows,
        "events_per_host": result.events_per_host,
    })


# --------------------------------------------------------- partitioning


def test_partition_hosts_balanced():
    assert partition_hosts(4, 1) == [[0, 1, 2, 3]]
    assert partition_hosts(4, 2) == [[0, 1], [2, 3]]
    assert partition_hosts(4, 3) == [[0, 1], [2], [3]]
    assert partition_hosts(5, 2) == [[0, 1, 2], [3, 4]]
    assert partition_hosts(4, 4) == [[0], [1], [2], [3]]


def test_partition_hosts_validates():
    with pytest.raises(ValueError):
        partition_hosts(0, 1)
    with pytest.raises(ValueError):
        partition_hosts(4, 0)
    with pytest.raises(ValueError):
        partition_hosts(4, 5)


# ------------------------------------------------------ parity contract


def test_serial_and_sharded_bit_identical():
    signatures = {run_signature(toy_run(hosts=3, shards=shards))
                  for shards in (1, 2, 3)}
    assert len(signatures) == 1


def test_sharded_run_to_run_identical():
    first = toy_run(hosts=4, shards=2)
    second = toy_run(hosts=4, shards=2)
    assert run_signature(first) == run_signature(second)


def test_all_packets_delivered():
    result = toy_run(hosts=3, sends=5)
    received = sum(len(host["received"]) for host in result.per_host)
    assert received == 3 * 5
    # Ring topology: host i receives exactly from host i-1.
    for host in result.per_host:
        sources = {src for _t, (src, _idx) in host["received"]}
        assert sources == {(host["host"] - 1) % 3}


def test_events_total_sums_per_host():
    result = toy_run(hosts=3)
    assert result.events_total == sum(result.events_per_host)
    assert result.hosts == 3
    assert result.lookahead_ns == DELAY_NS


# -------------------------------------------- canonical boundary order


def test_same_timestamp_commits_in_src_order():
    # fan_in: hosts 1 and 2 both target host 0 at identical send times, so
    # their packets arrive at host 0 with equal timestamps; the canonical
    # (arrival, src_host, seq) order must commit host 1 before host 2.
    result = run_sharded(
        TOY_BUILDER, 3,
        params=dict(hosts=3, fan_in=True, sends=3),
        shards=3, lookahead_ns=DELAY_NS, record_boundary_log=True,
    )
    host0 = result.per_host[0]
    by_time = {}
    for when, (src, _index) in host0["received"]:
        by_time.setdefault(when, []).append(src)
    assert by_time, "fan-in run delivered nothing to host 0"
    for when, sources in by_time.items():
        assert sources == sorted(sources), (
            f"arrivals at t={when} committed out of src order: {sources}"
        )


def test_boundary_log_is_canonically_ordered_and_stable():
    runs = [
        run_sharded(TOY_BUILDER, 3,
                    params=dict(hosts=3, fan_in=True, sends=3),
                    shards=shards, lookahead_ns=DELAY_NS,
                    record_boundary_log=True)
        for shards in (1, 2, 3, 3)
    ]
    logs = [run.boundary_log for run in runs]
    assert logs[0], "expected cross-shard traffic in the boundary log"
    assert all(log == logs[0] for log in logs[1:])
    # Within a window batch the log is sorted; windows commit in time
    # order, so the whole log is sorted by (arrival, src, seq).
    assert logs[0] == sorted(logs[0])
    # Entries are (arrival_ns, src_host, seq, dst_host) with dst resolved.
    for arrival, src, seq, dst in logs[0]:
        assert dst == 0 or src == 0
        assert arrival >= DELAY_NS
        assert seq >= 0


def test_boundary_log_absent_by_default():
    assert toy_run(hosts=2).boundary_log is None


# ----------------------------------------------------------- validation


def test_lookahead_above_boundary_delay_rejected():
    with pytest.raises(SimulationError, match="below the engine lookahead"):
        run_sharded(TOY_BUILDER, 2, params=dict(hosts=2),
                    lookahead_ns=DELAY_NS + 1)


def test_max_windows_guard():
    with pytest.raises(SimulationError, match="max_windows"):
        run_sharded(TOY_BUILDER, 2, params=dict(hosts=2, sends=50),
                    lookahead_ns=DELAY_NS, max_windows=1)


def test_bad_builder_path_rejected():
    with pytest.raises(ValueError, match="builder path"):
        run_sharded("not-a-path", 2, lookahead_ns=DELAY_NS)


def test_worker_failure_surfaces_traceback():
    with pytest.raises(SimulationError, match="boom on host"):
        run_sharded(BOOM_BUILDER, 2, shards=2, lookahead_ns=DELAY_NS)


def test_builder_failure_in_process():
    with pytest.raises(RuntimeError, match="boom on host 0"):
        run_sharded(BOOM_BUILDER, 2, shards=1, lookahead_ns=DELAY_NS)


# ----------------------------------------------- kernel window primitives


def test_run_horizon_is_exclusive():
    sim = Simulator()
    fired = []
    for when in (10, 20, 30):
        sim.inject(when, lambda when=when: fired.append(when))
    assert sim.run_horizon(30) == 2
    assert fired == [10, 20]
    assert sim.now == 20  # clock at last processed event, not the horizon
    assert sim.peek() == 30
    assert sim.run_horizon(31) == 1
    assert fired == [10, 20, 30]


def test_run_horizon_counts_dispatched_events():
    sim = Simulator()

    def ticker():
        for _ in range(5):
            yield 10

    sim.spawn(ticker())
    # spawn event + 5 timeouts + generator-exit event
    assert sim.run_horizon(1000) == 7


def test_inject_rejects_past():
    sim = Simulator()
    sim.inject(10, lambda: None)
    sim.run_horizon(20)
    with pytest.raises(SimulationError, match="cannot inject"):
        sim.inject(5, lambda: None)


def test_inject_interleaves_in_seq_order():
    sim = Simulator()
    fired = []
    sim.inject(10, lambda: fired.append("first"))
    sim.inject(10, lambda: fired.append("second"))
    sim.run_horizon(11)
    assert fired == ["first", "second"]
