"""Sharded conservative-window engine: determinism and boundary order.

Uses a tiny toy topology (hosts that ping each other through a
:class:`~repro.hw.switch.ShardBoundary`) so the engine's contracts can be
checked without the full Dagger stack: serial and sharded runs must be
bit-identical, same-timestamp cross-shard arrivals must commit in
``(arrival_ns, src_host, seq)`` order, and repeated runs at any shard
count must agree byte-for-byte. The adaptive-horizon tests add hosts with
*exact* egress bounds (they know their own send schedules), so stretched
windows can be checked for both parity and actual window savings; unsound
bounds must be fail-stop.
"""

import random

import pytest

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.cluster import partition_hosts
from repro.hw.switch import ShardBoundary
from repro.sim import Simulator
from repro.sim.kernel import SimulationError
from repro.sim.sharded import EGRESS_NEVER, canonical_json, run_sharded

TOY_BUILDER = "tests.sim.test_sharded:build_toy_host"
BOOM_BUILDER = "tests.sim.test_sharded:build_boom_host"
REPLY_BUILDER = "tests.sim.test_sharded:build_reply_host"

DELAY_NS = 100


class ToyHost:
    """Minimal shardable host: sends ``sends`` packets to the next host.

    Every host fires at the *same* simulated times (``period_ns`` apart),
    so cross-shard arrivals from different source hosts collide on
    timestamps — exactly the case the canonical commit order must resolve
    deterministically.
    """

    def __init__(self, host_id, hosts=2, sends=3, period_ns=50,
                 delay_ns=DELAY_NS, fan_in=False):
        self.sim = Simulator()
        self.host_id = host_id
        self.hosts = hosts
        self.boundary = ShardBoundary(self.sim, DEFAULT_CALIBRATION,
                                      host_id=host_id, delay_ns=delay_ns)
        self.received = []
        self.boundary.register(f"toy{host_id}", self._ingress)
        self.sim.spawn(self._sender(sends, period_ns, fan_in))

    def _ingress(self, packet):
        self.received.append([self.sim.now, list(packet)])

    def _sender(self, sends, period_ns, fan_in):
        for index in range(sends):
            yield period_ns
            if fan_in:
                dst = 0 if self.host_id != 0 else 1
            else:
                dst = (self.host_id + 1) % self.hosts
            self.boundary.send(f"toy{dst}", (self.host_id, index))

    def finish(self):
        return {"host": self.host_id, "received": self.received,
                "forwarded": self.boundary.packets_forwarded}


def build_toy_host(host_id, **params):
    return ToyHost(host_id, **params)


def build_boom_host(host_id, **params):
    raise RuntimeError(f"boom on host {host_id}")


class ReplyToyHost:
    """Request/reply host with an *exact* egress bound.

    Each host fires "init" packets at seeded-random times toward random
    peers; an init arriving at a host triggers a "reply" to its sender
    after ``SERVICE_NS``. Because the host knows its full remaining send
    schedule (upcoming inits + due replies), its ``egress_bound`` is exact
    — the strongest possible estimator, so adaptive runs stretch as far as
    the protocol ever can while staying sound. ``lie=True`` claims
    EGRESS_NEVER regardless, which the coordinator must catch.
    """

    SERVICE_NS = 40

    def __init__(self, host_id, hosts=3, seed=0, quiet=(), early=(),
                 delay_ns=DELAY_NS, lie=False):
        self.sim = Simulator()
        self.host_id = host_id
        self.hosts = hosts
        self.lie = lie
        self.boundary = ShardBoundary(self.sim, DEFAULT_CALIBRATION,
                                      host_id=host_id, delay_ns=delay_ns)
        self.received = []
        self.boundary.register(f"toy{host_id}", self._ingress)
        rng = random.Random((seed << 8) + host_id)
        targets = [h for h in range(hosts)
                   if h != host_id and h not in quiet]
        if host_id in quiet or not targets:
            schedule = []
        else:
            span = 600 if host_id in early else 2000
            schedule = sorted(rng.randrange(1, span)
                              for _ in range(rng.randrange(2, 7)))
        self._upcoming = list(schedule)
        self._reply_due = []
        self.boundary.egress_bound_fn = self._egress_bound
        self.boundary.ingress_floors[f"toy{host_id}"] = self.SERVICE_NS
        if schedule:
            self.sim.spawn(self._sender(schedule, targets, rng))

    def _sender(self, schedule, targets, rng):
        prev = 0
        for when in schedule:
            if when > prev:
                yield when - prev
            prev = when
            dst = rng.choice(targets)
            self.boundary.send(f"toy{dst}", ("init", self.host_id, when))
            self._upcoming.pop(0)

    def _reply(self, src):
        yield self.SERVICE_NS
        self.boundary.send(f"toy{src}", ("reply", self.host_id, self.sim.now))
        self._reply_due.pop(0)

    def _ingress(self, packet):
        self.received.append([self.sim.now, list(packet)])
        if packet[0] == "init":
            due = self.sim.now + self.SERVICE_NS
            # Replies fire in due order (same service time, FIFO arrival),
            # so a sorted insert keeps index 0 the next reply out.
            self._reply_due.append(due)
            self._reply_due.sort()
            self.sim.spawn(self._reply(packet[1]))

    def _egress_bound(self):
        if self.lie:
            return EGRESS_NEVER
        candidates = []
        if self._upcoming:
            candidates.append(self._upcoming[0])
        if self._reply_due:
            candidates.append(self._reply_due[0])
        return min(candidates) if candidates else EGRESS_NEVER

    def finish(self):
        return {"host": self.host_id, "received": self.received,
                "forwarded": self.boundary.packets_forwarded}


def build_reply_host(host_id, **params):
    return ReplyToyHost(host_id, **params)


def toy_run(hosts=3, shards=1, **extra):
    return run_sharded(TOY_BUILDER, hosts, params=dict(hosts=hosts, **extra),
                       shards=shards, lookahead_ns=DELAY_NS)


def run_signature(result):
    """Everything that must not vary with the shard count."""
    return canonical_json({
        "per_host": result.per_host,
        "windows": result.windows,
        "events_per_host": result.events_per_host,
    })


def payload_signature(result):
    """Everything that must not vary with shard count *or* window mode.

    ``windows`` is engine accounting — fixed and adaptive runs legally
    differ there while the simulated payload stays byte-identical.
    """
    return canonical_json({
        "per_host": result.per_host,
        "events_per_host": result.events_per_host,
    })


# --------------------------------------------------------- partitioning


def test_partition_hosts_balanced():
    assert partition_hosts(4, 1) == [[0, 1, 2, 3]]
    assert partition_hosts(4, 2) == [[0, 1], [2, 3]]
    assert partition_hosts(4, 3) == [[0, 1], [2], [3]]
    assert partition_hosts(5, 2) == [[0, 1, 2], [3, 4]]
    assert partition_hosts(4, 4) == [[0], [1], [2], [3]]


def test_partition_hosts_validates():
    with pytest.raises(ValueError):
        partition_hosts(0, 1)
    with pytest.raises(ValueError):
        partition_hosts(4, 0)
    with pytest.raises(ValueError):
        partition_hosts(4, 5)


# ------------------------------------------------------ parity contract


def test_serial_and_sharded_bit_identical():
    signatures = {run_signature(toy_run(hosts=3, shards=shards))
                  for shards in (1, 2, 3)}
    assert len(signatures) == 1


def test_sharded_run_to_run_identical():
    first = toy_run(hosts=4, shards=2)
    second = toy_run(hosts=4, shards=2)
    assert run_signature(first) == run_signature(second)


def test_all_packets_delivered():
    result = toy_run(hosts=3, sends=5)
    received = sum(len(host["received"]) for host in result.per_host)
    assert received == 3 * 5
    # Ring topology: host i receives exactly from host i-1.
    for host in result.per_host:
        sources = {src for _t, (src, _idx) in host["received"]}
        assert sources == {(host["host"] - 1) % 3}


def test_events_total_sums_per_host():
    result = toy_run(hosts=3)
    assert result.events_total == sum(result.events_per_host)
    assert result.hosts == 3
    assert result.lookahead_ns == DELAY_NS


# -------------------------------------------- canonical boundary order


def test_same_timestamp_commits_in_src_order():
    # fan_in: hosts 1 and 2 both target host 0 at identical send times, so
    # their packets arrive at host 0 with equal timestamps; the canonical
    # (arrival, src_host, seq) order must commit host 1 before host 2.
    result = run_sharded(
        TOY_BUILDER, 3,
        params=dict(hosts=3, fan_in=True, sends=3),
        shards=3, lookahead_ns=DELAY_NS, record_boundary_log=True,
    )
    host0 = result.per_host[0]
    by_time = {}
    for when, (src, _index) in host0["received"]:
        by_time.setdefault(when, []).append(src)
    assert by_time, "fan-in run delivered nothing to host 0"
    for when, sources in by_time.items():
        assert sources == sorted(sources), (
            f"arrivals at t={when} committed out of src order: {sources}"
        )


def test_boundary_log_is_canonically_ordered_and_stable():
    runs = [
        run_sharded(TOY_BUILDER, 3,
                    params=dict(hosts=3, fan_in=True, sends=3),
                    shards=shards, lookahead_ns=DELAY_NS,
                    record_boundary_log=True)
        for shards in (1, 2, 3, 3)
    ]
    logs = [run.boundary_log for run in runs]
    assert logs[0], "expected cross-shard traffic in the boundary log"
    assert all(log == logs[0] for log in logs[1:])
    # Within a window batch the log is sorted; windows commit in time
    # order, so the whole log is sorted by (arrival, src, seq).
    assert logs[0] == sorted(logs[0])
    # Entries are (arrival_ns, src_host, seq, dst_host) with dst resolved.
    for arrival, src, seq, dst in logs[0]:
        assert dst == 0 or src == 0
        assert arrival >= DELAY_NS
        assert seq >= 0


def test_boundary_log_absent_by_default():
    assert toy_run(hosts=2).boundary_log is None


# ------------------------------------------------- adaptive horizons


def reply_run(hosts=4, shards=1, window_mode="adaptive", **extra):
    return run_sharded(REPLY_BUILDER, hosts,
                       params=dict(hosts=hosts, **extra),
                       shards=shards, lookahead_ns=DELAY_NS,
                       window_mode=window_mode)


@pytest.mark.parametrize("seed", range(5))
def test_adaptive_matches_fixed_bit_identical(seed):
    # Property: randomized request/reply traffic — including a host that
    # never sends or receives (hosts-1) and one that goes quiet early
    # (host 0) — produces byte-identical results under fixed windows,
    # adaptive windows, and every shard count.
    kw = dict(hosts=4, seed=seed, quiet=(3,), early=(0,))
    runs = [
        reply_run(window_mode="fixed", shards=1, **kw),
        reply_run(window_mode="adaptive", shards=1, **kw),
        reply_run(window_mode="adaptive", shards=2, **kw),
        reply_run(window_mode="adaptive", shards=4, **kw),
        reply_run(window_mode="fixed", shards=2, **kw),
    ]
    signatures = {payload_signature(run) for run in runs}
    assert len(signatures) == 1
    fixed, adaptive = runs[0], runs[1]
    assert adaptive.windows <= fixed.windows
    # The quiet host saw no traffic at all.
    assert runs[1].per_host[3]["received"] == []
    assert runs[1].per_host[3]["forwarded"] == 0


def test_adaptive_stretches_sparse_schedules():
    # Exact bounds + sparse schedules: the adaptive run must collapse the
    # quiet stretches (far fewer windows) while staying bit-identical.
    kw = dict(hosts=3, seed=2)
    fixed = reply_run(window_mode="fixed", **kw)
    adaptive = reply_run(window_mode="adaptive", **kw)
    assert payload_signature(fixed) == payload_signature(adaptive)
    assert adaptive.stretched_windows > 0
    assert adaptive.windows < fixed.windows
    assert fixed.stretched_windows == 0
    assert fixed.window_mode == "fixed"
    assert adaptive.window_mode == "adaptive"


def test_adaptive_accounting_fields():
    result = reply_run(hosts=3, seed=1, shards=2)
    assert result.boundary_packets > 0
    assert result.boundary_bytes > 0
    # In-process runs exchange raw record lists, so bytes stay zero.
    local = reply_run(hosts=3, seed=1, shards=1)
    assert local.boundary_packets > 0
    assert local.boundary_bytes == 0
    assert payload_signature(result) == payload_signature(local)


def test_fixed_mode_skips_idle_shards():
    # hosts 2/3 are quiet: their shard never has work, and the engine must
    # elide its round-trips even in fixed mode.
    result = reply_run(hosts=4, seed=0, quiet=(2, 3), shards=2,
                       window_mode="fixed")
    assert result.skipped_shard_rounds > 0


def test_unsound_egress_bound_is_fail_stop():
    with pytest.raises(SimulationError, match="violated its egress bound"):
        reply_run(hosts=2, seed=0, lie=True)


def test_unsound_bound_in_worker_cleans_up_processes():
    import multiprocessing

    with pytest.raises(SimulationError, match="violated its egress bound"):
        reply_run(hosts=2, seed=0, lie=True, shards=2)
    # The coordinator raised mid-run; no worker may outlive the call.
    for child in multiprocessing.active_children():
        child.join(timeout=5)
        assert not child.is_alive()


def test_invalid_window_mode_rejected():
    with pytest.raises(ValueError, match="window_mode"):
        run_sharded(TOY_BUILDER, 2, params=dict(hosts=2),
                    lookahead_ns=DELAY_NS, window_mode="loose")


# ----------------------------------------------------------- validation


def test_lookahead_above_boundary_delay_rejected():
    with pytest.raises(SimulationError, match="below the engine lookahead"):
        run_sharded(TOY_BUILDER, 2, params=dict(hosts=2),
                    lookahead_ns=DELAY_NS + 1)


def test_max_windows_guard():
    with pytest.raises(SimulationError, match="max_windows"):
        run_sharded(TOY_BUILDER, 2, params=dict(hosts=2, sends=50),
                    lookahead_ns=DELAY_NS, max_windows=1)


def test_bad_builder_path_rejected():
    with pytest.raises(ValueError, match="builder path"):
        run_sharded("not-a-path", 2, lookahead_ns=DELAY_NS)


def test_worker_failure_surfaces_traceback():
    with pytest.raises(SimulationError, match="boom on host"):
        run_sharded(BOOM_BUILDER, 2, shards=2, lookahead_ns=DELAY_NS)


def test_builder_failure_in_process():
    with pytest.raises(RuntimeError, match="boom on host 0"):
        run_sharded(BOOM_BUILDER, 2, shards=1, lookahead_ns=DELAY_NS)


# ----------------------------------------------- kernel window primitives


def test_run_horizon_is_exclusive():
    sim = Simulator()
    fired = []
    for when in (10, 20, 30):
        sim.inject(when, lambda when=when: fired.append(when))
    assert sim.run_horizon(30) == 2
    assert fired == [10, 20]
    assert sim.now == 20  # clock at last processed event, not the horizon
    assert sim.peek() == 30
    assert sim.run_horizon(31) == 1
    assert fired == [10, 20, 30]


def test_run_horizon_counts_dispatched_events():
    sim = Simulator()

    def ticker():
        for _ in range(5):
            yield 10

    sim.spawn(ticker())
    # spawn event + 5 timeouts + generator-exit event
    assert sim.run_horizon(1000) == 7


def test_inject_rejects_past():
    sim = Simulator()
    sim.inject(10, lambda: None)
    sim.run_horizon(20)
    with pytest.raises(SimulationError, match="cannot inject"):
        sim.inject(5, lambda: None)


def test_inject_interleaves_in_seq_order():
    sim = Simulator()
    fired = []
    sim.inject(10, lambda: fired.append("first"))
    sim.inject(10, lambda: fired.append("second"))
    sim.run_horizon(11)
    assert fired == ["first", "second"]


def test_inject_seq_key_orders_before_local_events():
    # A canonical (negative) key fires before every same-timestamp local
    # event, regardless of scheduling order.
    sim = Simulator()
    fired = []

    def local():
        yield 10
        fired.append("local")

    sim.spawn(local())
    sim.inject(10, lambda: fired.append("injected"), seq_key=-1000)
    sim.run_horizon(11)
    assert fired == ["injected", "local"]


def test_inject_seq_key_is_batching_independent():
    # Same records, same keys -> same event order, whether the records
    # were injected in one batch early or one-by-one late.
    def run(inject_plan):
        sim = Simulator()
        fired = []
        for when, key, tag in inject_plan:
            sim.inject(when, lambda tag=tag: fired.append(tag), seq_key=key)
        sim.run_horizon(100)
        return fired

    records = [(50, -10, "a"), (50, -20, "b"), (50, -15, "c")]
    assert run(records) == run(reversed(records)) == ["b", "c", "a"]


def test_run_horizon_none_drains_to_completion():
    sim = Simulator()
    fired = []

    def ticker():
        for _ in range(5):
            yield 1000
        fired.append(sim.now)

    sim.spawn(ticker())
    assert sim.run_horizon(None) == 7
    assert fired == [5000]
    assert sim.peek() is None
