"""Unit tests for statistics helpers."""

import pytest

from repro.sim import LatencyRecorder, SummaryStats, percentile
from repro.sim.stats import merge_recorders


def test_percentile_basics():
    data = list(range(1, 101))
    assert percentile(data, 0) == 1
    assert percentile(data, 100) == 100
    assert percentile(data, 50) == pytest.approx(50.5)


def test_percentile_single_sample():
    assert percentile([7], 99) == 7.0


def test_percentile_interpolates():
    assert percentile([10, 20], 25) == pytest.approx(12.5)


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_summary_stats_fields():
    stats = SummaryStats.from_samples([1000, 2000, 3000, 4000])
    assert stats.count == 4
    assert stats.mean_ns == pytest.approx(2500)
    assert stats.min_ns == 1000
    assert stats.max_ns == 4000
    assert stats.p50_us == pytest.approx(2.5)


def test_summary_stats_empty_raises():
    with pytest.raises(ValueError):
        SummaryStats.from_samples([])


def test_recorder_records_latency():
    recorder = LatencyRecorder()
    recorder.record(100, 300)
    recorder.record(200, 700)
    assert recorder.count == 2
    assert sorted(recorder.samples) == [200, 500]


def test_recorder_warmup_discards():
    recorder = LatencyRecorder(warmup_ns=1000)
    recorder.record(0, 500)  # finishes inside warmup
    recorder.record(900, 1500)
    assert recorder.count == 1
    assert recorder.discarded == 1


def test_recorder_rejects_time_travel():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(100, 50)


def test_recorder_throughput():
    recorder = LatencyRecorder()
    # 11 finishes spaced 100 ns apart -> 10 intervals over 1000 ns = 1e7 rps.
    for i in range(11):
        recorder.record(i * 100, i * 100 + 50)
    assert recorder.throughput_rps() == pytest.approx(1e10 / 1000)
    assert recorder.throughput_mrps() == pytest.approx(10.0)


def test_recorder_throughput_needs_samples():
    recorder = LatencyRecorder()
    recorder.record(0, 10)
    with pytest.raises(ValueError):
        recorder.throughput_rps()


def test_merge_recorders():
    a = LatencyRecorder()
    b = LatencyRecorder()
    a.record(0, 100)
    b.record(50, 250)
    merged = merge_recorders([a, b])
    assert merged.count == 2
    assert merged.first_finish_ns == 100
    assert merged.last_finish_ns == 250
