"""Unit tests for statistics helpers."""

import pytest

from repro.sim import LatencyRecorder, SummaryStats, percentile
from repro.sim.stats import merge_recorders


def test_percentile_basics():
    data = list(range(1, 101))
    assert percentile(data, 0) == 1
    assert percentile(data, 100) == 100
    assert percentile(data, 50) == pytest.approx(50.5)


def test_percentile_single_sample():
    assert percentile([7], 99) == 7.0


def test_percentile_interpolates():
    assert percentile([10, 20], 25) == pytest.approx(12.5)


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_summary_stats_fields():
    stats = SummaryStats.from_samples([1000, 2000, 3000, 4000])
    assert stats.count == 4
    assert stats.mean_ns == pytest.approx(2500)
    assert stats.min_ns == 1000
    assert stats.max_ns == 4000
    assert stats.p50_us == pytest.approx(2.5)


def test_summary_stats_empty_raises():
    with pytest.raises(ValueError):
        SummaryStats.from_samples([])


def test_recorder_records_latency():
    recorder = LatencyRecorder()
    recorder.record(100, 300)
    recorder.record(200, 700)
    assert recorder.count == 2
    assert sorted(recorder.samples) == [200, 500]


def test_recorder_warmup_discards():
    recorder = LatencyRecorder(warmup_ns=1000)
    recorder.record(0, 500)  # finishes inside warmup
    recorder.record(900, 1500)
    assert recorder.count == 1
    assert recorder.discarded == 1


def test_recorder_rejects_time_travel():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(100, 50)


def test_recorder_throughput():
    recorder = LatencyRecorder()
    # 11 finishes spaced 100 ns apart -> 10 intervals over 1000 ns = 1e7 rps.
    for i in range(11):
        recorder.record(i * 100, i * 100 + 50)
    assert recorder.throughput_rps() == pytest.approx(1e10 / 1000)
    assert recorder.throughput_mrps() == pytest.approx(10.0)


def test_recorder_throughput_needs_samples():
    recorder = LatencyRecorder()
    recorder.record(0, 10)
    with pytest.raises(ValueError):
        recorder.throughput_rps()


def test_merge_recorders():
    a = LatencyRecorder()
    b = LatencyRecorder()
    a.record(0, 100)
    b.record(50, 250)
    merged = merge_recorders([a, b])
    assert merged.count == 2
    assert merged.first_finish_ns == 100
    assert merged.last_finish_ns == 250


# ------------------------------------------------- SummaryStats.merge


def test_merge_equals_whole():
    # The sharded harness contract: merging per-shard summaries must be
    # *exactly* from_samples over the concatenation — same sorted order,
    # same left-to-right float summation — not merely approximately equal.
    parts_samples = [[300, 100, 900], [250, 250], [700, 50, 50, 1100]]
    parts = [SummaryStats.from_samples(s, keep_samples=True)
             for s in parts_samples]
    merged = SummaryStats.merge(parts)
    whole = SummaryStats.from_samples(
        [x for s in parts_samples for x in s], keep_samples=True)
    assert merged == whole
    assert merged.samples == whole.samples


def test_merge_floats_bit_exact():
    # Floats whose sum depends on addition order: sorted-order summation
    # must match from_samples exactly.
    parts_samples = [[0.1, 1e16], [0.2, 0.3, 1e-7]]
    parts = [SummaryStats.from_samples(s, keep_samples=True)
             for s in parts_samples]
    whole = SummaryStats.from_samples(
        [x for s in parts_samples for x in s])
    assert SummaryStats.merge(parts).mean_ns == whole.mean_ns


def test_merge_single_part_is_identity():
    part = SummaryStats.from_samples([10, 20, 30], keep_samples=True)
    assert SummaryStats.merge([part]) == part


def test_merge_composes():
    # The merged summary retains its samples, so merges can be nested.
    a = SummaryStats.from_samples([1, 4], keep_samples=True)
    b = SummaryStats.from_samples([2, 5], keep_samples=True)
    c = SummaryStats.from_samples([3, 6], keep_samples=True)
    nested = SummaryStats.merge([SummaryStats.merge([a, b]), c])
    flat = SummaryStats.from_samples([1, 2, 3, 4, 5, 6])
    assert nested.count == flat.count
    assert nested.p99_ns == flat.p99_ns
    assert nested.samples == (1, 2, 3, 4, 5, 6)


def test_merge_requires_kept_samples():
    with_samples = SummaryStats.from_samples([1, 2], keep_samples=True)
    without = SummaryStats.from_samples([1, 2])
    assert without.samples is None
    with pytest.raises(ValueError, match="keep_samples"):
        SummaryStats.merge([with_samples, without])


def test_merge_empty_raises():
    with pytest.raises(ValueError, match="no summaries"):
        SummaryStats.merge([])


def test_samples_attribute_is_not_a_field():
    # keep_samples must not change equality, repr, or serialized shape —
    # result signatures embed asdict(SummaryStats) and must stay stable.
    from dataclasses import asdict

    kept = SummaryStats.from_samples([1, 2, 3], keep_samples=True)
    plain = SummaryStats.from_samples([1, 2, 3])
    assert kept == plain
    assert "samples" not in asdict(kept)
    assert repr(kept) == repr(plain)


def test_recorder_summary_keep_samples_passthrough():
    recorder = LatencyRecorder()
    recorder.record(0, 100)
    recorder.record(0, 300)
    assert recorder.summary().samples is None
    assert recorder.summary(keep_samples=True).samples == (100, 300)


# ------------------------------------------------- sketch-mode recording


def _sketch_recorder(latencies, **kwargs):
    recorder = LatencyRecorder(mode="sketch", **kwargs)
    for i, latency in enumerate(latencies):
        recorder.record(i * 10, i * 10 + latency)
    return recorder


def test_sketch_mode_keeps_no_samples():
    recorder = _sketch_recorder(range(1, 10_001))
    assert recorder.count == 10_000
    assert recorder.tracked_samples == 0
    assert recorder.samples == []
    # Memory observable: buckets, not samples, bound the footprint.
    assert recorder.sketch.bucket_count < 1200


def test_exact_mode_tracked_samples_equals_count():
    recorder = LatencyRecorder()
    recorder.record(0, 100)
    recorder.record(0, 300)
    assert recorder.tracked_samples == recorder.count == 2


def test_sketch_summary_within_accuracy_of_exact():
    latencies = [100 + 7 * i for i in range(101)]  # integral pct ranks
    sketched = _sketch_recorder(latencies).summary()
    exact = SummaryStats.from_samples(latencies)
    assert sketched.count == exact.count
    assert sketched.mean_ns == pytest.approx(exact.mean_ns)
    assert sketched.min_ns == exact.min_ns
    assert sketched.max_ns == exact.max_ns
    for attr in ("p50_ns", "p90_ns", "p99_ns"):
        assert getattr(sketched, attr) == pytest.approx(
            getattr(exact, attr), rel=0.01)


def test_from_sketch_merge_without_samples():
    # The whole point of sketch mode: SummaryStats.merge works across
    # shards with no retained samples anywhere.
    parts = [_sketch_recorder([100, 200, 300]).summary(),
             _sketch_recorder([150, 250]).summary()]
    assert all(part.samples is None for part in parts)
    merged = SummaryStats.merge(parts)
    assert merged.count == 5
    assert merged.min_ns == 100
    assert merged.max_ns == 300
    assert merged.sketch is not None  # merges compose


def test_merge_rejects_mixed_backings():
    sketched = _sketch_recorder([100, 200]).summary()
    exact = SummaryStats.from_samples([100, 200], keep_samples=True)
    with pytest.raises(ValueError, match="sketch-backed"):
        SummaryStats.merge([sketched, exact])


def test_sketch_recorder_extend_and_mode_mismatch():
    a = _sketch_recorder([100, 200])
    b = _sketch_recorder([300])
    a.extend(b)
    assert a.count == 3
    with pytest.raises(ValueError, match="different mode"):
        a.extend(LatencyRecorder())
    with pytest.raises(ValueError, match="different mode"):
        LatencyRecorder().extend(_sketch_recorder([1]))


def test_merge_recorders_adopts_sketch_mode():
    merged = merge_recorders([_sketch_recorder([100], sketch_accuracy=0.02),
                              _sketch_recorder([200], sketch_accuracy=0.02)])
    assert merged.sketch is not None
    assert merged.sketch.relative_accuracy == 0.02
    assert merged.count == 2
    assert merged.tracked_samples == 0


def test_sketch_mode_validation():
    with pytest.raises(ValueError, match="mode"):
        LatencyRecorder(mode="approximate")
    with pytest.raises(ValueError, match="sketch_accuracy"):
        LatencyRecorder(sketch_accuracy=0.01)  # exact mode
    with pytest.raises(ValueError, match="keep_samples"):
        _sketch_recorder([100]).summary(keep_samples=True)


def test_sketch_mode_warmup_and_throughput_unchanged():
    recorder = LatencyRecorder(warmup_ns=1000, mode="sketch")
    recorder.record(0, 500)  # inside warmup
    for i in range(11):
        recorder.record(1000 + i * 100, 1000 + i * 100 + 50)
    assert recorder.discarded == 1
    assert recorder.count == 11
    assert recorder.throughput_mrps() == pytest.approx(10.0)
