"""Regression test: stepping an empty heap raises SimulationError, not a
bare IndexError leaked from heapq."""

import pytest

from repro.sim import SimulationError, Simulator


def test_step_on_empty_heap_raises_simulation_error():
    sim = Simulator()
    with pytest.raises(SimulationError, match="no scheduled events"):
        sim.step()


def test_step_on_drained_heap_raises_simulation_error():
    sim = Simulator()
    sim.timeout(5)
    sim.step()
    assert sim.now == 5
    with pytest.raises(SimulationError):
        sim.step()


def test_error_is_not_a_bare_index_error():
    sim = Simulator()
    try:
        sim.step()
    except SimulationError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected SimulationError")
