"""Event-pool unit tests: recycling must never leak state between uses.

The kernel recycles Timeout and internal control events through free lists
(see the hot-path notes in ``repro.sim.kernel``). These tests pin the pool
contract: recycled events come back clean (no stale callbacks, values, or
trigger state), ``sim.event()`` handles are never pooled, and the pools
stay bounded.
"""

import pytest

from repro.sim.kernel import _NO_POOL, _POOL_CAP, Simulator, Timeout


def drain(sim):
    sim.run()


class TestTimeoutPool:
    def test_timeout_object_is_reused(self):
        sim = Simulator()
        first = {}

        def once():
            first["timeout"] = sim.timeout(5)
            yield first["timeout"]

        drain(sim.spawn(once()) and sim)
        assert sim._timeout_free, "fired timeout was not recycled"

        second = {}

        def again():
            second["timeout"] = sim.timeout(3)
            yield second["timeout"]

        sim.spawn(again())
        drain(sim)
        assert second["timeout"] is first["timeout"]

    def test_recycled_timeout_comes_back_clean(self):
        sim = Simulator()

        def use(value):
            yield sim.timeout(2, value=value)

        sim.spawn(use("stale-value"))
        drain(sim)
        [timeout] = sim._timeout_free
        assert timeout.triggered is False
        assert timeout.value is None
        assert timeout._exception is None
        assert timeout.callbacks == []

    def test_reused_timeout_delivers_fresh_value(self):
        sim = Simulator()
        seen = []

        def use(value):
            got = yield sim.timeout(1, value=value)
            seen.append(got)

        sim.spawn(use("a"))
        drain(sim)
        sim.spawn(use("b"))
        drain(sim)
        assert seen == ["a", "b"]

    def test_negative_delay_rejected_on_pooled_path(self):
        sim = Simulator()

        def use():
            yield sim.timeout(1)

        sim.spawn(use())
        drain(sim)
        assert sim._timeout_free  # next timeout() takes the pooled branch
        with pytest.raises(Exception):
            sim.timeout(-1)

    def test_fresh_and_pooled_timeouts_fire_identically(self):
        def workload(sim, log):
            def ticker(tag):
                for i in range(4):
                    yield sim.timeout(3)
                    log.append((sim.now, tag, i))

            sim.spawn(ticker("x"))
            sim.spawn(ticker("y"))
            sim.run()

        cold_log = []
        workload(Simulator(), cold_log)

        warm_sim = Simulator()

        def prime():
            yield warm_sim.timeout(1)

        warm_sim.spawn(prime())  # populate the pool
        warm_sim.run()
        warm_log = []

        def rebase(entries, t0):
            return [(t - t0, tag, i) for t, tag, i in entries]

        t0 = warm_sim.now
        workload(warm_sim, warm_log)
        assert rebase(warm_log, t0) == cold_log


class TestControlPool:
    def test_spawn_control_events_are_recycled(self):
        sim = Simulator()

        def noop():
            return
            yield

        for _ in range(3):
            sim.spawn(noop())
        drain(sim)
        assert sim._control_free, "spawn kick-off events were not recycled"
        for event in sim._control_free:
            assert event.triggered is False
            assert event.value is None
            assert event.callbacks == []


class TestUserEventsNeverPooled:
    def test_sim_event_is_not_recycled(self):
        sim = Simulator()
        gate = sim.event()
        assert gate._recyclable == _NO_POOL

        def waiter():
            got = yield gate
            assert got == "payload"

        def firer():
            yield sim.timeout(2)
            gate.succeed("payload")

        sim.spawn(waiter())
        sim.spawn(firer())
        drain(sim)
        # The handle stays inspectable after its callbacks ran — that is
        # the whole point of not pooling it.
        assert gate.triggered is True
        assert gate.value == "payload"
        assert gate not in sim._timeout_free
        assert gate not in sim._control_free

    def test_explicit_timeout_construction_still_works(self):
        sim = Simulator()
        got = []

        def use():
            got.append((yield Timeout(sim, 7, value="direct")))

        sim.spawn(use())
        drain(sim)
        assert got == ["direct"]
        assert sim.now == 7


class TestPoolBounds:
    def test_pool_never_exceeds_cap(self):
        sim = Simulator()
        n = _POOL_CAP + 64

        def one_shot():
            yield 1

        for _ in range(n):
            sim.spawn(one_shot())
        drain(sim)
        assert len(sim._timeout_free) <= _POOL_CAP
        assert len(sim._control_free) <= _POOL_CAP

    def test_heavy_reuse_stays_deterministic(self):
        def run_once():
            sim = Simulator()
            log = []

            def worker(wid):
                for i in range(50):
                    yield sim.timeout(1 + (wid + i) % 3)
                    log.append((sim.now, wid, i))

            for wid in range(8):
                sim.spawn(worker(wid))
            sim.run()
            return log

        assert run_once() == run_once()
