"""Unit tests for Resource and Store queueing primitives."""

import pytest

from repro.sim import QueueFullError, Resource, Simulator, SimulationError, Store


# ---------------------------------------------------------------- Resource


def test_resource_serializes_exclusive_access():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    finish_times = []

    def worker():
        yield from resource.use(10)
        finish_times.append(sim.now)

    for _ in range(3):
        sim.spawn(worker())
    sim.run()
    assert finish_times == [10, 20, 30]


def test_resource_parallel_servers():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    finish_times = []

    def worker():
        yield from resource.use(10)
        finish_times.append(sim.now)

    for _ in range(4):
        sim.spawn(worker())
    sim.run()
    assert finish_times == [10, 10, 20, 20]


def test_resource_fifo_grant_order():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def worker(tag, arrival):
        yield sim.timeout(arrival)
        yield resource.request()
        order.append(tag)
        yield sim.timeout(5)
        resource.release()

    sim.spawn(worker("late", 2))
    sim.spawn(worker("early", 1))
    sim.spawn(worker("first", 0))
    sim.run()
    assert order == ["first", "early", "late"]


def test_resource_release_idle_is_error():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_counts():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def holder():
        yield resource.request()
        yield sim.timeout(100)
        resource.release()

    def prober():
        yield sim.timeout(10)
        assert resource.in_use == 1
        assert resource.queue_length == 1

    sim.spawn(holder())
    sim.spawn(holder())
    sim.spawn(prober())
    sim.run()
    assert resource.in_use == 0


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# ------------------------------------------------------------------- Store


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got_at = []

    def consumer():
        item = yield store.get()
        got_at.append((sim.now, item))

    def producer():
        yield sim.timeout(30)
        yield store.put("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got_at == [(30, "x")]


def test_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer():
        yield store.put("a")
        timeline.append(("put-a", sim.now))
        yield store.put("b")  # blocks until consumer drains
        timeline.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(20)
        item = yield store.get()
        timeline.append(("got", item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("put-a", 0) in timeline
    assert ("got", "a", 20) in timeline
    assert ("put-b", 20) in timeline


def test_store_reject_when_full_counts_drops():
    sim = Simulator()
    store = Store(sim, capacity=1, reject_when_full=True)
    outcomes = []

    def producer():
        yield store.put(1)
        try:
            yield store.put(2)
        except QueueFullError:
            outcomes.append("dropped")

    sim.spawn(producer())
    sim.run()
    assert outcomes == ["dropped"]
    assert store.drops == 1


def test_store_try_put_try_get():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put("a")
    assert store.try_put("b")
    # A full *blocking* store refuses without counting a drop: the caller
    # falls back to the evented put and blocks, nothing was lost.
    assert not store.try_put("c")
    assert store.drops == 0
    assert store.try_get() == "a"
    assert store.try_get() == "b"
    assert store.try_get() is None


def test_store_try_put_full_reject_store_counts_drop():
    sim = Simulator()
    store = Store(sim, capacity=1, reject_when_full=True)
    assert store.try_put("a")
    assert not store.try_put("b")
    # Same accounting as the evented put failing with QueueFullError.
    assert store.drops == 1


def test_store_direct_handoff_to_waiting_getter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(5)
        assert store.try_put("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(5, "x")]
    assert len(store) == 0


def test_store_blocked_putter_admitted_in_order():
    sim = Simulator()
    store = Store(sim, capacity=1)
    drained = []

    def producer(tag):
        yield store.put(tag)

    def consumer():
        yield sim.timeout(10)
        for _ in range(3):
            item = yield store.get()
            drained.append(item)

    sim.spawn(producer("a"))
    sim.spawn(producer("b"))
    sim.spawn(producer("c"))
    sim.spawn(consumer())
    sim.run()
    assert drained == ["a", "b", "c"]


def test_store_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)
