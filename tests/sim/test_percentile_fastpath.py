"""Regression tests: the presorted percentile fast path returns exactly the
same values as the sorting path, and SummaryStats still matches direct
percentile calls (the reporting hot path used to sort 4 times per summary).
"""

import random

from repro.sim import SummaryStats, percentile


def test_presorted_matches_unsorted_exactly():
    rng = random.Random(42)
    samples = [rng.uniform(0, 1e6) for _ in range(997)]
    data = sorted(samples)
    for pct in (0, 1, 25, 50, 90, 99, 99.9, 100):
        assert percentile(samples, pct) == percentile(data, pct,
                                                      presorted=True)


def test_summary_stats_values_unchanged_under_fast_path():
    rng = random.Random(7)
    samples = [rng.expovariate(1 / 2000.0) for _ in range(500)]
    stats = SummaryStats.from_samples(samples)
    assert stats.p50_ns == percentile(samples, 50)
    assert stats.p90_ns == percentile(samples, 90)
    assert stats.p99_ns == percentile(samples, 99)
    assert stats.min_ns == min(samples)
    assert stats.max_ns == max(samples)
    assert stats.count == 500


def test_single_sample_and_interpolation_edges():
    assert percentile([5.0], 99, presorted=True) == 5.0
    assert percentile([1.0, 2.0], 50, presorted=True) == 1.5
    assert percentile([1.0, 2.0, 3.0], 100, presorted=True) == 3.0
