"""Additional kernel coverage: peek, Event.ok, process naming, fail API."""

import pytest

from repro.sim import Simulator, SimulationError


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(25)
    sim.timeout(10)
    assert sim.peek() == 10


def test_event_ok_semantics():
    sim = Simulator()
    good = sim.event()
    assert not good.ok
    good.succeed()
    assert good.ok
    bad = sim.event()
    bad.fail(RuntimeError("x"))
    assert bad.triggered and not bad.ok
    # The failure is consumed by this check; drain without waiters raising
    # would be wrong here, so attach a swallow callback.
    bad.callbacks.append(lambda e: None)
    good.callbacks.append(lambda e: None)
    sim.run()


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_process_name_defaults_to_generator_name():
    sim = Simulator()

    def my_proc():
        yield sim.timeout(1)

    handle = sim.spawn(my_proc())
    assert handle.name == "my_proc"
    assert handle.is_alive
    sim.run()
    assert not handle.is_alive


def test_run_until_done_propagates_failure():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise KeyError("boom")

    handle = sim.spawn(bad())
    with pytest.raises(KeyError):
        sim.run_until_done(handle)


def test_timeout_carries_value():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(5, value="payload")
        return value

    assert sim.run_until_done(sim.spawn(proc())) == "payload"


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        event.succeed(delay=-1)
