"""Exact busy-time accounting on Resource and Store (ISSUE 3 tentpole).

The Usage integrals are *accounting*, not sampling: every mutation site
advances the integral with the pre-mutation state, so busy time is exact
regardless of when (or whether) anyone looks at it.
"""

import pytest

from repro.sim import Simulator, Usage
from repro.sim.resources import Resource, Store


def test_usage_advance_integrates_pre_mutation_state():
    usage = Usage(0)
    usage.advance(10, 1)     # value 1 held over [0, 10)
    usage.advance(15, 3, 2)  # value 3, queue 2 held over [10, 15)
    assert usage.busy_ns == 10 * 1 + 5 * 3
    assert usage.queue_ns == 5 * 2
    assert usage.peak == 3
    assert usage.queue_peak == 2


def test_usage_open_interval_and_utilization():
    usage = Usage(100)
    usage.advance(200, 2)
    assert usage.busy_integral(250, 1) == 100 * 2 + 50 * 1
    assert usage.queue_integral(250, 4) == 50 * 4
    # [100,200) at value 2, [200,350) at value 1, over capacity 2.
    assert usage.utilization(350, 1, capacity=2) == pytest.approx(
        (100 * 2 + 150 * 1) / (250 * 2))


def test_usage_zero_span_utilization_is_zero():
    assert Usage(5).utilization(5, 1) == 0.0


def test_resource_usage_exact_busy_time():
    sim = Simulator()
    resource = Resource(sim, capacity=1, name="r")
    resource.enable_usage()

    def worker(hold_ns):
        yield from resource.use(hold_ns)

    sim.spawn(worker(100))
    sim.spawn(worker(50))  # queued behind the first
    sim.run()
    # Busy 150 ns of the 150 ns span; second worker waited 100 ns.
    assert resource.usage.busy_integral(sim.now, resource.in_use) == 150
    assert resource.utilization() == pytest.approx(1.0)
    assert resource.usage.queue_ns == 100
    assert resource.usage.queue_peak == 1


def test_resource_usage_idle_gap_counted():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.enable_usage()

    def worker():
        yield sim.timeout(60)  # idle 60 ns first
        yield from resource.use(40)

    sim.spawn(worker())
    sim.run()
    assert sim.now == 100
    assert resource.usage.busy_integral(sim.now, resource.in_use) == 40
    assert resource.utilization() == pytest.approx(0.4)


def test_resource_usage_disabled_by_default():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    assert resource.usage is None
    assert resource.utilization() == 0.0
    usage = resource.enable_usage()
    assert resource.enable_usage() is usage  # idempotent


def test_store_usage_integrates_depth():
    sim = Simulator()
    store = Store(sim, name="q")
    store.enable_usage()

    def producer():
        yield store.put("a")        # depth 0 -> 1 at t=0
        yield sim.timeout(30)
        yield store.put("b")        # depth 1 -> 2 at t=30

    def consumer():
        yield sim.timeout(100)
        yield store.get()           # depth 2 -> 1 at t=100
        yield sim.timeout(20)
        yield store.get()           # depth 1 -> 0 at t=120

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    # item-ns: 30*1 + 70*2 + 20*1 = 190
    assert store.usage.busy_integral(sim.now, len(store)) == 190
    assert store.usage.peak == 2


def test_store_usage_counts_blocked_putters():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.enable_usage()

    def producer():
        yield store.put("a")
        yield store.put("b")  # blocks until the get at t=50

    def consumer():
        yield sim.timeout(50)
        yield store.get()

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert store.usage.queue_integral(sim.now, len(store._putters)) == 50
    assert store.usage.queue_peak == 1


def test_store_try_put_try_get_advance_usage():
    sim = Simulator()
    store = Store(sim, capacity=2)
    usage = store.enable_usage()

    def script():
        store.try_put("a")
        yield sim.timeout(25)
        assert store.try_get() == "a"
        yield sim.timeout(10)

    sim.spawn(script())
    sim.run()
    assert usage.busy_integral(sim.now, len(store)) == 25
